"""Environment-seeded defaults for the adaptive-runtime policies.

Each knob is read when a :class:`~repro.core.runtime.PjRuntime` is
constructed (not at import time), so tests and launch scripts can set the
variables after ``import repro`` and still have them take effect on the next
runtime.  All three default to "off" / "no batching": an unconfigured
runtime behaves exactly like the pre-policy runtime.  See docs/TUNING.md
for the full reference table.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "STEAL_ENV",
    "BATCH_MAX_ENV",
    "AUTOSCALE_ENV",
    "PolicyConfig",
    "policy_from_env",
]

#: Enable work stealing for worker targets (``1``/``true``/``on``).
STEAL_ENV = "REPRO_STEAL"

#: Default dequeue batch bound for worker targets (integer >= 1; 1 = no
#: batching, the pre-policy behaviour).
BATCH_MAX_ENV = "REPRO_BATCH_MAX"

#: Enable pool autoscaling for worker targets (``1``/``true``/``on``).
AUTOSCALE_ENV = "REPRO_AUTOSCALE"

_FALSY = frozenset(("", "0", "false", "no", "off"))


def _flag(name: str, default: bool = False) -> bool:
    raw = os.environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSY


def _bounded_int(name: str, default: int, minimum: int = 1) -> int:
    raw = os.environ.get(name, "")
    if not raw:
        return default
    try:
        return max(minimum, int(raw))
    except ValueError:
        # A malformed value must not take the runtime down at construction
        # time; the documented default is the safe fallback.
        return default


@dataclass(frozen=True)
class PolicyConfig:
    """The resolved policy defaults a runtime starts from."""

    steal: bool = False
    batch_max: int = 1
    autoscale: bool = False


def policy_from_env() -> PolicyConfig:
    """Read ``REPRO_STEAL`` / ``REPRO_BATCH_MAX`` / ``REPRO_AUTOSCALE``."""
    return PolicyConfig(
        steal=_flag(STEAL_ENV),
        batch_max=_bounded_int(BATCH_MAX_ENV, 1),
        autoscale=_flag(AUTOSCALE_ENV),
    )
