"""repro.policy: the adaptive-runtime decision layer.

The observability layer (:mod:`repro.obs`) records what the runtime does;
this package decides what it *should* do with that telemetry.  Three
policies, each off by default so the runtime reproduces its unpoliced
behaviour bit-for-bit unless asked:

* **work stealing** (:class:`StealRing`) — idle worker lanes take queued
  work from the most-backlogged sibling target that also opted in, emitting
  ``PUMP_STEAL`` events with victim/thief attribution;
* **dequeue batching** (the ``batch_max`` knob, enforced by
  ``repro.core.targets._TargetQueue.get_batch``) — a worker lane drains up
  to ``batch_max`` small regions per queue acquisition, amortising the
  ~8 µs dispatch fast-path;
* **pool autoscaling** (:class:`PoolAutoscaler`) — a worker pool grows and
  shrinks its lane count against observed queue depth with hysteresis,
  emitting a ``POOL_SCALE`` event for every decision.

Every knob has an ICV on :class:`~repro.core.runtime.PjRuntime`
(``steal_var``, ``batch_max_var``, ``autoscale_var``) seeded from the
environment (``REPRO_STEAL``, ``REPRO_BATCH_MAX``, ``REPRO_AUTOSCALE``) and
overridable per target at ``create_worker`` time.  docs/TUNING.md is the
reference table and decision-rule documentation for all of them.
"""

from .autoscale import PoolAutoscaler
from .config import (
    AUTOSCALE_ENV,
    BATCH_MAX_ENV,
    STEAL_ENV,
    PolicyConfig,
    policy_from_env,
)
from .steal import StealRing

__all__ = [
    "PolicyConfig",
    "policy_from_env",
    "STEAL_ENV",
    "BATCH_MAX_ENV",
    "AUTOSCALE_ENV",
    "StealRing",
    "PoolAutoscaler",
]
