"""Work stealing: idle worker lanes drain the most-backlogged sibling.

Membership is the consent model: only targets that opted in (``steal=True``
at creation, or the ``steal_var`` ICV / ``REPRO_STEAL``) join a runtime's
ring, so a thief can never pull work into the wrong execution environment —
process- and cluster-backed targets never join because their queued bodies
must not run in this process.

The steal itself preserves every lifecycle invariant: the thief executes the
item through the *victim's* dispatch path, so the item's ``DEQUEUE`` and
``EXEC`` events land on the victim target (matching its ``ENQUEUE``) and a
stolen region still resolves exactly once.  The only trace of the thief is
the ``PUMP_STEAL`` event's attribution payload (see docs/TUNING.md).
"""

from __future__ import annotations

import threading
from typing import Any

__all__ = ["StealRing"]


class StealRing:
    """The set of worker targets stealing from each other.

    One ring per :class:`~repro.core.runtime.PjRuntime`; targets join at
    registration when stealing is enabled for them and leave at shutdown.
    ``steal`` is called by an idle lane after its own queue stayed empty for
    a poll interval.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._members: list[Any] = []

    def register(self, target: Any) -> None:
        with self._lock:
            if target not in self._members:
                self._members.append(target)

    def unregister(self, target: Any) -> None:
        with self._lock:
            if target in self._members:
                self._members.remove(target)

    def members(self) -> list[Any]:
        with self._lock:
            return list(self._members)

    def __len__(self) -> int:
        with self._lock:
            return len(self._members)

    def steal(self, thief: Any) -> tuple[Any, Any] | None:
        """One work item from the deepest sibling queue, or None.

        Victim selection is deepest-backlog-first: the policy exists to fix
        imbalance, so the most imbalanced queue is the one to relieve.  The
        depth read and the steal race against the victim's own lanes (and
        its teardown) by design — ``steal_item`` re-checks under the queue
        lock and returns None when it lost, and the thief simply goes back
        to its own queue.  Returns ``(victim, item)`` on success.
        """
        victim = None
        deepest = 0
        for target in self.members():
            if target is thief or not target.alive:
                continue
            depth = target.work_count()
            if depth > deepest:
                victim, deepest = target, depth
        if victim is None:
            return None
        item = victim.steal_item()
        if item is None:
            return None  # raced to empty/closed; stealing is opportunistic
        return victim, item
