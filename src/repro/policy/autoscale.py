"""Pool autoscaling: lane count follows observed queue depth, with hysteresis.

A :class:`PoolAutoscaler` is a small controller thread owned by one worker
target.  Every ``interval`` seconds it samples the target's backlog (the
same ``work_count()`` figure the ``QUEUE_DEPTH`` trace counter reports) and
applies two rules:

* **grow** — backlog exceeded ``high_water_per_lane`` items per lane for
  ``grow_after`` consecutive samples and the pool is below its ceiling:
  add one lane.
* **shrink** — backlog was exactly zero for ``shrink_after`` consecutive
  samples and the pool is above its floor: retire one lane.

After either action the controller sits out ``cooldown`` samples before
counting again, so one burst cannot thrash the pool (grow and shrink both
pay the same damping).  Every decision emits a ``POOL_SCALE`` trace event
(``name`` = action, ``arg`` = ``{"from", "to", "depth"}``) so the policy is
as observable as the dispatches it shapes — see docs/TUNING.md for reading
a policy trace and docs/OBSERVABILITY.md for the event shape.
"""

from __future__ import annotations

import threading
from typing import Any

from ..obs import EventKind
from ..obs import recorder as _obs

__all__ = ["PoolAutoscaler"]


class PoolAutoscaler:
    """Grow/shrink one worker target's lane count against queue depth."""

    def __init__(
        self,
        target: Any,
        *,
        min_lanes: int,
        max_lanes: int,
        interval: float = 0.05,
        high_water_per_lane: float = 2.0,
        grow_after: int = 2,
        shrink_after: int = 20,
        cooldown: int = 4,
    ) -> None:
        if min_lanes < 1:
            raise ValueError(f"autoscale floor must be >= 1, got {min_lanes}")
        if max_lanes < min_lanes:
            raise ValueError(
                f"autoscale ceiling {max_lanes} is below its floor {min_lanes}"
            )
        self.target = target
        self.min_lanes = min_lanes
        self.max_lanes = max_lanes
        self.interval = interval
        self.high_water_per_lane = high_water_per_lane
        self.grow_after = grow_after
        self.shrink_after = shrink_after
        self.cooldown = cooldown
        #: Scale actions taken (grow + shrink), for telemetry/describe().
        self.decisions = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"pyjama-scale-{target.name}", daemon=True
        )

    def start(self) -> "PoolAutoscaler":
        self._thread.start()
        return self

    def stop(self, wait: bool = True) -> None:
        self._stop.set()
        if wait and self._thread.is_alive() and self._thread is not threading.current_thread():
            self._thread.join(timeout=2.0)

    @property
    def running(self) -> bool:
        return self._thread.is_alive() and not self._stop.is_set()

    # ------------------------------------------------------------- controller

    def _run(self) -> None:
        hot = 0   # consecutive over-watermark samples
        idle = 0  # consecutive zero-backlog samples
        cool = 0  # samples left to sit out after an action
        while not self._stop.wait(self.interval):
            if cool > 0:
                cool -= 1
                continue
            depth = self.target.work_count()
            pool = self.target.pool_size
            if depth > pool * self.high_water_per_lane:
                hot += 1
                idle = 0
                if hot >= self.grow_after and pool < self.max_lanes:
                    self._scale("grow", pool, pool + 1, depth)
                    hot = 0
                    cool = self.cooldown
            elif depth == 0:
                idle += 1
                hot = 0
                if idle >= self.shrink_after and pool > self.min_lanes:
                    self._scale("shrink", pool, pool - 1, depth)
                    idle = 0
                    cool = self.cooldown
            else:
                # In-band backlog: neither rule's streak survives, so a
                # fluctuating queue holds the pool steady (the hysteresis).
                hot = 0
                idle = 0

    def _scale(self, action: str, from_lanes: int, to_lanes: int, depth: int) -> None:
        if action == "grow":
            self.target._grow_lane()
        else:
            self.target._retire_lane()
        self.decisions += 1
        session = _obs.session()
        if session.enabled:
            session.emit(
                EventKind.POOL_SCALE,
                target=self.target.name,
                name=action,
                arg={"from": from_lanes, "to": to_lanes, "depth": depth},
            )
