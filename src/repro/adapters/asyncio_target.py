"""asyncio adapter: an asyncio event loop as a virtual target.

The paper's experimental runtime binds to Java AWT's event queue; the same
model fits any dispatcher with a "post a callable" primitive.  asyncio's is
``loop.call_soon_threadsafe``, so:

* ``target virtual(<name>)`` blocks posted from worker threads run as
  callbacks on the asyncio loop (the EDT role);
* the context-awareness rule holds — dispatch from inside the loop's thread
  runs inline;
* ``nowait`` / ``name_as`` work unchanged;
* ``await`` is *rejected with guidance*: an asyncio loop cannot be pumped
  re-entrantly from inside a callback, so the logical barrier is expressed
  natively instead — :func:`as_future` turns any region handle into an
  awaitable, making ``await as_future(run_on(...))`` the coroutine spelling
  of the paper's await clause.

:func:`run_blocking_io` covers the conclusion's "integrating non-blocking
I/O and asynchronous I/O": blocking I/O calls are offloaded to a worker
virtual target and awaited without blocking the loop.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from typing import Any, Callable

from ..core import injection as _inj
from ..core.errors import QueueFullError, RuntimeStateError, TargetShutdownError
from ..core.region import TargetRegion
from ..core.runtime import PjRuntime
from ..core.targets import VirtualTarget, _item_identity
from ..obs import EventKind
from ..obs import recorder as _obs

__all__ = ["AsyncioEdtTarget", "register_asyncio_edt", "as_future", "run_blocking_io"]

_logger = logging.getLogger(__name__)


class AsyncioEdtTarget(VirtualTarget):
    """Wraps a running :class:`asyncio.AbstractEventLoop` as a virtual target.

    The loop's callback thread becomes the single member, so widget-style
    code guarded by ``target virtual(<name>)`` executes on the loop exactly
    like EDT-confined code does under Swing.
    """

    kind = "asyncio"
    supports_pumping = False  # asyncio loops cannot be pumped re-entrantly

    def __init__(
        self,
        name: str,
        loop: asyncio.AbstractEventLoop,
        *,
        queue_capacity: int | None = None,
        rejection_policy: str = "block",
    ) -> None:
        super().__init__(
            name, queue_capacity=queue_capacity, rejection_policy=rejection_policy
        )
        self.loop = loop
        self._bound = threading.Event()
        # Regions handed to the loop but not yet run.  The loop's own queue
        # is opaque to us, so this shadow set is what shutdown(wait=False)
        # cancels and what the backpressure policies count against.
        self._inflight: set[TargetRegion] = set()
        self._inflight_cond = threading.Condition()
        loop.call_soon_threadsafe(self._bind)

    def _bind(self) -> None:
        self._enter_member()
        self._bound.set()

    def wait_bound(self, timeout: float = 5.0) -> bool:
        """Block until the loop thread registered itself (setup helper)."""
        return self._bound.wait(timeout)

    # ---------------------------------------------------------------- posts

    def post(
        self,
        item: TargetRegion | Callable[[], Any],
        *,
        timeout: float | None = None,
    ) -> None:
        if self._shutdown.is_set():
            raise TargetShutdownError(self.name)
        if self.loop.is_closed():
            raise TargetShutdownError(self.name)
        # Same seam point as VirtualTarget.post: this post path bypasses the
        # base queue entirely, so without its own crossing the stress and
        # exploration harnesses would silently under-test this backend.
        hooks = _inj.hooks
        if hooks is not None:
            hooks.fire("post", self.name)
        if isinstance(item, TargetRegion):
            if not self._admit(item, timeout):
                return  # caller_runs executed it synchronously
            self.loop.call_soon_threadsafe(lambda: self._run_tracked(item))
        else:
            session = _obs.session()
            if session.enabled:
                region, label = _item_identity(item)
                session.emit(
                    EventKind.ENQUEUE, target=self.name, region=region, name=label
                )
            self.loop.call_soon_threadsafe(lambda: self._dispatch(item))

    def _admit(self, region: TargetRegion, timeout: float | None) -> bool:
        """Apply the rejection policy against the in-flight shadow set.

        Returns False when ``caller_runs`` already executed the region in the
        posting thread (nothing left to hand to the loop).
        """
        hooks = _inj.hooks
        if (
            hooks is not None
            and hooks.force_queue_full is not None
            and self.queue_capacity is not None
            and hooks.force_queue_full(self.name)
        ):
            # Fault injection: behave exactly as a bounded admission that
            # found no space within its budget (mirrors _TargetQueue.put —
            # and, like it, an unbounded target never consults the hook).
            if self.rejection_policy == "caller_runs":
                if region.done:
                    return False  # cancelled before the handoff: a corpse
                self._bump("caller_runs")
                self._trace_reject(region, _obs.session(), "caller_runs")
                self._warn_caller_runs_on_loop(region)
                self._dispatch(region, dequeued=False)
                return False
            self._bump("rejected")
            self._trace_reject(region, _obs.session(), self.rejection_policy)
            raise QueueFullError(self.name, self.queue_capacity, self.rejection_policy)
        with self._inflight_cond:
            cap = self.queue_capacity
            if cap is not None and len(self._inflight) >= cap:
                if self.rejection_policy == "reject":
                    self._bump("rejected")
                    self._trace_reject(region, _obs.session(), "reject")
                    raise QueueFullError(self.name, cap, "reject")
                if self.rejection_policy == "caller_runs":
                    pass  # dispatched below, outside the lock
                else:  # block
                    ok = self._inflight_cond.wait_for(
                        lambda: self._shutdown.is_set() or len(self._inflight) < cap,
                        timeout=timeout,
                    )
                    if self._shutdown.is_set():
                        raise TargetShutdownError(self.name)
                    if not ok:
                        self._bump("rejected")
                        self._trace_reject(region, _obs.session(), "block")
                        raise QueueFullError(self.name, cap, "block")
                    self._track(region)
                    return True
            else:
                self._track(region)
                return True
        # caller_runs: the REJECT marker (arg: policy) tells trace verifiers
        # this execution legitimately bypassed the queue.
        if region.done:
            return False  # cancelled while the admission verdict was made
        self._bump("caller_runs")
        self._trace_reject(region, _obs.session(), "caller_runs")
        self._warn_caller_runs_on_loop(region)
        self._dispatch(region, dequeued=False)
        return False

    def _warn_caller_runs_on_loop(self, region: TargetRegion) -> None:
        """The ``caller_runs`` hazard this adapter is uniquely exposed to.

        On a thread-backed target, caller_runs is backpressure: the posting
        thread pays for its own burst.  But when the poster *is* the event
        loop thread (a callback posting onward), "run it in the caller" means
        running CPU-bound work on the loop — every other connection stalls
        behind it.  The policy still honors its contract, so this warns
        rather than refuses; latency-sensitive loops should prefer ``reject``
        (map it to a 503) or ``block`` with a timeout.
        """
        if self.contains():
            _logger.warning(
                "caller_runs on asyncio target %r is executing region %r on "
                "the event loop thread; CPU-bound work will stall every other "
                "callback — prefer rejection_policy='reject' (surface a 503) "
                "or 'block' with a post timeout",
                self.name, region.label,
            )

    def _track(self, region: TargetRegion) -> None:
        # Caller holds _inflight_cond.
        self._inflight.add(region)
        self._queue.high_water = max(self._queue.high_water, len(self._inflight))
        self._bump("posted")
        session = _obs.session()
        if session.enabled:
            # The loop's internal callback queue is opaque; the in-flight
            # shadow set is this adapter's queue for tracing purposes too.
            session.emit(
                EventKind.ENQUEUE, target=self.name, region=region.seq,
                name=region.label,
            )
            self._trace_depth(session)

    def _depth(self) -> int:
        # Caller may hold _inflight_cond (from _track); len() is a single
        # C-level read, so no re-acquisition is needed for a sample.
        return len(self._inflight)

    def _run_tracked(self, region: TargetRegion) -> None:
        try:
            self._dispatch(region)
        finally:
            with self._inflight_cond:
                self._inflight.discard(region)
                self._inflight_cond.notify_all()

    def process_one(self, timeout: float | None = None) -> bool:
        raise RuntimeStateError(
            f"asyncio target {self.name!r} cannot be pumped; await regions "
            "with as_future() inside coroutines instead"
        )

    #: How long ``shutdown(wait=True)`` waits for the in-flight shadow set to
    #: drain before downgrading to cancel with a diagnostic (class-level so
    #: tests can shrink it, mirroring ``EdtTarget._shutdown_ack_timeout``).
    _drain_grace = 5.0

    def shutdown(self, wait: bool = True) -> None:
        # The loop belongs to the application; we only detach from it.  But
        # regions we already handed to the loop are ours: ``wait=False``
        # cancels the not-yet-run ones so their waiters fail fast instead of
        # hanging on callbacks a dying loop may never execute.  ``wait=True``
        # honors the drain covenant *bounded by _drain_grace*: an in-flight
        # keep-alive handler that never returns must not wedge the caller, so
        # past the deadline the drain downgrades to cancel and says so.
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        with self._inflight_cond:
            self._inflight_cond.notify_all()  # release blocked posters
        if wait and not self.contains() and not self.loop.is_closed():
            # Waiting *on* the loop thread would deadlock the very loop that
            # has to run the callbacks being waited for — same self-thread
            # rule as EdtTarget.shutdown.  Off-loop, give the backlog a
            # bounded chance to run down before giving up on it.
            with self._inflight_cond:
                drained = self._inflight_cond.wait_for(
                    lambda: not self._inflight, timeout=self._drain_grace
                )
            if not drained:
                wait = False  # downgrade: cancel whatever is still pending
                _logger.warning(
                    "asyncio target %r did not drain its in-flight regions "
                    "within %.1fs; downgrading shutdown to cancel: %s",
                    self.name, self._drain_grace, self.describe(),
                )
        with self._inflight_cond:
            inflight = list(self._inflight)
        if not wait:
            reason = TargetShutdownError(self.name)
            for region in inflight:
                if region.cancel(reason):
                    self._bump("cancelled_on_shutdown")
        thread = next(iter(self._members), None) if self._members else None
        if thread is not None:
            self._exit_member(thread)


def register_asyncio_edt(
    runtime: PjRuntime,
    name: str = "edt",
    loop: asyncio.AbstractEventLoop | None = None,
    *,
    queue_capacity: int | None = None,
    rejection_policy: str | None = None,
) -> AsyncioEdtTarget:
    """Register a (running) asyncio loop as virtual target *name*.

    Call from inside the loop (``loop`` defaults to the running loop) or
    from another thread with an explicit loop object.  Capacity/policy
    default to the runtime's ``queue_capacity_var``/``rejection_policy_var``
    ICVs, like every other target factory.
    """
    if loop is None:
        loop = asyncio.get_running_loop()
    target = AsyncioEdtTarget(
        name, loop, **runtime._queue_options(queue_capacity, rejection_policy)
    )
    runtime.register_target(target)
    return target


def as_future(
    region: TargetRegion, loop: asyncio.AbstractEventLoop | None = None
) -> "asyncio.Future[Any]":
    """An awaitable view of a region handle.

    The coroutine spelling of the paper's ``await`` clause::

        handle = run_on("worker", blocking_kernel, mode="nowait", runtime=rt)
        result = await as_future(handle)     # loop keeps dispatching

    The future resolves with the region's result, or raises its
    :class:`~repro.core.errors.RegionFailedError`.
    """
    if loop is None:
        loop = asyncio.get_running_loop()
    future: asyncio.Future[Any] = loop.create_future()

    def resolve(reg: TargetRegion) -> None:
        def apply() -> None:
            if future.cancelled():
                return
            try:
                future.set_result(reg.result())
            except BaseException as exc:  # noqa: BLE001 - forwarded to awaiter
                future.set_exception(exc)

        loop.call_soon_threadsafe(apply)

    region.add_done_callback(resolve)
    return future


async def run_blocking_io(
    runtime: PjRuntime,
    target: str,
    fn: Callable[..., Any],
    *args: Any,
    **kwargs: Any,
) -> Any:
    """Run blocking I/O (or CPU work) on a worker virtual target and await
    it without blocking the asyncio loop.

    The async-I/O integration the paper's conclusion sketches: the worker
    target is the paper's executor; the future bridge keeps the loop free.
    """
    region = runtime.invoke_target_block(
        target, TargetRegion(fn, *args, **kwargs), "nowait"
    )
    return await as_future(region)
