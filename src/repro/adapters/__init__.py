"""Adapters binding the virtual-target model to other event frameworks.

The paper's conclusion names the future work this package implements: *"a
more universal implementation to support more event-driven frameworks and
integrating non-blocking I/O and asynchronous I/O into this model."*

* :mod:`asyncio_target` — register a running :mod:`asyncio` event loop as a
  virtual target (its callback thread plays the EDT role), bridge region
  completions into awaitable futures, and offload blocking I/O to worker
  targets from coroutines.
"""

from .asyncio_target import (
    AsyncioEdtTarget,
    as_future,
    register_asyncio_edt,
    run_blocking_io,
)

__all__ = [
    "AsyncioEdtTarget",
    "as_future",
    "register_asyncio_edt",
    "run_blocking_io",
]
