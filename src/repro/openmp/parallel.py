"""The ``parallel`` construct: fork a team, run the body per thread, join.

Faithful to the semantics the paper leans on:

* the encountering thread is the master (thread 0) and executes the body —
  it does **not** return until every team member finished (the synchronous
  "join" the paper calls out as incompatible with event loops; there is no
  ``nowait`` on ``parallel``);
* an ``if`` clause false-value serialises the region (team of 1);
* nesting honours ``nest_var`` and ``max_active_levels_var``.

Exceptions raised by any team member are collected and re-raised in the
master after the join as :class:`ParallelRegionError`.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from .icv import ICVs, global_icvs
from .team import Team, ThreadContext, current_context, pop_context, push_context

__all__ = ["ParallelRegionError", "parallel"]


class ParallelRegionError(Exception):
    """One or more team members raised inside a parallel region."""

    def __init__(self, failures: list[tuple[int, BaseException]]):
        self.failures = failures
        summary = "; ".join(f"thread {tid}: {exc!r}" for tid, exc in failures)
        super().__init__(f"parallel region failed: {summary}")
        if failures:
            self.__cause__ = failures[0][1]


def _resolve_team_size(num_threads: int | None, icvs: ICVs, level: int) -> int:
    if num_threads is not None:
        if num_threads < 1:
            raise ValueError("num_threads must be >= 1")
        requested = num_threads
    else:
        requested = icvs.nthreads_var
    if level > icvs.max_active_levels_var or (level > 1 and not icvs.nest_var):
        return 1
    return min(requested, icvs.thread_limit_var)


def parallel(
    body: Callable[..., Any],
    *,
    num_threads: int | None = None,
    if_clause: bool = True,
    icvs: ICVs | None = None,
) -> list[Any]:
    """Execute ``body`` in a freshly forked team; returns per-thread results.

    ``body`` is called once per team member.  If it accepts a positional
    argument it receives the thread number; otherwise it is called with no
    arguments and may query :func:`repro.openmp.omp_get_thread_num`.

    Returns the list of return values indexed by thread number (a convenience
    over OpenMP, where results travel through shared state).
    """
    parent = current_context()
    level = (parent.team.level + 1) if parent else 1
    region_icvs = (icvs or global_icvs()).copy()

    size = _resolve_team_size(num_threads, region_icvs, level) if if_clause else 1
    team = Team(size, region_icvs, level)
    results: list[Any] = [None] * size

    wants_tid = _accepts_positional(body)

    def run_as(thread_num: int) -> None:
        push_context(ThreadContext(team, thread_num))
        try:
            results[thread_num] = body(thread_num) if wants_tid else body()
        except BaseException as exc:  # noqa: BLE001 - reported after join
            team.record_exception(thread_num, exc)
            # Keep barrier-using teams from deadlocking: a dead member must
            # not leave others waiting forever.
            team._barrier.abort()
        finally:
            pop_context()

    workers = [
        threading.Thread(
            target=run_as,
            args=(tid,),
            name=f"omp-team{team.team_id}-{tid}",
            daemon=True,
        )
        for tid in range(1, size)
    ]
    for w in workers:
        w.start()
    run_as(0)  # the master participates — the fork-join property
    for w in workers:
        w.join()  # the synchronous join; no nowait exists on parallel

    failures = team.exceptions
    if failures:
        raise ParallelRegionError(failures)
    return results


def _accepts_positional(fn: Callable[..., Any]) -> bool:
    import inspect

    try:
        sig = inspect.signature(fn)
    except (TypeError, ValueError):
        return False
    for p in sig.parameters.values():
        if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD):
            return True
        if p.kind is p.VAR_POSITIONAL:
            return True
    return False
