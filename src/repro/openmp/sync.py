"""Synchronization constructs: barrier, critical, atomic, ordered-lite."""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from .team import current_context
from .worksharing import WorksharingError

__all__ = ["barrier", "critical", "atomic_update", "Atomic", "flush"]


def flush(*variables: Any) -> None:
    """``#pragma omp flush`` — a documented no-op under CPython.

    The GIL serialises bytecode and every synchronization primitive in this
    package (locks, events, conditions) already implies the release/acquire
    ordering flush provides in C.  Kept so ported code compiles unchanged.
    """

_critical_locks: dict[str, threading.RLock] = {}
_critical_guard = threading.Lock()


def barrier() -> None:
    """Explicit team barrier (``#pragma omp barrier``)."""
    ctx = current_context()
    if ctx is None:
        raise WorksharingError("barrier used outside a parallel region")
    ctx.team.barrier()


@contextmanager
def critical(name: str = "") -> Iterator[None]:
    """``#pragma omp critical [(name)]``: one global lock per name.

    Unnamed criticals share one lock, exactly as in OpenMP.  The lock is
    re-entrant so a critical section may call code containing the same
    critical (OpenMP would deadlock here; we choose the safer semantics and
    document the divergence).
    """
    with _critical_guard:
        lock = _critical_locks.get(name)
        if lock is None:
            lock = threading.RLock()
            _critical_locks[name] = lock
    with lock:
        yield


class Atomic:
    """A scalar cell with atomic read-modify-write (``#pragma omp atomic``).

    CPython's GIL makes single bytecodes atomic, but read-modify-write of
    Python objects is not; this wraps the update in a dedicated lock.
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, value: Any = 0) -> None:
        self._value = value
        self._lock = threading.Lock()

    @property
    def value(self) -> Any:
        with self._lock:
            return self._value

    @value.setter
    def value(self, v: Any) -> None:
        with self._lock:
            self._value = v

    def update(self, fn: Callable[[Any], Any]) -> Any:
        """Atomically set value = fn(value); returns the new value."""
        with self._lock:
            self._value = fn(self._value)
            return self._value

    def add(self, delta: Any) -> Any:
        return self.update(lambda v: v + delta)

    def compare_and_swap(self, expected: Any, new: Any) -> bool:
        with self._lock:
            if self._value == expected:
                self._value = new
                return True
            return False


def atomic_update(cell: Atomic, fn: Callable[[Any], Any]) -> Any:
    """Functional spelling of :meth:`Atomic.update`."""
    return cell.update(fn)
