"""Worksharing constructs: ``for`` (static/dynamic/guided), ``sections``,
``single``, ``master``.

All constructs must be encountered by every member of the innermost team (an
OpenMP program requirement); shared construct state is matched by arrival
order via :meth:`Team.next_workshare_key`.  Each construct ends with an
implied team barrier unless ``nowait`` is requested.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Sequence

from .reduction import REDUCTIONS, identity_for
from .team import current_context

__all__ = [
    "for_loop",
    "sections",
    "single",
    "master",
    "ordered",
    "static_chunks",
    "WorksharingError",
]


class WorksharingError(RuntimeError):
    """A worksharing construct was used outside a parallel region, or with
    invalid parameters."""


def _require_context():
    ctx = current_context()
    if ctx is None:
        raise WorksharingError(
            "worksharing construct used outside a parallel region; "
            "wrap the call in repro.openmp.parallel(...)"
        )
    return ctx


def static_chunks(n: int, n_threads: int, chunk: int | None = None) -> list[list[range]]:
    """The static schedule's iteration map: per-thread lists of ranges.

    With ``chunk=None``, iterations split into one contiguous block per
    thread (OpenMP's default static).  With an explicit chunk size, blocks
    are dealt round-robin.
    """
    if n < 0:
        raise ValueError("iteration count must be >= 0")
    if chunk is None:
        base, extra = divmod(n, n_threads)
        out, start = [], 0
        for t in range(n_threads):
            size = base + (1 if t < extra else 0)
            out.append([range(start, start + size)] if size else [])
            start += size
        return out
    if chunk < 1:
        raise ValueError("chunk size must be >= 1")
    out = [[] for _ in range(n_threads)]
    for block_i, start in enumerate(range(0, n, chunk)):
        out[block_i % n_threads].append(range(start, min(start + chunk, n)))
    return out


_tls_ordered = threading.local()


def ordered(body: Callable[[], Any]) -> Any:
    """``#pragma omp ordered``: run *body* in ascending iteration order.

    Only valid inside the dynamic extent of a :func:`for_loop` called with
    ``ordered=True``; at most one ordered region per iteration (the OpenMP
    program requirement).  Iterations that skip the ordered region are
    handled — the turn advances when each iteration completes.
    """
    ctx = getattr(_tls_ordered, "ctx", None)
    if ctx is None:
        raise WorksharingError(
            "ordered used outside a for_loop(..., ordered=True) iteration"
        )
    state, index = ctx
    with state["ordered_cond"]:
        state["ordered_cond"].wait_for(lambda: state["ordered_next"] == index)
    return body()


def _ordered_iteration_done(state: dict, index: int) -> None:
    """Mark iteration *index* complete; advance the turn past every finished
    iteration so skipped ordered regions never stall the loop."""
    with state["ordered_cond"]:
        state["ordered_done"].add(index)
        while state["ordered_next"] in state["ordered_done"]:
            state["ordered_done"].discard(state["ordered_next"])
            state["ordered_next"] += 1
        state["ordered_cond"].notify_all()


def for_loop(
    iterations: int | Sequence[Any],
    body: Callable[[Any], Any],
    *,
    schedule: str = "static",
    chunk: int | None = None,
    nowait: bool = False,
    reduction: str | None = None,
    reduction_init: Any = None,
    ordered: bool = False,
) -> Any:
    """The ``omp for`` construct: distribute iterations over the team.

    Parameters
    ----------
    iterations:
        An iteration count (loop over ``range(n)``) or an indexable sequence.
    body:
        Called once per iteration with the item (or index).  With a
        reduction, its return values are combined.
    schedule:
        ``static`` (blocks decided up front), ``dynamic`` (threads grab the
        next chunk from a shared counter), or ``guided`` (dynamic with
        exponentially shrinking chunks).
    reduction:
        Name of a reduction operator (``'+'``, ``'*'``, ``'max'``, ``'min'``,
        ``'&&'``, ``'||'``); every thread folds its iterations locally and
        partials combine in thread order, so the result is deterministic for
        associative-commutative ops.

    Returns the reduction value (or None without a reduction).  Ends with an
    implied barrier unless ``nowait``; with a reduction the barrier is
    mandatory (the combined value must be complete for all threads).
    """
    ctx = _require_context()
    team = ctx.team
    if isinstance(iterations, int):
        n = iterations
        items: Sequence[Any] | None = None
    else:
        items = iterations
        n = len(items)

    if schedule == "runtime":
        # OpenMP's schedule(runtime): defer to the run-sched ICVs captured
        # by this region's team at fork time.
        schedule = team.icvs.run_sched_var
        if chunk is None:
            chunk = team.icvs.run_sched_chunk
    if schedule not in ("static", "dynamic", "guided"):
        raise WorksharingError(f"unknown schedule {schedule!r}")
    if reduction is not None and reduction not in REDUCTIONS:
        raise WorksharingError(f"unknown reduction operator {reduction!r}")
    if reduction is not None and nowait:
        raise WorksharingError("a reduction requires the implied barrier; drop nowait")

    key = team.next_workshare_key(ctx.thread_num)
    state = team.workshare_state(
        key,
        lambda: {
            "cursor": 0,
            "lock": threading.Lock(),
            "partials": [None] * team.num_threads,
            "ordered_next": 0,
            "ordered_done": set(),
            "ordered_cond": threading.Condition(),
        },
    )

    op = REDUCTIONS[reduction] if reduction else None
    acc = reduction_init if reduction_init is not None else (
        identity_for(reduction) if reduction else None
    )

    def run(i: int) -> None:
        nonlocal acc
        if ordered:
            _tls_ordered.ctx = (state, i)
        try:
            value = body(items[i] if items is not None else i)
        finally:
            if ordered:
                _tls_ordered.ctx = None
                _ordered_iteration_done(state, i)
        if op is not None:
            acc = op(acc, value)

    if schedule == "static":
        for rng in static_chunks(n, team.num_threads, chunk)[ctx.thread_num]:
            for i in rng:
                run(i)
    else:
        min_chunk = max(1, chunk or 1)
        while True:
            with state["lock"]:
                cursor = state["cursor"]
                if cursor >= n:
                    break
                if schedule == "dynamic":
                    size = min_chunk
                else:  # guided: remaining / (2 * team size), floored at chunk
                    remaining = n - cursor
                    size = max(min_chunk, remaining // (2 * team.num_threads))
                state["cursor"] = cursor + size
            for i in range(cursor, min(cursor + size, n)):
                run(i)

    if op is not None:
        state["partials"][ctx.thread_num] = acc
        team.barrier()
        # Thread-order fold => deterministic result; every thread computes it
        # (same value), mirroring how OpenMP updates the shared variable.
        total = identity_for(reduction)
        for partial in state["partials"]:
            if partial is not None:
                total = op(total, partial)
        team.barrier()  # nobody may recycle state while others still read
        return total

    if not nowait:
        team.barrier()
    return None


def sections(
    section_bodies: Iterable[Callable[[], Any]], *, nowait: bool = False
) -> list[Any]:
    """The ``sections`` construct: each section body runs exactly once,
    distributed dynamically over the team.  Returns the list of section
    results (same order as given) on every thread."""
    ctx = _require_context()
    team = ctx.team
    bodies = list(section_bodies)
    key = team.next_workshare_key(ctx.thread_num)
    state = team.workshare_state(
        key,
        lambda: {"cursor": 0, "lock": threading.Lock(), "results": [None] * len(bodies)},
    )
    while True:
        with state["lock"]:
            i = state["cursor"]
            if i >= len(bodies):
                break
            state["cursor"] = i + 1
        state["results"][i] = bodies[i]()
    if not nowait:
        team.barrier()
    return state["results"]


def single(body: Callable[[], Any], *, nowait: bool = False) -> Any:
    """The ``single`` construct: first arriving thread runs *body*; all
    threads get its return value (a copyprivate-like convenience).  Implied
    barrier unless ``nowait`` — with nowait, non-executing threads get None
    immediately (they cannot see a value that may not exist yet)."""
    ctx = _require_context()
    team = ctx.team
    key = team.next_workshare_key(ctx.thread_num)
    state = team.workshare_state(
        key, lambda: {"claimed": False, "lock": threading.Lock(), "result": None}
    )
    with state["lock"]:
        mine = not state["claimed"]
        state["claimed"] = True
    if mine:
        state["result"] = body()
    if nowait:
        return state["result"] if mine else None
    team.barrier()
    return state["result"]


def master(body: Callable[[], Any]) -> Any:
    """The ``master`` construct: thread 0 only; no implied barrier."""
    ctx = _require_context()
    if ctx.thread_num == 0:
        return body()
    return None
