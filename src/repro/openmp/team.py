"""Thread teams: the fork-join engine.

A :class:`Team` is created at a ``parallel`` construct: the encountering
thread becomes the master (thread 0) and *participates in the work-sharing
region* — the property the paper identifies as fundamentally incompatible
with event-driven programming ("the traditional fork-join model forces the
master thread … to participate").  The event-driven extension escapes this by
wrapping the whole region in a worker virtual target; the fork-join substrate
itself stays faithful to OpenMP.
"""

from __future__ import annotations

import itertools
import threading
from typing import Any, Callable

from .icv import ICVs

__all__ = ["Team", "ThreadContext", "current_context", "push_context", "pop_context"]

_tls = threading.local()
_team_ids = itertools.count()


class ThreadContext:
    """Per-thread view of its team (what omp_get_thread_num() etc. read)."""

    __slots__ = ("team", "thread_num")

    def __init__(self, team: "Team", thread_num: int) -> None:
        self.team = team
        self.thread_num = thread_num


def _stack() -> list[ThreadContext]:
    stack = getattr(_tls, "stack", None)
    if stack is None:
        stack = []
        _tls.stack = stack
    return stack


def current_context() -> ThreadContext | None:
    """The calling thread's innermost team context (None outside regions)."""
    stack = _stack()
    return stack[-1] if stack else None


def push_context(ctx: ThreadContext) -> None:
    _stack().append(ctx)


def pop_context() -> None:
    _stack().pop()


class Team:
    """A group of threads executing one parallel region."""

    def __init__(self, num_threads: int, icvs: ICVs, level: int = 1) -> None:
        if num_threads < 1:
            raise ValueError("a team needs at least one thread")
        self.team_id = next(_team_ids)
        self.num_threads = num_threads
        self.icvs = icvs
        self.level = level
        self._barrier = threading.Barrier(num_threads)
        self._lock = threading.Lock()
        # Worksharing constructs are identified by arrival order per thread:
        # the n-th construct each thread encounters maps to shared state n.
        self._workshares: dict[int, dict[str, Any]] = {}
        self._ws_counters: dict[int, int] = {}
        self._exceptions: list[tuple[int, BaseException]] = []

    # ----------------------------------------------------------------- sync

    def barrier(self) -> None:
        """Team-wide barrier.  Reusable (threading.Barrier cycles).

        Pending deferred tasks are executed first (OpenMP completes tasks at
        barriers); see :mod:`repro.openmp.tasking`.
        """
        from .tasking import drain_tasks_at_barrier  # local: avoids cycle

        drain_tasks_at_barrier(self)
        self._barrier.wait()

    # ------------------------------------------------------------ workshares

    def next_workshare_key(self, thread_num: int) -> int:
        """The construct-instance key for the calling thread's next
        worksharing construct (arrival-order matching, as real OpenMP
        runtimes do: all threads must encounter the same constructs in the
        same order, a requirement the spec places on the program)."""
        with self._lock:
            n = self._ws_counters.get(thread_num, 0)
            self._ws_counters[thread_num] = n + 1
            return n

    def workshare_state(self, key: int, factory: Callable[[], dict[str, Any]]) -> dict[str, Any]:
        """Shared state for construct instance *key*, created by the first
        arriving thread."""
        with self._lock:
            state = self._workshares.get(key)
            if state is None:
                state = factory()
                self._workshares[key] = state
            return state

    # ------------------------------------------------------------ exceptions

    def record_exception(self, thread_num: int, exc: BaseException) -> None:
        with self._lock:
            self._exceptions.append((thread_num, exc))

    @property
    def exceptions(self) -> list[tuple[int, BaseException]]:
        with self._lock:
            return list(self._exceptions)

    def __repr__(self) -> str:
        return f"<Team #{self.team_id} threads={self.num_threads} level={self.level}>"
