"""Reduction operators for worksharing constructs.

The operator table follows OpenMP's reduction-identifier list for the
operators meaningful in Python; identities match the spec's initializer
values.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["REDUCTIONS", "IDENTITIES", "identity_for", "register_reduction"]

REDUCTIONS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "*": lambda a, b: a * b,
    "max": max,
    "min": min,
    "&&": lambda a, b: bool(a) and bool(b),
    "||": lambda a, b: bool(a) or bool(b),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
}

IDENTITIES: dict[str, Any] = {
    "+": 0,
    "*": 1,
    "max": float("-inf"),
    "min": float("inf"),
    "&&": True,
    "||": False,
    "&": ~0,
    "|": 0,
    "^": 0,
}


def identity_for(op: str | None) -> Any:
    """The initializer value of a reduction operator (None -> None)."""
    if op is None:
        return None
    return IDENTITIES[op]


def register_reduction(name: str, fn: Callable[[Any, Any], Any], identity: Any) -> None:
    """Add a user-defined reduction (OpenMP ``declare reduction``)."""
    if name in REDUCTIONS:
        raise ValueError(f"reduction {name!r} already registered")
    REDUCTIONS[name] = fn
    IDENTITIES[name] = identity
