"""The OpenMP runtime library routines (``omp_*``)."""

from __future__ import annotations

import time

from .icv import get_max_threads, global_icvs, set_num_threads
from .team import current_context

__all__ = [
    "omp_set_schedule",
    "omp_get_schedule",
    "omp_get_thread_num",
    "omp_get_num_threads",
    "omp_get_max_threads",
    "omp_set_num_threads",
    "omp_in_parallel",
    "omp_get_level",
    "omp_get_team_size",
    "omp_get_wtime",
    "omp_set_nested",
    "omp_get_nested",
    "omp_set_max_active_levels",
    "omp_get_max_active_levels",
]


def omp_get_thread_num() -> int:
    """Thread number within the innermost team (0 outside any region)."""
    ctx = current_context()
    return ctx.thread_num if ctx else 0


def omp_get_num_threads() -> int:
    """Size of the innermost team (1 outside any region)."""
    ctx = current_context()
    return ctx.team.num_threads if ctx else 1


def omp_get_max_threads() -> int:
    """Upper bound on the next parallel region's team size."""
    return get_max_threads()


def omp_set_num_threads(n: int) -> None:
    """Set the default team size for subsequent parallel regions."""
    set_num_threads(n)


def omp_in_parallel() -> bool:
    """True inside an active (size > 1) parallel region."""
    ctx = current_context()
    return bool(ctx and ctx.team.num_threads > 1)


def omp_get_level() -> int:
    """Nesting depth of enclosing parallel regions."""
    ctx = current_context()
    return ctx.team.level if ctx else 0


def omp_get_team_size(level: int) -> int:
    """Team size at *level* (only the innermost is tracked; 1 elsewhere)."""
    ctx = current_context()
    if ctx is None or level <= 0 or level > ctx.team.level:
        return 1
    if level == ctx.team.level:
        return ctx.team.num_threads
    return 1


def omp_get_wtime() -> float:
    """Monotonic wall-clock seconds (the OpenMP timing routine)."""
    return time.perf_counter()


def omp_set_schedule(kind: str, chunk: int | None = None) -> None:
    """Set the run-sched ICVs consulted by ``schedule(runtime)`` loops."""
    if kind not in ("static", "dynamic", "guided"):
        raise ValueError(f"unknown schedule kind {kind!r}")
    if chunk is not None and chunk < 1:
        raise ValueError("chunk must be >= 1")
    icvs = global_icvs()
    icvs.run_sched_var = kind
    icvs.run_sched_chunk = chunk


def omp_get_schedule() -> tuple[str, int | None]:
    """The (kind, chunk) consulted by schedule(runtime) loops."""
    icvs = global_icvs()
    return icvs.run_sched_var, icvs.run_sched_chunk


def omp_set_nested(flag: bool) -> None:
    """Enable or disable nested parallel regions."""
    global_icvs().nest_var = bool(flag)


def omp_get_nested() -> bool:
    """Whether nested parallel regions are enabled."""
    return global_icvs().nest_var


def omp_set_max_active_levels(n: int) -> None:
    """Cap the depth of nested active parallel regions."""
    if n < 1:
        raise ValueError("max active levels must be >= 1")
    global_icvs().max_active_levels_var = n


def omp_get_max_active_levels() -> int:
    """The nested-parallelism depth cap."""
    return global_icvs().max_active_levels_var
