"""Internal control variables (ICVs) for the fork-join substrate.

Scoped the way the OpenMP spec scopes them: a global set, copied into each
parallel region's team at fork time so mid-region mutation of the globals
does not disturb running teams.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field, replace

__all__ = ["ICVs", "global_icvs", "set_num_threads", "get_max_threads"]


def _default_threads() -> int:
    env = os.environ.get("OMP_NUM_THREADS")
    if env:
        try:
            return max(1, int(env.split(",")[0]))
        except ValueError:
            pass
    return os.cpu_count() or 1


@dataclass
class ICVs:
    """The subset of ICVs the substrate honours."""

    nthreads_var: int = field(default_factory=_default_threads)
    dyn_var: bool = False
    nest_var: bool = True
    max_active_levels_var: int = 4
    run_sched_var: str = "static"
    run_sched_chunk: int | None = None
    thread_limit_var: int = 256

    def copy(self) -> "ICVs":
        return replace(self)


_global = ICVs()
_global_lock = threading.Lock()


def global_icvs() -> ICVs:
    """The process-global ICV set (copied into each team at fork)."""
    return _global


def set_num_threads(n: int) -> None:
    """omp_set_num_threads."""
    if n < 1:
        raise ValueError("number of threads must be >= 1")
    with _global_lock:
        _global.nthreads_var = n


def get_max_threads() -> int:
    """omp_get_max_threads."""
    return _global.nthreads_var
