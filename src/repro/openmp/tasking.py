"""The ``task`` construct — the paper's §I foil.

The paper motivates virtual targets by the limits of OpenMP tasks: *"a block
surrounded by a task directive will be asynchronously executed by the OpenMP
thread group; an orphaned task directive will execute sequentially unless it
is surrounded by a parallel directive.  This means the effectiveness of
OpenMP tasks are confined within an OpenMP parallel region."*

This module implements exactly that confined behaviour so the contrast is
demonstrable in code:

* inside a parallel region, :func:`task` defers the block to the team's
  shared task pool; team members execute pending tasks at :func:`taskwait`
  and at team barriers;
* an *orphaned* task (no enclosing region, or a serialised team of one)
  executes immediately, sequentially, in the encountering thread.

Simplifications vs the full spec (documented): :func:`taskwait` waits for
*all* pending team tasks, not only children of the current task; ``untied``
and task dependencies are out of scope.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable

from .team import Team, current_context

__all__ = ["task", "taskwait", "TaskHandle"]


class TaskHandle:
    """Completion handle for a deferred task."""

    __slots__ = ("_done", "_result", "_error", "deferred")

    def __init__(self, deferred: bool) -> None:
        self._done = threading.Event()
        self._result: Any = None
        self._error: BaseException | None = None
        self.deferred = deferred

    def _finish(self, result: Any, error: BaseException | None) -> None:
        self._result = result
        self._error = error
        self._done.set()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: float | None = None) -> Any:
        if not self._done.wait(timeout):
            raise TimeoutError("task not finished")
        if self._error is not None:
            raise self._error
        return self._result


def _task_pool(team: Team) -> deque:
    """The team-wide pending-task deque (created lazily, under the team lock)."""
    with team._lock:
        pool = getattr(team, "_task_pool", None)
        if pool is None:
            pool = deque()
            team._task_pool = pool  # type: ignore[attr-defined]
        return pool


def _run_task(item: tuple[Callable[[], Any], TaskHandle]) -> None:
    body, handle = item
    try:
        result = body()
    except BaseException as exc:  # noqa: BLE001 - reported via the handle
        handle._finish(None, exc)
    else:
        handle._finish(result, None)


def task(body: Callable[[], Any], *, if_clause: bool = True) -> TaskHandle:
    """``#pragma omp task``: defer *body* to the team's task pool.

    Orphaned (no enclosing parallel region / team of one) or with a false
    ``if`` clause, the body runs immediately and sequentially — the paper's
    point about task's confinement.
    """
    ctx = current_context()
    if ctx is None or ctx.team.num_threads == 1 or not if_clause:
        handle = TaskHandle(deferred=False)
        _run_task((body, handle))
        return handle
    handle = TaskHandle(deferred=True)
    pool = _task_pool(ctx.team)
    with ctx.team._lock:
        pool.append((body, handle))
    return handle


def _drain(team: Team) -> int:
    """Execute pending team tasks in the calling thread until the pool is
    empty; returns the number executed."""
    pool = _task_pool(team)
    executed = 0
    while True:
        with team._lock:
            if not pool:
                return executed
            item = pool.popleft()
        _run_task(item)
        executed += 1


def taskwait(timeout: float | None = 30.0) -> int:
    """``#pragma omp taskwait``: help execute pending tasks, then wait until
    every team task completed.  Returns the number this thread executed.

    Outside a parallel region this is a no-op (there can be no deferred
    tasks).
    """
    ctx = current_context()
    if ctx is None:
        return 0
    team = ctx.team
    executed = _drain(team)
    # Tasks already claimed by other threads may still be running; their
    # handles are the source of truth.  We conservatively re-drain in case
    # running tasks spawn more tasks.
    import time

    deadline = None if timeout is None else time.monotonic() + timeout
    while True:
        executed += _drain(team)
        with team._lock:
            pending = bool(getattr(team, "_task_pool", None))
        if not pending:
            return executed
        if deadline is not None and time.monotonic() > deadline:
            raise TimeoutError("taskwait timed out")
        time.sleep(0.0005)


def drain_tasks_at_barrier(team: Team) -> None:
    """Hook for barrier integration: execute pending tasks before blocking.

    OpenMP guarantees all tasks complete at a barrier; team barriers call
    this first.
    """
    _drain(team)
