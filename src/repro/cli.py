"""Command-line interface: regenerate the paper's figures and inspect kernels.

Usage::

    python -m repro fig1
    python -m repro fig7 --kernel crypt --rates 10,30,50,100
    python -m repro fig8 --kernel raytracer
    python -m repro fig9 --workers 1,2,4,8,16,32
    python -m repro timeline --approach pyjama_async --rate 30
    python -m repro kernels [--size A]

Every subcommand prints the same rows the corresponding benchmark asserts
on; the benchmarks (``pytest benchmarks/ --benchmark-only``) remain the
checked source of truth.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .kernels import KERNELS, get_kernel, time_kernel
from .sim import (
    GUI_KERNELS,
    GuiBenchConfig,
    HttpBenchConfig,
    KernelCostModel,
    Machine,
    MachineConfig,
    SimEventLoop,
    SimThreadPool,
    Simulator,
    TraceRecorder,
    render_ascii,
    run_gui_benchmark,
    run_http_benchmark,
)
from .sim.approaches import APPROACHES, _HANDLERS, _build_world
from .sim.workload import fire_open_loop

__all__ = ["main"]


def _parse_int_list(text: str) -> list[int]:
    try:
        return [int(x) for x in text.split(",") if x.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}")


def cmd_fig1(args: argparse.Namespace) -> int:
    handler = KernelCostModel("fig1", serial_time=args.handler_ms / 1000.0,
                              parallel_fraction=0.9)
    for approach, title in (
        ("sequential", "(i) single-threaded event processing"),
        ("executor", "(ii) multi-threaded (thread-pool) processing"),
    ):
        result = run_gui_benchmark(
            GuiBenchConfig(approach=approach, kernel=handler,
                           rate=1000.0 / args.spacing_ms, n_events=args.events)
        )
        print(title)
        for i, rt in enumerate(result.response.samples):
            print(f"    request{i + 1}: fired at {i * args.spacing_ms:.0f}ms, "
                  f"responded after {rt * 1000:7.1f}ms")
    return 0


def _resolve_kernel(args: argparse.Namespace):
    if getattr(args, "calibrate", False):
        from .sim import calibrate_from_host

        models = calibrate_from_host()
        print(f"(calibrated from host: {args.kernel} = "
              f"{models[args.kernel].serial_time * 1000:.1f} ms serial)")
        return models[args.kernel]
    return GUI_KERNELS[args.kernel]


def cmd_fig7(args: argparse.Namespace) -> int:
    kernel = _resolve_kernel(args)
    approaches = args.approaches.split(",")
    for a in approaches:
        if a not in APPROACHES:
            print(f"unknown approach {a!r}; choose from {', '.join(APPROACHES)}",
                  file=sys.stderr)
            return 2
    header = f"{'req/s':>6} | " + " | ".join(f"{a[:12]:>12}" for a in approaches)
    metric = args.metric
    print(f"Figure 7 [{args.kernel}]: mean {metric} time (ms), "
          f"kernel={kernel.serial_time * 1000:.0f}ms")
    print(header)
    print("-" * len(header))
    for rate in args.rates:
        row = []
        for approach in approaches:
            r = run_gui_benchmark(GuiBenchConfig(
                approach=approach, kernel=kernel, rate=float(rate),
                n_events=args.events))
            stats = r.response if metric == "response" else r.dispatch
            row.append(stats.mean * 1000)
        print(f"{rate:>6} | " + " | ".join(f"{v:>12.1f}" for v in row))
    return 0


def cmd_fig8(args: argparse.Namespace) -> int:
    kernel = _resolve_kernel(args)
    print(f"Figure 8 [{args.kernel}]: async vs async-parallel "
          f"({args.team} team threads), mean response (ms)")
    print(f"{'req/s':>6} | {'async':>10} | {'async-par':>10} | {'gain':>6}")
    for rate in args.rates:
        a = run_gui_benchmark(GuiBenchConfig(
            approach="pyjama_async", kernel=kernel, rate=float(rate),
            n_events=args.events)).response.mean * 1000
        p = run_gui_benchmark(GuiBenchConfig(
            approach="async_parallel", kernel=kernel, rate=float(rate),
            n_events=args.events, parallel_threads=args.team)).response.mean * 1000
        print(f"{rate:>6} | {a:>10.1f} | {p:>10.1f} | {a / p:>5.2f}x")
    return 0


def cmd_fig9(args: argparse.Namespace) -> int:
    variants = [("jetty", None), ("pyjama", None),
                ("jetty", args.team), ("pyjama", args.team)]
    labels = ["jetty", "pyjama", f"jetty+par{args.team}", f"pyjama+par{args.team}"]
    header = f"{'workers':>8} | " + " | ".join(f"{l:>14}" for l in labels)
    print("Figure 9: throughput (responses/sec), "
          f"{args.users} virtual users, 16 cores")
    print(header)
    print("-" * len(header))
    for w in args.workers:
        row = []
        for server, par in variants:
            r = run_http_benchmark(HttpBenchConfig(
                server=server, worker_threads=w, parallel_threads=par,
                n_users=args.users))
            row.append(r.throughput)
        print(f"{w:>8} | " + " | ".join(f"{v:>14.1f}" for v in row))
    return 0


def cmd_timeline(args: argparse.Namespace) -> int:
    """Render an EDT/worker occupancy Gantt for one approach."""
    if args.approach not in APPROACHES:
        print(f"unknown approach {args.approach!r}", file=sys.stderr)
        return 2
    cfg = GuiBenchConfig(approach=args.approach, kernel=GUI_KERNELS[args.kernel],
                         rate=float(args.rate), n_events=args.events,
                         await_style=args.await_style)
    # Rebuild the approach world with tracing enabled.
    trace = TraceRecorder()
    w = _build_world(cfg)
    w.edt.trace = trace
    for pool in w.pools.values():
        pool.trace = trace
    handler = _HANDLERS[cfg.approach]

    def fire(i: int) -> None:
        fired_at = w.sim.now
        w.edt.post(lambda: handler(w, lambda: w.stats.record(fired_at, w.sim.now)))

    fire_open_loop(w.sim, cfg.rate, cfg.n_events, fire)
    w.sim.run()
    print(f"timeline: {args.approach} on {args.kernel}, {args.rate} req/s, "
          f"{args.events} events")
    print(render_ascii(trace, width=args.width))
    print(f"mean response: {w.stats.mean * 1000:.1f} ms; "
          f"EDT busy: {trace.lane_busy_time('edt') * 1000:.1f} ms")
    return 0


def cmd_compile(args: argparse.Namespace) -> int:
    """Pyjama-style file compilation: ``repro compile app.py -o app_omp.py``."""
    from .compiler import compile_source
    from .compiler.codegen import BRIDGE, RUNTIME

    try:
        source = open(args.input, encoding="utf-8").read()
    except OSError as exc:
        print(f"cannot read {args.input}: {exc}", file=sys.stderr)
        return 2
    try:
        compiled = compile_source(source, filename=args.input)
    except SyntaxError as exc:
        print(f"syntax error: {exc}", file=sys.stderr)
        return 2
    except Exception as exc:  # DirectiveSyntaxError and friends
        print(f"compile error: {exc}", file=sys.stderr)
        return 2

    prelude = (
        "# Generated by `python -m repro compile`; do not edit.\n"
        f"import repro.compiler.bridge as {BRIDGE}\n"
        f"{RUNTIME} = None  # None = the process-default PjRuntime\n\n"
    )
    output = prelude + compiled + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(output)
        print(f"wrote {args.output}")
    else:
        print(output, end="")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Run a script under event tracing; export a Chrome/Perfetto trace.

    ``python -m repro trace examples/traced_gui_pipeline.py -o trace.json``
    then open the file at https://ui.perfetto.dev or ``chrome://tracing``.
    """
    import runpy

    from . import obs

    obs.enable(buffer_size=args.buffer)
    old_argv = sys.argv
    sys.argv = [args.script, *args.args]
    try:
        try:
            runpy.run_path(args.script, run_name="__main__")
        except SystemExit as exc:  # scripts may sys.exit(); keep the trace
            if exc.code not in (None, 0):
                print(f"script exited with {exc.code}", file=sys.stderr)
        except OSError as exc:
            print(f"cannot run {args.script}: {exc}", file=sys.stderr)
            return 2
    finally:
        sys.argv = old_argv
        obs.disable()
    events = obs.session().events()
    obs.write_chrome_trace(args.output, events)
    stats = obs.session().stats()
    print(
        f"wrote {args.output}: {len(events)} event(s) from "
        f"{stats['threads']} thread(s), {stats['dropped']} dropped "
        f"(open in https://ui.perfetto.dev or chrome://tracing)"
    )
    if args.timeline:
        print(obs.to_text_timeline(events))
    if args.metrics:
        print(obs.format_metrics(obs.compute_metrics(events)))
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    """Run the unified benchmark harness (see docs/BENCHMARKS.md).

    ``python -m repro bench --filter dispatch`` measures the dispatch group
    and writes ``BENCH_dispatch.json``; add ``--compare BASELINE.json`` to
    gate against an archived result (non-zero exit on regression).
    """
    import pathlib
    import re

    from . import bench as b

    b.load_builtin()
    if not args.no_external:
        b.load_external()

    if args.list:
        for bm in b.all_benchmarks():
            slow = " [slow]" if bm.slow else ""
            tags = f" tags={','.join(bm.tags)}" if bm.tags else ""
            print(f"{bm.name:<28} group={bm.group}{tags}{slow}  {bm.description}")
        return 0

    selected = b.select(args.filter, include_slow=args.slow)
    if not selected:
        print(f"no benchmarks match {args.filter!r} "
              "(use --list to see what is registered)", file=sys.stderr)
        return 2
    protocol = b.Protocol(warmup=args.warmup, repeats=args.repeats, trim=args.trim)
    results = b.run_selected(
        args.filter, protocol, include_slow=args.slow,
        progress=lambda name: print(f"  running {name} ...", file=sys.stderr),
    )
    document = b.results_document(results, protocol)

    stem = re.sub(r"[^A-Za-z0-9_.-]+", "_", args.filter) if args.filter else "all"
    out = pathlib.Path(args.output) if args.output else pathlib.Path(f"BENCH_{stem}.json")
    b.write_json(out, document)
    print(b.format_table(document))
    print(f"wrote {out}")

    if args.compare is None:
        return 0
    try:
        baseline = b.load_json(args.compare)
    except (OSError, ValueError) as exc:
        print(f"cannot load baseline: {exc}", file=sys.stderr)
        return 2
    comparisons, warnings = b.compare(
        document, baseline, max_regress_pct=args.max_regress
    )
    print(b.format_comparison(comparisons, warnings,
                              max_regress_pct=args.max_regress))
    return 1 if any(c.regressed for c in comparisons) else 0


def cmd_check(args: argparse.Namespace) -> int:
    """Concurrency stress + trace-invariant checker (docs/CHECKING.md).

    ``python -m repro check --profile smoke --seed 1234`` runs seeded random
    workloads and verifies the recorded trace; non-zero exit means an
    invariant was violated, and re-running with the printed seed reproduces
    the report byte-for-byte.
    """
    from . import check as c

    result = c.run_check(
        profile=args.profile,
        seed=args.seed,
        iterations=args.iterations,
        ops=args.ops,
        inject=args.inject,
        dist=args.dist,
        serve=args.serve,
        cluster=args.cluster,
        policy=args.policy,
    )
    print(c.render_report(result))
    return 0 if result.ok else 1


def cmd_cluster_worker(args: argparse.Namespace) -> int:
    """Serve as a cluster worker agent until interrupted (docs/DISTRIBUTION.md).

    ``python -m repro cluster-worker --listen 127.0.0.1:0`` binds a
    kernel-assigned port and announces it on stdout; cluster targets
    created with ``virtual_target_create_cluster`` connect to the announced
    ``host:port`` and dispatch region bodies here.
    """
    from .cluster import ClusterAgent, parse_endpoint
    from .cluster.agent import announce_line

    try:
        host, port = parse_endpoint(args.listen)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    agent = ClusterAgent(host, port, max_slots=args.slots)
    try:
        agent.start()
    except OSError as exc:
        print(f"cannot listen on {args.listen}: {exc}", file=sys.stderr)
        return 2
    print(announce_line(agent.host, agent.port), flush=True)
    try:
        agent.serve_forever()
    except KeyboardInterrupt:
        print("interrupted; stopping agent", file=sys.stderr)
    finally:
        agent.stop()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Live event-driven HTTP serving on virtual targets (docs/SERVING.md).

    ``python -m repro serve`` stands up the Fig. 9 server for real traffic;
    ``python -m repro serve --bench`` drives it with the in-process load
    generator and emits a ``repro.bench/v1`` JSON document.  Non-zero exit
    from ``--bench`` means a backend served nothing, hit transport errors,
    or failed to drain cleanly — CI uses that as the smoke gate.
    """
    import asyncio
    import json as _json
    import pathlib

    from . import obs
    from .bench import write_json
    from .serve import (
        HttpServer,
        ServeConfig,
        export_trace,
        latency_entry,
        run_closed_loop,
        run_open_loop,
        serve_document,
    )

    backends = ["thread", "process"] if args.backend == "both" else [args.backend]
    port = args.port if args.port is not None else (0 if args.bench else 8080)
    if args.trace:
        obs.enable()

    def make_config(backend: str) -> ServeConfig:
        return ServeConfig(
            host=args.host, port=port, backend=backend,
            workers=args.workers, queue_capacity=args.capacity,
            policy=args.policy, request_timeout=args.request_timeout,
            rounds=args.rounds,
            edt_name=f"http-edt-{backend}", cpu_target=f"http-cpu-{backend}",
        )

    def finish_trace() -> None:
        if args.trace:
            n = export_trace(args.trace)
            obs.disable()
            print(f"wrote {args.trace}: {n} event(s) "
                  "(open in https://ui.perfetto.dev or chrome://tracing)")

    if args.bench:
        async def bench_one(backend: str):
            server = HttpServer(make_config(backend))
            await server.start()
            try:
                if args.mode == "open":
                    res = await run_open_loop(
                        args.host, server.port, rate=args.rate,
                        duration=args.duration or 10.0,
                        payload_bytes=args.payload)
                else:
                    res = await run_closed_loop(
                        args.host, server.port, requests=args.requests,
                        concurrency=args.concurrency,
                        payload_bytes=args.payload)
            finally:
                await server.stop()
            return res, server

        entries: dict = {}
        serve_info: dict = {
            "mode": args.mode, "payload_bytes": args.payload,
            "policy": args.policy, "workers": args.workers,
            "capacity": args.capacity, "rounds": args.rounds,
            "backends": {},
        }
        failed = False
        for backend in backends:
            print(f"  serve bench: backend={backend} mode={args.mode} ...",
                  file=sys.stderr)
            res, server = asyncio.run(bench_one(backend))
            clean = server._drain_clean is not False
            summary = res.summary()
            summary["drain_clean"] = clean
            serve_info["backends"][backend] = summary
            if res.latencies_s:
                entries[f"serve_live_{backend}"] = latency_entry(
                    res.latencies_s, group="serve")
            lat = summary.get("latency_ms", {})
            print(f"{backend:>8}: {res.requests} responses "
                  f"({res.ok} ok) in {res.duration_s:.2f}s -> "
                  f"{res.throughput_rps:,.0f} req/s, "
                  f"p50 {lat.get('p50', 0):.2f} ms, "
                  f"p99 {lat.get('p99', 0):.2f} ms, "
                  f"drain {'clean' if clean else 'DOWNGRADED'}")
            if res.ok == 0 or res.errors or not clean:
                failed = True
        out = pathlib.Path(args.output or "SERVE_BENCH.json")
        write_json(out, serve_document(entries, serve_info))
        print(f"wrote {out}")
        finish_trace()
        return 1 if failed else 0

    if len(backends) != 1:
        print("plain serving needs a single --backend (thread or process)",
              file=sys.stderr)
        return 2

    async def serve_main() -> HttpServer:
        server = HttpServer(make_config(backends[0]))
        await server.start()
        print(f"serving on http://{args.host}:{server.port}/ "
              f"(backend={backends[0]}, policy={args.policy}) — "
              "POST /encrypt, GET /stats, GET /healthz", flush=True)
        try:
            if args.duration > 0:
                await asyncio.sleep(args.duration)
            else:
                await asyncio.Event().wait()  # Ctrl-C cancels and drains
        finally:
            await server.stop()
        return server

    try:
        server = asyncio.run(serve_main())
    except KeyboardInterrupt:
        print("\ninterrupted; drained and stopped", file=sys.stderr)
        finish_trace()
        return 0
    print(_json.dumps(server.stats.snapshot(), indent=2))
    finish_trace()
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Systematic interleaving exploration (docs/CHECKING.md, Exploration).

    ``python -m repro explore --workload post-2x1`` enumerates every
    interleaving of a workload model; a violating run writes its exact
    schedule to a file that ``--replay FILE`` re-executes step for step.
    Exit codes: 0 clean, 1 violation found, 2 replay diverged/mismatched.
    """
    from . import explore as x

    if args.list:
        width = max(len(n) for n in x.WORKLOADS)
        for name in sorted(x.WORKLOADS):
            print(f"{name:<{width}}  {x.WORKLOADS[name].description}")
        return 0

    if args.replay is not None:
        try:
            result = x.replay(args.replay)
        except (OSError, ValueError) as exc:
            print(f"cannot replay {args.replay}: {exc}", file=sys.stderr)
            return 2
        print(x.render_replay_report(result, args.replay))
        return 0 if result.identical else 2

    bound = None if args.preemptions < 0 else args.preemptions
    try:
        result = x.explore(
            args.workload,
            preemption_bound=bound,
            max_schedules=args.max_schedules,
            inject=args.inject,
            seed=args.seed,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    schedule_path = None
    if result.violating is not None:
        schedule_path = x.save_schedule(args.out, x.ScheduleFile(
            workload=result.workload,
            steps=result.violating.choices,
            inject=result.inject,
            violations=[v.render() for v in result.violating.violations],
            meta={"preemption_bound": result.preemption_bound,
                  "seed": result.seed},
        ))
    print(x.render_explore_report(result, schedule_path))
    return 0 if result.ok else 1


def cmd_kernels(args: argparse.Namespace) -> int:
    print(f"{'kernel':>12} | {'size':>8} | {'valid':>5} | {'t (ms)':>8} | paper | description")
    for name in sorted(KERNELS):
        spec = get_kernel(name)
        size = spec.sizes[args.size]
        ok = spec.validate(size)
        t = time_kernel(name, args.size, repeats=1)
        print(f"{name:>12} | {size:>8} | {str(ok):>5} | {t * 1000:>8.1f} | "
              f"{'yes' if spec.in_paper else 'ext':>5} | {spec.description}")
    return 0


def cmd_dist_info(args: argparse.Namespace) -> int:
    """Report what process/cluster-backed targets get from this host."""
    import multiprocessing
    import os

    from .cluster.transport import MAX_FRAME_BYTES
    from .dist.process_target import DEFAULT_START_METHOD
    from .dist.wire import HAVE_CLOUDPICKLE, PROTOCOL_VERSION

    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:
        usable = os.cpu_count() or 1
    rows = [
        ("cpu_count", os.cpu_count()),
        ("usable_cores (affinity)", usable),
        ("start_method (default)", DEFAULT_START_METHOD),
        ("start_methods (available)", ", ".join(multiprocessing.get_all_start_methods())),
        ("cloudpickle", "yes (closures/lambdas cross the wire)" if HAVE_CLOUDPICKLE
         else "no (module-level functions only)"),
        ("defaults", "max_restarts=3 heartbeat=1.0sx3 cancel_grace=5.0s"),
        ("cluster protocol", f"version {PROTOCOL_VERSION} "
         "(hello handshake on every connection)"),
        ("cluster framing", "4-byte big-endian length prefix + pickled "
         f"message, max frame {MAX_FRAME_BYTES // (1024 * 1024)} MiB"),
        ("cluster agent", "python -m repro cluster-worker --listen HOST:PORT"),
    ]
    width = max(len(label) for label, _ in rows)
    for label, value in rows:
        print(f"{label:>{width}} : {value}")
    if usable < 2:
        print(f"{'note':>{width}} : single usable core — process pools add "
              "isolation and crash containment here, not parallel speedup")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the evaluation of 'Towards an Event-Driven "
                    "Programming Model for OpenMP' (ICPP 2016).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("fig1", help="dispatch timelines (Figure 1)")
    p.add_argument("--handler-ms", type=float, default=200.0)
    p.add_argument("--spacing-ms", type=float, default=50.0)
    p.add_argument("--events", type=int, default=3)
    p.set_defaults(func=cmd_fig1)

    p = sub.add_parser("fig7", help="GUI response time vs load (Figure 7)")
    p.add_argument("--kernel", choices=sorted(GUI_KERNELS), default="crypt")
    p.add_argument("--rates", type=_parse_int_list,
                   default=[10, 20, 30, 40, 50, 60, 70, 80, 90, 100])
    p.add_argument("--events", type=int, default=200)
    p.add_argument("--approaches",
                   default="sequential,swingworker,executor,pyjama_async,sync_parallel")
    p.add_argument("--metric", choices=["response", "dispatch"], default="response",
                   help="dispatch = EDT responsiveness (fire -> handler start)")
    p.add_argument("--calibrate", action="store_true",
                   help="derive kernel times from this host's real kernels")
    p.set_defaults(func=cmd_fig7)

    p = sub.add_parser("fig8", help="async vs async-parallel (Figure 8)")
    p.add_argument("--kernel", choices=sorted(GUI_KERNELS), default="crypt")
    p.add_argument("--rates", type=_parse_int_list, default=[10, 30, 50, 80, 100])
    p.add_argument("--events", type=int, default=200)
    p.add_argument("--team", type=int, default=3)
    p.add_argument("--calibrate", action="store_true",
                   help="derive kernel times from this host's real kernels")
    p.set_defaults(func=cmd_fig8)

    p = sub.add_parser("fig9", help="HTTP throughput vs workers (Figure 9)")
    p.add_argument("--workers", type=_parse_int_list, default=[1, 2, 4, 8, 16, 32, 64])
    p.add_argument("--users", type=int, default=100)
    p.add_argument("--team", type=int, default=8)
    p.set_defaults(func=cmd_fig9)

    p = sub.add_parser("timeline", help="ASCII EDT/worker occupancy Gantt")
    p.add_argument("--approach", default="pyjama_async")
    p.add_argument("--kernel", choices=sorted(GUI_KERNELS), default="crypt")
    p.add_argument("--rate", type=float, default=30.0)
    p.add_argument("--events", type=int, default=8)
    p.add_argument("--width", type=int, default=72)
    p.add_argument("--await-style", choices=["continuation", "pumping"],
                   default="continuation",
                   help="pumping = Algorithm 1's nested message loops")
    p.set_defaults(func=cmd_timeline)

    p = sub.add_parser("kernels", help="validate and time the kernel suite")
    p.add_argument("--size", choices=["A", "B", "C"], default="A")
    p.set_defaults(func=cmd_kernels)

    p = sub.add_parser(
        "dist-info",
        help="report host capabilities for process-backed targets",
    )
    p.set_defaults(func=cmd_dist_info)

    p = sub.add_parser(
        "trace",
        help="run a script under event tracing; export a Chrome/Perfetto trace",
    )
    p.add_argument("script", help="python script to run (e.g. an example)")
    p.add_argument("args", nargs="*", help="arguments passed to the script")
    p.add_argument("-o", "--output", default="trace.json",
                   help="Chrome trace-event JSON output path")
    p.add_argument("--buffer", type=int, default=None,
                   help="per-thread ring-buffer capacity (events)")
    p.add_argument("--timeline", action="store_true",
                   help="also print the plain-text timeline")
    p.add_argument("--metrics", action="store_true",
                   help="also print latency histograms (p50/p95/p99)")
    p.set_defaults(func=cmd_trace)

    p = sub.add_parser(
        "bench",
        help="run the unified benchmark harness (docs/BENCHMARKS.md)",
    )
    p.add_argument("--filter", default=None,
                   help="substring matched against name/group/tags")
    p.add_argument("--warmup", type=int, default=2,
                   help="untimed warmup samples per benchmark")
    p.add_argument("--repeats", type=int, default=10,
                   help="timed samples per benchmark")
    p.add_argument("--trim", type=float, default=0.2,
                   help="fraction of slowest samples dropped before stats")
    p.add_argument("--slow", action="store_true",
                   help="include benchmarks marked slow")
    p.add_argument("--list", action="store_true",
                   help="list registered benchmarks and exit")
    p.add_argument("--no-external", action="store_true",
                   help="skip importing benchmarks/ registrations")
    p.add_argument("-o", "--output", default=None,
                   help="result JSON path (default: BENCH_<filter>.json in cwd)")
    p.add_argument("--compare", default=None, metavar="BASELINE.json",
                   help="gate against an archived result document")
    p.add_argument("--max-regress", type=float, default=25.0,
                   help="allowed p50 regression in percent (with --compare)")
    p.set_defaults(func=cmd_bench)

    p = sub.add_parser(
        "check",
        help="concurrency stress + trace-invariant checker (docs/CHECKING.md)",
    )
    p.add_argument("--profile", choices=["smoke", "soak"], default="smoke",
                   help="workload size: smoke = CI-sized, soak = long "
                        "schedules plus the process-target phase")
    p.add_argument("--seed", type=int, default=0,
                   help="workload seed; a failing report replays "
                        "byte-for-byte under the same seed")
    p.add_argument("--iterations", type=int, default=None,
                   help="override the profile's iteration count")
    p.add_argument("--ops", type=int, default=None,
                   help="override the profile's operations per iteration")
    p.add_argument("--inject", nargs="?", const="lying-exec-outcome",
                   choices=["lying-exec-outcome", "lost-dequeue",
                            "negative-depth"], default=None,
                   help="tamper with iteration 0's recorded events to prove "
                        "the checker catches a lying trace (forces exit 1)")
    p.add_argument("--dist", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="force the process-target phase on/off "
                        "(default: per profile)")
    p.add_argument("--serve", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="force the live HTTP worker-kill phase on/off "
                        "(default: per profile; soak runs it)")
    p.add_argument("--cluster", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="force the cluster agent-kill phase on/off: two "
                        "loopback-TCP agents, one killed mid-region "
                        "(default: per profile; soak runs it)")
    p.add_argument("--policy", action=argparse.BooleanOptionalAction,
                   default=None,
                   help="force the adaptive-policy phase on/off: stealing + "
                        "batching + autoscaling with a lane retired "
                        "mid-scale-up (default: per profile; soak runs it)")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "cluster-worker",
        help="serve as a cluster worker agent (docs/DISTRIBUTION.md)",
    )
    p.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                   help="bind address; port 0 = kernel-assigned, announced "
                        "on stdout (default: 127.0.0.1:0)")
    p.add_argument("--slots", type=int, default=None,
                   help="cap concurrent task lanes this agent accepts "
                        "(default: unlimited)")
    p.set_defaults(func=cmd_cluster_worker)

    p = sub.add_parser(
        "serve",
        help="live event-driven HTTP server on virtual targets "
             "(docs/SERVING.md)",
    )
    p.add_argument("--backend", choices=["thread", "process", "both"],
                   default="thread",
                   help="CPU-target backing; 'both' is --bench only")
    p.add_argument("--policy", choices=["block", "reject", "caller_runs"],
                   default="reject",
                   help="rejection policy of the CPU target's bounded queue")
    p.add_argument("--workers", type=int, default=4,
                   help="CPU-target pool size")
    p.add_argument("--capacity", type=int, default=64,
                   help="bounded queue capacity (admission window)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None,
                   help="listen port (default: 8080, or ephemeral in --bench)")
    p.add_argument("--duration", type=float, default=0.0,
                   help="seconds to serve (0 = until Ctrl-C); in --bench "
                        "--mode open, seconds of offered load")
    p.add_argument("--request-timeout", type=float, default=10.0,
                   help="per-request deadline before 504")
    p.add_argument("--rounds", type=int, default=1,
                   help="encrypt passes per request (CPU-cost knob)")
    p.add_argument("--bench", action="store_true",
                   help="self-load benchmark; emits repro.bench/v1 JSON")
    p.add_argument("--requests", type=int, default=100_000,
                   help="closed-loop request count (--bench)")
    p.add_argument("--concurrency", type=int, default=64,
                   help="closed-loop connection count (--bench)")
    p.add_argument("--mode", choices=["closed", "open"], default="closed",
                   help="closed = saturation throughput, open = fixed-rate "
                        "arrivals (--bench)")
    p.add_argument("--rate", type=float, default=1000.0,
                   help="open-loop arrival rate, req/s (--bench --mode open)")
    p.add_argument("--payload", type=int, default=64,
                   help="POST /encrypt body size in bytes")
    p.add_argument("--trace", default=None, metavar="TRACE.json",
                   help="export a Chrome/Perfetto trace of the served run")
    p.add_argument("-o", "--output", default=None,
                   help="bench JSON path (default: SERVE_BENCH.json)")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser(
        "explore",
        help="systematic interleaving exploration (docs/CHECKING.md)",
    )
    p.add_argument("--workload", default="post-2x1",
                   help="workload model to explore (see --list)")
    p.add_argument("--list", action="store_true",
                   help="list workload models and exit")
    p.add_argument("--max-schedules", type=int, default=2000,
                   help="run budget; exploration reports whether the "
                        "schedule tree was drained within it")
    p.add_argument("--preemptions", type=int, default=-1,
                   help="preemption bound per schedule (CHESS-style); "
                        "-1 = unbounded (exhaustive)")
    p.add_argument("--inject", nargs="?", const="lying-exec-outcome",
                   choices=["lying-exec-outcome", "lost-dequeue",
                            "negative-depth"], default=None,
                   help="tamper with each run's recorded events to prove "
                        "the explorer catches a lying trace (forces exit 1)")
    p.add_argument("--seed", type=int, default=None,
                   help="randomize continuation tie-breaks (schedule "
                        "diversity when the tree exceeds the budget); "
                        "deterministic per seed")
    p.add_argument("--out", default="explore-artifacts",
                   help="directory for violating schedule files")
    p.add_argument("--replay", default=None, metavar="FILE",
                   help="re-execute a saved schedule file and compare "
                        "its violations against the recording")
    p.set_defaults(func=cmd_explore)

    p = sub.add_parser(
        "compile", help="source-to-source compile a file's #omp pragmas"
    )
    p.add_argument("input")
    p.add_argument("-o", "--output", default=None,
                   help="output path (default: stdout)")
    p.set_defaults(func=cmd_compile)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
