"""MonteCarlo kernel: stock-path pricing (Java Grande *MonteCarlo*).

The Java Grande MonteCarlo benchmark generates many time series of an
underlying asset via geometric Brownian motion, derives per-path summary
statistics (expected return rate and volatility), and averages them across
paths.  Paths are independent — the natural ``omp for`` axis.

Model: with drift ``mu`` and volatility ``sigma``, the log-price follows

.. math::  d(\\ln S) = (\\mu - \\sigma^2/2)\\,dt + \\sigma\\,dW

so each simulated path applies i.i.d. normal increments.  Per-path we
re-estimate ``mu`` and ``sigma`` from the generated returns — exactly the
round trip the original benchmark performs — and the cross-path averages
should recover the model parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["MonteCarloConfig", "PathResult", "simulate_paths", "path_chunks", "run"]


@dataclass(frozen=True)
class MonteCarloConfig:
    """Simulation parameters (defaults follow the Java Grande data file:
    initial price ~100, about 15% annual drift, 30% volatility, 1000 steps
    covering one year of trading days)."""

    n_paths: int = 2000
    n_steps: int = 1000
    s0: float = 100.0
    mu: float = 0.15
    sigma: float = 0.3
    dt: float = 1.0 / 1000.0
    seed: int = 42


@dataclass(frozen=True)
class PathResult:
    """Cross-path averages of the re-estimated parameters."""

    mean_mu: float
    mean_sigma: float
    mean_final_price: float
    n_paths: int

    def combine(self, other: "PathResult") -> "PathResult":
        """Weighted merge of two partial results (reduction operator)."""
        n = self.n_paths + other.n_paths
        if n == 0:
            return PathResult(0.0, 0.0, 0.0, 0)
        w1, w2 = self.n_paths / n, other.n_paths / n
        return PathResult(
            mean_mu=w1 * self.mean_mu + w2 * other.mean_mu,
            mean_sigma=w1 * self.mean_sigma + w2 * other.mean_sigma,
            mean_final_price=w1 * self.mean_final_price + w2 * other.mean_final_price,
            n_paths=n,
        )


def simulate_paths(cfg: MonteCarloConfig, first: int, count: int) -> PathResult:
    """Simulate paths ``[first, first+count)`` and return their averages.

    Each path gets its own counter-based RNG stream so results are identical
    regardless of how the path range is partitioned across threads — the
    determinism property the chunked decomposition relies on.
    """
    if count <= 0:
        return PathResult(0.0, 0.0, 0.0, 0)
    mus = np.empty(count)
    sigmas = np.empty(count)
    finals = np.empty(count)
    drift = (cfg.mu - 0.5 * cfg.sigma**2) * cfg.dt
    vol = cfg.sigma * np.sqrt(cfg.dt)
    for i in range(count):
        rng = np.random.default_rng(np.random.SeedSequence((cfg.seed, first + i)))
        increments = drift + vol * rng.standard_normal(cfg.n_steps)
        log_path = np.concatenate(([np.log(cfg.s0)], np.log(cfg.s0) + np.cumsum(increments)))
        returns = np.diff(log_path)
        est_sigma2 = returns.var(ddof=1) / cfg.dt
        est_mu = returns.mean() / cfg.dt + 0.5 * est_sigma2
        mus[i] = est_mu
        sigmas[i] = np.sqrt(est_sigma2)
        finals[i] = np.exp(log_path[-1])
    return PathResult(
        mean_mu=float(mus.mean()),
        mean_sigma=float(sigmas.mean()),
        mean_final_price=float(finals.mean()),
        n_paths=count,
    )


def path_chunks(cfg: MonteCarloConfig, n_chunks: int) -> list[tuple[int, int]]:
    """Static decomposition of the path index range into (first, count)."""
    base, extra = divmod(cfg.n_paths, n_chunks)
    chunks = []
    first = 0
    for i in range(n_chunks):
        count = base + (1 if i < extra else 0)
        chunks.append((first, count))
        first += count
    return chunks


def run(cfg: MonteCarloConfig | None = None) -> PathResult:
    """The sequential kernel: all paths in one call."""
    cfg = cfg or MonteCarloConfig()
    return simulate_paths(cfg, 0, cfg.n_paths)
