"""Crypt kernel: IDEA block-cipher encryption (Java Grande section 2, *Crypt*).

The Java Grande Crypt benchmark encrypts and decrypts an ``N``-byte array
with the International Data Encryption Algorithm.  This is a faithful,
numpy-vectorised port: the cipher operates on 64-bit blocks as four 16-bit
words, 8 rounds plus an output transformation, driven by 52 16-bit subkeys
expanded from a 128-bit user key.

The workload is embarrassingly parallel over blocks, which is what the
original benchmark parallelises with ``omp for``; :func:`encrypt_chunks`
exposes the same decomposition for our worksharing layer.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "generate_key",
    "encryption_subkeys",
    "decryption_subkeys",
    "idea_cipher",
    "encrypt",
    "decrypt",
    "encrypt_chunks",
    "block_slices",
]

_MOD_MUL = 0x10001  # 2**16 + 1
_MASK = 0xFFFF
ROUNDS = 8
SUBKEYS = 6 * ROUNDS + 4  # 52


def generate_key(seed: int = 136506717) -> np.ndarray:
    """A deterministic 128-bit user key as eight 16-bit words.

    Java Grande seeds its linear-congruential generator with a constant; any
    fixed seed preserves reproducibility, which is all the benchmark needs.
    """
    rng = np.random.default_rng(seed)
    return rng.integers(0, 1 << 16, size=8, dtype=np.uint32)


def _mul_inv(x: int) -> int:
    """Multiplicative inverse modulo 2**16 + 1 under IDEA's convention that
    the word 0 represents 2**16."""
    if x <= 1:
        # 0 -> represents 65536 whose inverse is itself (i.e. encoded 0);
        # 1 -> 1.
        return x
    return pow(int(x), _MOD_MUL - 2, _MOD_MUL) & _MASK


def _add_inv(x: int) -> int:
    """Additive inverse modulo 2**16."""
    return (-int(x)) & _MASK


def encryption_subkeys(user_key: np.ndarray) -> np.ndarray:
    """Expand a 128-bit user key into the 52 encryption subkeys.

    Standard IDEA schedule: the first eight subkeys are the key itself; each
    following batch comes from rotating the 128-bit key left by 25 bits.
    """
    if user_key.shape != (8,):
        raise ValueError("user key must be eight 16-bit words")
    key = [int(w) & _MASK for w in user_key]
    subkeys = list(key)
    while len(subkeys) < SUBKEYS:
        # Rotate the most recent 8-word window left by 25 bits.
        window = subkeys[-8:]
        bits = 0
        for w in window:
            bits = (bits << 16) | w
        bits = ((bits << 25) | (bits >> (128 - 25))) & ((1 << 128) - 1)
        for shift in range(112, -1, -16):
            subkeys.append((bits >> shift) & _MASK)
    return np.array(subkeys[:SUBKEYS], dtype=np.uint32)


def decryption_subkeys(enc: np.ndarray) -> np.ndarray:
    """Invert an encryption key schedule (standard IDEA construction)."""
    if enc.shape != (SUBKEYS,):
        raise ValueError(f"expected {SUBKEYS} subkeys")
    e = [int(x) for x in enc]
    d = [0] * SUBKEYS
    # Output transform of encryption becomes the first round of decryption.
    d[0] = _mul_inv(e[48])
    d[1] = _add_inv(e[49])
    d[2] = _add_inv(e[50])
    d[3] = _mul_inv(e[51])
    d[4] = e[46]
    d[5] = e[47]
    pos = 6
    for r in range(1, ROUNDS):
        base = (ROUNDS - r) * 6
        d[pos] = _mul_inv(e[base])
        # Middle additive keys swap for all but the outermost transforms.
        d[pos + 1] = _add_inv(e[base + 2])
        d[pos + 2] = _add_inv(e[base + 1])
        d[pos + 3] = _mul_inv(e[base + 3])
        d[pos + 4] = e[base - 2]
        d[pos + 5] = e[base - 1]
        pos += 6
    d[48] = _mul_inv(e[0])
    d[49] = _add_inv(e[1])
    d[50] = _add_inv(e[2])
    d[51] = _mul_inv(e[3])
    return np.array(d, dtype=np.uint32)


def _mul(a: np.ndarray, b: int | np.ndarray) -> np.ndarray:
    """IDEA multiplication: modulo 2**16+1 with 0 encoding 2**16."""
    a64 = np.where(a == 0, 0x10000, a).astype(np.int64)
    b_arr = np.asarray(b, dtype=np.uint32)
    b64 = np.where(b_arr == 0, 0x10000, b_arr).astype(np.int64)
    r = (a64 * b64) % _MOD_MUL
    return np.where(r == 0x10000, 0, r).astype(np.uint32)


def idea_cipher(words: np.ndarray, subkeys: np.ndarray) -> np.ndarray:
    """Run the IDEA rounds over blocks given as an ``(n, 4)`` uint32 array.

    Vectorised over blocks; this is the per-block body that Java Grande's
    inner loop performs byte-wise.
    """
    if words.ndim != 2 or words.shape[1] != 4:
        raise ValueError("blocks must have shape (n, 4)")
    k = [int(x) for x in subkeys]
    x1, x2, x3, x4 = (words[:, i].astype(np.uint32) for i in range(4))
    pos = 0
    for _ in range(ROUNDS):
        x1 = _mul(x1, k[pos])
        x2 = (x2 + k[pos + 1]) & _MASK
        x3 = (x3 + k[pos + 2]) & _MASK
        x4 = _mul(x4, k[pos + 3])
        t1 = x1 ^ x3
        t2 = x2 ^ x4
        t1 = _mul(t1, k[pos + 4])
        t2 = (t1 + t2) & _MASK
        t2 = _mul(t2, k[pos + 5])
        t1 = (t1 + t2) & _MASK
        x1 = x1 ^ t2
        x4 = x4 ^ t1
        x2, x3 = x3 ^ t2, x2 ^ t1
        pos += 6
    out = np.empty_like(words)
    out[:, 0] = _mul(x1, k[pos])
    # The final transform undoes the last round's middle swap.
    out[:, 1] = (x3 + k[pos + 1]) & _MASK
    out[:, 2] = (x2 + k[pos + 2]) & _MASK
    out[:, 3] = _mul(x4, k[pos + 3])
    return out


def _bytes_to_blocks(data: np.ndarray) -> np.ndarray:
    if data.dtype != np.uint8:
        raise ValueError("plaintext must be uint8")
    if data.size % 8:
        raise ValueError("data length must be a multiple of 8 bytes")
    pairs = data.reshape(-1, 4, 2).astype(np.uint32)
    return (pairs[:, :, 0] << 8) | pairs[:, :, 1]


def _blocks_to_bytes(blocks: np.ndarray) -> np.ndarray:
    out = np.empty((blocks.shape[0], 4, 2), dtype=np.uint8)
    out[:, :, 0] = (blocks >> 8) & 0xFF
    out[:, :, 1] = blocks & 0xFF
    return out.reshape(-1)


def encrypt(data: np.ndarray, subkeys: np.ndarray) -> np.ndarray:
    """Encrypt a uint8 array (length divisible by 8) with IDEA."""
    return _blocks_to_bytes(idea_cipher(_bytes_to_blocks(data), subkeys))


def decrypt(data: np.ndarray, subkeys: np.ndarray) -> np.ndarray:
    """Decrypt; identical machinery with the inverted key schedule."""
    return encrypt(data, subkeys)


def block_slices(n_bytes: int, n_chunks: int) -> list[slice]:
    """Split a byte range into ``n_chunks`` block-aligned slices.

    Mirrors the static ``omp for`` decomposition of the Java Grande kernel.
    """
    if n_bytes % 8:
        raise ValueError("length must be a multiple of the 8-byte block size")
    n_blocks = n_bytes // 8
    chunks = []
    base, extra = divmod(n_blocks, n_chunks)
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        chunks.append(slice(start * 8, (start + size) * 8))
        start += size
    return chunks


def encrypt_chunks(
    data: np.ndarray, subkeys: np.ndarray, n_chunks: int
) -> list[tuple[slice, np.ndarray]]:
    """Encryption decomposed into independent chunk tasks.

    Returns ``(slice, ciphertext_chunk)`` pairs; callers may run the chunk
    computations on worker threads and stitch results by slice.
    """
    return [(s, encrypt(data[s], subkeys)) for s in block_slices(data.size, n_chunks)]
