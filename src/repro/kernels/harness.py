"""Kernel harness: uniform interface over the four Java Grande kernels.

The evaluation (paper §V-A) binds each GUI event to one kernel execution and
optionally parallelises the kernel body with classic OpenMP directives.  The
harness gives every kernel the same three entry points:

* ``run_sequential(size)`` — the whole kernel in the calling thread;
* ``run_chunk(size, chunk_id, n_chunks)`` — one independent piece, so the
  worksharing layer (or a worker virtual target) can split the kernel;
* ``validate(size)`` — the kernel's own correctness check.

Sizes follow Java Grande's A/B/C convention, scaled down so a single event
handler costs on the order of 10-100 ms in pure Python — the magnitude the
paper targets ("even computations lasting only a few hundred milliseconds").
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from . import crypt, montecarlo, raytracer, series, sor, sparsematmult

__all__ = [
    "KernelSpec",
    "KERNELS",
    "kernel_names",
    "paper_kernel_names",
    "get_kernel",
    "time_kernel",
]


@dataclass(frozen=True)
class KernelSpec:
    """Uniform kernel description.

    ``in_paper`` marks the four kernels the paper's §V-A evaluation selects;
    the registry also carries extension kernels from the same Java Grande
    suite (SOR, SparseMatMult) for schedule/structure variety.
    """

    name: str
    sizes: dict[str, Any]
    run_sequential: Callable[[Any], Any]
    run_chunk: Callable[[Any, int, int], Any]
    validate: Callable[[Any], bool]
    description: str = ""
    in_paper: bool = True
    #: What stitched chunks should equal.  None = the sequential result
    #: (flattened); phase-parallel kernels (SOR) provide their own, because
    #: one chunked phase is not the whole multi-iteration run.
    stitch_reference: Callable[[Any], Any] | None = None


# --------------------------------------------------------------------- crypt

_CRYPT_KEY = crypt.generate_key()
_CRYPT_EK = crypt.encryption_subkeys(_CRYPT_KEY)
_CRYPT_DK = crypt.decryption_subkeys(_CRYPT_EK)


def _crypt_data(n_bytes: int) -> np.ndarray:
    rng = np.random.default_rng(n_bytes)
    return rng.integers(0, 256, size=n_bytes, dtype=np.uint8)


def _crypt_seq(n_bytes: int) -> np.ndarray:
    return crypt.encrypt(_crypt_data(n_bytes), _CRYPT_EK)


def _crypt_chunk(n_bytes: int, chunk_id: int, n_chunks: int) -> np.ndarray:
    data = _crypt_data(n_bytes)
    s = crypt.block_slices(n_bytes, n_chunks)[chunk_id]
    return crypt.encrypt(data[s], _CRYPT_EK)


def _crypt_validate(n_bytes: int) -> bool:
    data = _crypt_data(n_bytes)
    return bool(
        np.array_equal(crypt.decrypt(crypt.encrypt(data, _CRYPT_EK), _CRYPT_DK), data)
    )


# -------------------------------------------------------------------- series


def _series_seq(n: int) -> np.ndarray:
    return series.fourier_coefficients(n)


def _series_chunk(n: int, chunk_id: int, n_chunks: int) -> np.ndarray:
    base, extra = divmod(n, n_chunks)
    start = chunk_id * base + min(chunk_id, extra)
    size = base + (1 if chunk_id < extra else 0)
    return series.coefficient_range(start, start + size)


def _series_validate(n: int) -> bool:
    got = series.fourier_coefficients(min(n, 4))
    ref = series.reference_first_coefficients()
    for j in range(min(n, 4)):
        a, b = ref[j]
        if abs(got[j, 0] - a) > 5e-3 or abs(got[j, 1] - b) > 5e-3:
            return False
    return True


# ---------------------------------------------------------------- montecarlo


def _mc_cfg(n_paths: int) -> montecarlo.MonteCarloConfig:
    return montecarlo.MonteCarloConfig(n_paths=n_paths)


def _mc_seq(n_paths: int) -> montecarlo.PathResult:
    return montecarlo.run(_mc_cfg(n_paths))


def _mc_chunk(n_paths: int, chunk_id: int, n_chunks: int) -> montecarlo.PathResult:
    cfg = _mc_cfg(n_paths)
    first, count = montecarlo.path_chunks(cfg, n_chunks)[chunk_id]
    return montecarlo.simulate_paths(cfg, first, count)


def _mc_validate(n_paths: int) -> bool:
    res = _mc_seq(max(n_paths, 200))
    cfg = _mc_cfg(n_paths)
    # The re-estimated parameters must recover the model within MC noise.
    return abs(res.mean_sigma - cfg.sigma) < 0.05 and abs(res.mean_mu - cfg.mu) < 0.5


# ----------------------------------------------------------------------- sor


def _sor_seq(n: int) -> "np.ndarray":
    return sor.run(n)


def _sor_chunk(n: int, chunk_id: int, n_chunks: int) -> "np.ndarray":
    """One red half-sweep band on the fresh grid (bands of one color are
    independent; a full iteration interleaves phases with barriers — see
    tests/integration for that usage)."""
    grid = sor.initial_grid(n)
    interior = n - 2
    base, extra = divmod(interior, n_chunks)
    start = 1 + chunk_id * base + min(chunk_id, extra)
    rows = base + (1 if chunk_id < extra else 0)
    sor.sweep_color_rows(grid, sor.RED, start, start + rows)
    return grid[start : start + rows]


def _sor_stitch_reference(n: int) -> "np.ndarray":
    grid = sor.initial_grid(n)
    sor.sweep_color(grid, sor.RED)
    return grid[1 : n - 1]


def _sor_validate(n: int) -> bool:
    n = max(n, 8)
    grid = sor.run(n, iterations=30)
    # SOR smooths towards the discrete-harmonic interior: the residual of
    # the interior Laplace stencil must have shrunk vs the initial grid.
    def residual(g):
        interior = g[1:-1, 1:-1]
        nb = 0.25 * (g[:-2, 1:-1] + g[2:, 1:-1] + g[1:-1, :-2] + g[1:-1, 2:])
        return float(np.abs(interior - nb).mean())

    return residual(grid) < 0.25 * residual(sor.initial_grid(n))


# -------------------------------------------------------------------- sparse


def _sparse_inputs(n: int):
    m = sparsematmult.random_csr(n)
    rng = np.random.default_rng(n)
    return m, rng.standard_normal(n)


def _sparse_seq(n: int) -> "np.ndarray":
    m, x = _sparse_inputs(n)
    return sparsematmult.matvec(m, x)


def _sparse_chunk(n: int, chunk_id: int, n_chunks: int) -> "np.ndarray":
    m, x = _sparse_inputs(n)
    base, extra = divmod(n, n_chunks)
    start = chunk_id * base + min(chunk_id, extra)
    rows = base + (1 if chunk_id < extra else 0)
    return sparsematmult.matvec_rows(m, x, start, start + rows)


def _sparse_validate(n: int) -> bool:
    n = min(max(n, 10), 400)
    m, x = _sparse_inputs(n)
    return bool(np.allclose(sparsematmult.matvec(m, x), m.to_dense() @ x))


# ----------------------------------------------------------------- raytracer

_RT_SCENE = raytracer.default_scene()


def _rt_seq(size: int) -> np.ndarray:
    return raytracer.render(_RT_SCENE, width=size, height=size)


def _rt_chunk(size: int, chunk_id: int, n_chunks: int) -> np.ndarray:
    base, extra = divmod(size, n_chunks)
    start = chunk_id * base + min(chunk_id, extra)
    rows = base + (1 if chunk_id < extra else 0)
    return raytracer.render_rows(_RT_SCENE, size, size, slice(start, start + rows))


def _rt_validate(size: int) -> bool:
    img = _rt_seq(min(size, 32))
    if img.shape != (min(size, 32), min(size, 32), 3):
        return False
    c = raytracer.checksum(img)
    return 0.0 < c < img.size  # channels clipped to [0,1] and scene non-empty


KERNELS: dict[str, KernelSpec] = {
    "crypt": KernelSpec(
        name="crypt",
        sizes={"A": 200_000 - 200_000 % 8, "B": 1_000_000, "C": 4_000_000},
        run_sequential=_crypt_seq,
        run_chunk=_crypt_chunk,
        validate=_crypt_validate,
        description="IDEA encryption of an N-byte array",
    ),
    "series": KernelSpec(
        name="series",
        sizes={"A": 40, "B": 150, "C": 500},
        run_sequential=_series_seq,
        run_chunk=_series_chunk,
        validate=_series_validate,
        description="First N Fourier coefficient pairs of (x+1)^x on [0,2]",
    ),
    "montecarlo": KernelSpec(
        name="montecarlo",
        sizes={"A": 200, "B": 1000, "C": 4000},
        run_sequential=_mc_seq,
        run_chunk=_mc_chunk,
        validate=_mc_validate,
        description="Monte-Carlo stock-path parameter recovery",
    ),
    "raytracer": KernelSpec(
        name="raytracer",
        sizes={"A": 32, "B": 96, "C": 192},
        run_sequential=_rt_seq,
        run_chunk=_rt_chunk,
        validate=_rt_validate,
        description="Ray-traced rendering of a 64-sphere scene",
    ),
    "sor": KernelSpec(
        name="sor",
        sizes={"A": 64, "B": 160, "C": 400},
        run_sequential=_sor_seq,
        run_chunk=_sor_chunk,
        validate=_sor_validate,
        description="Red-black successive over-relaxation (extension)",
        in_paper=False,
        stitch_reference=_sor_stitch_reference,
    ),
    "sparse": KernelSpec(
        name="sparse",
        sizes={"A": 2000, "B": 10_000, "C": 40_000},
        run_sequential=_sparse_seq,
        run_chunk=_sparse_chunk,
        validate=_sparse_validate,
        description="CSR sparse matrix-vector product (extension)",
        in_paper=False,
    ),
}


def kernel_names() -> list[str]:
    """All registered kernel names (paper set + extensions)."""
    return list(KERNELS)


def paper_kernel_names() -> list[str]:
    """The four kernels the paper's evaluation selects (§V-A)."""
    return [name for name, spec in KERNELS.items() if spec.in_paper]


def get_kernel(name: str) -> KernelSpec:
    """Look up a kernel by name; raises KeyError with the options listed."""
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {', '.join(KERNELS)}"
        ) from None


def time_kernel(name: str, size_class: str = "A", repeats: int = 3) -> float:
    """Median wall-clock seconds of one sequential kernel execution.

    Used to calibrate the simulator's cost models against this machine.
    """
    spec = get_kernel(name)
    size = spec.sizes[size_class]
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        spec.run_sequential(size)
        samples.append(time.perf_counter() - t0)
    samples.sort()
    return samples[len(samples) // 2]
