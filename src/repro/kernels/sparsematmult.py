"""SparseMatMult kernel: CSR sparse matrix-vector product (Java Grande).

Extension workload (the paper's GUI benchmark uses four other kernels from
the same suite).  The matrix is stored in compressed-sparse-row form built
from a seeded generator; the product parallelises over row ranges —
independent chunks, like Crypt, but with irregular per-row work, which makes
it the interesting case for the ``dynamic``/``guided`` schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["CsrMatrix", "random_csr", "matvec", "matvec_rows", "run"]


@dataclass(frozen=True)
class CsrMatrix:
    """Compressed sparse row storage."""

    n_rows: int
    n_cols: int
    row_ptr: np.ndarray   # int64, len n_rows+1
    col_idx: np.ndarray   # int64, len nnz
    values: np.ndarray    # float64, len nnz

    def __post_init__(self) -> None:
        if self.row_ptr.shape != (self.n_rows + 1,):
            raise ValueError("row_ptr must have n_rows+1 entries")
        if self.col_idx.shape != self.values.shape:
            raise ValueError("col_idx and values must align")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(self.values):
            raise ValueError("row_ptr must span [0, nnz]")
        if np.any(np.diff(self.row_ptr) < 0):
            raise ValueError("row_ptr must be non-decreasing")

    @property
    def nnz(self) -> int:
        return int(len(self.values))

    def to_dense(self) -> np.ndarray:
        dense = np.zeros((self.n_rows, self.n_cols))
        for r in range(self.n_rows):
            lo, hi = self.row_ptr[r], self.row_ptr[r + 1]
            dense[r, self.col_idx[lo:hi]] += self.values[lo:hi]
        return dense


def random_csr(
    n: int, nnz_per_row_mean: float = 5.0, seed: int = 7, skew: float = 2.0
) -> CsrMatrix:
    """A seeded random ``n x n`` CSR matrix with *skewed* row lengths.

    ``skew`` controls how unbalanced rows are (gamma-distributed lengths) —
    the property that separates the static and dynamic schedules.
    """
    if n < 1:
        raise ValueError("matrix must have at least one row")
    rng = np.random.default_rng(seed)
    lengths = np.minimum(
        rng.gamma(shape=1.0 / skew, scale=nnz_per_row_mean * skew, size=n).astype(np.int64),
        n,
    )
    row_ptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(lengths, out=row_ptr[1:])
    cols = np.concatenate(
        [rng.choice(n, size=length, replace=False) for length in lengths]
    ) if lengths.sum() else np.zeros(0, dtype=np.int64)
    values = rng.standard_normal(int(lengths.sum()))
    return CsrMatrix(n, n, row_ptr, cols.astype(np.int64), values)


def matvec_rows(m: CsrMatrix, x: np.ndarray, row_start: int, row_stop: int) -> np.ndarray:
    """``(A @ x)[row_start:row_stop]`` — the independent chunk."""
    if x.shape != (m.n_cols,):
        raise ValueError(f"x must have {m.n_cols} entries")
    row_start = max(0, row_start)
    row_stop = min(m.n_rows, row_stop)
    out = np.empty(max(0, row_stop - row_start))
    for i, r in enumerate(range(row_start, row_stop)):
        lo, hi = m.row_ptr[r], m.row_ptr[r + 1]
        out[i] = np.dot(m.values[lo:hi], x[m.col_idx[lo:hi]])
    return out


def matvec(m: CsrMatrix, x: np.ndarray) -> np.ndarray:
    """The full product (sequential kernel)."""
    return matvec_rows(m, x, 0, m.n_rows)


def run(n: int, repeats: int = 10, seed: int = 7) -> np.ndarray:
    """Java Grande shape: repeated products y = A x, feeding y back scaled."""
    m = random_csr(n, seed=seed)
    rng = np.random.default_rng(seed + 1)
    x = rng.standard_normal(n)
    for _ in range(repeats):
        y = matvec(m, x)
        norm = np.linalg.norm(y)
        x = y / norm if norm > 0 else x
    return x
