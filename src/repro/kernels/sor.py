"""SOR kernel: red-black successive over-relaxation (Java Grande *SOR*).

Not used in the paper's GUI benchmark (which picks Crypt, Series,
MonteCarlo, RayTracer) but part of the same Java Grande section-2 suite;
included as an extension workload because its parallel structure differs
from the other kernels: it is *phase-parallel* — within one red or black
half-sweep, disjoint row bands are independent, but the two phases of each
iteration must be separated by a barrier.  That makes it the natural demo
for ``omp for`` + implied barriers, as opposed to the embarrassingly
parallel chunk kernels.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "initial_grid",
    "sweep_color",
    "sweep_color_rows",
    "run",
    "checksum",
    "DEFAULT_OMEGA",
    "DEFAULT_ITERATIONS",
]

DEFAULT_OMEGA = 1.25
DEFAULT_ITERATIONS = 20

RED, BLACK = 0, 1


def initial_grid(n: int, seed: int = 20160816) -> np.ndarray:
    """A deterministic ``n x n`` grid with fixed (Dirichlet) boundary."""
    if n < 3:
        raise ValueError("grid must be at least 3x3")
    rng = np.random.default_rng(seed)
    return rng.random((n, n))


def _color_mask(shape: tuple[int, int], color: int) -> np.ndarray:
    rows = np.arange(shape[0])[:, None]
    cols = np.arange(shape[1])[None, :]
    return (rows + cols) % 2 == color


def sweep_color(grid: np.ndarray, color: int, omega: float = DEFAULT_OMEGA) -> None:
    """One half-sweep: relax every interior cell of *color*, in place.

    Cells of one color depend only on the other color's values, so the
    entire half-sweep is order-independent (and band-parallel).
    """
    sweep_color_rows(grid, color, 1, grid.shape[0] - 1, omega)


def sweep_color_rows(
    grid: np.ndarray, color: int, row_start: int, row_stop: int, omega: float = DEFAULT_OMEGA
) -> None:
    """Relax *color* cells of interior rows ``[row_start, row_stop)`` in place.

    Disjoint row ranges of the same color commute — the worksharing axis.
    """
    if color not in (RED, BLACK):
        raise ValueError("color must be RED (0) or BLACK (1)")
    row_start = max(row_start, 1)
    row_stop = min(row_stop, grid.shape[0] - 1)
    if row_start >= row_stop:
        return
    interior = grid[row_start:row_stop, 1:-1]
    neighbours = (
        grid[row_start - 1 : row_stop - 1, 1:-1]
        + grid[row_start + 1 : row_stop + 1, 1:-1]
        + grid[row_start:row_stop, :-2]
        + grid[row_start:row_stop, 2:]
    )
    mask = _color_mask(interior.shape, (color + row_start + 1) % 2)
    update = (1 - omega) * interior + omega * 0.25 * neighbours
    interior[mask] = update[mask]


def run(
    n: int,
    iterations: int = DEFAULT_ITERATIONS,
    omega: float = DEFAULT_OMEGA,
    seed: int = 20160816,
) -> np.ndarray:
    """The sequential kernel: red-black SOR on a fresh grid."""
    grid = initial_grid(n, seed)
    for _ in range(iterations):
        sweep_color(grid, RED, omega)
        sweep_color(grid, BLACK, omega)
    return grid


def checksum(grid: np.ndarray) -> float:
    """Java Grande-style validation value."""
    return float(grid.sum())
