"""Series kernel: Fourier coefficients of ``(x+1)^x`` (Java Grande *Series*).

The benchmark computes the first ``n`` pairs of Fourier coefficients of
``f(x) = (x+1)^x`` on the interval ``[0, 2]``:

.. math::

    a_j = \\int_0^2 f(x) \\cos(j \\pi x)\\,dx, \\qquad
    b_j = \\int_0^2 f(x) \\sin(j \\pi x)\\,dx

evaluated by composite trapezoidal integration with 1000 sub-intervals per
coefficient, exactly as the Java Grande kernel does.  Work is independent per
coefficient, which is the ``omp for`` axis.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "fourier_coefficients",
    "coefficient_range",
    "coefficient_chunks",
    "reference_first_coefficients",
]

INTERVAL = 2.0
DEFAULT_POINTS = 1000


def _f(x: np.ndarray) -> np.ndarray:
    """The integrand base function ``(x+1)^x``."""
    return np.power(x + 1.0, x)


def coefficient_range(
    start: int, stop: int, points: int = DEFAULT_POINTS
) -> np.ndarray:
    """Coefficients ``a_j, b_j`` for ``j`` in ``[start, stop)``.

    Returns an ``(stop-start, 2)`` array of ``(a_j, b_j)``.  ``j = 0`` yields
    ``(a_0/2, 0)`` following the Java Grande convention of storing the mean
    term in the first slot.
    """
    if start < 0 or stop < start:
        raise ValueError("need 0 <= start <= stop")
    x = np.linspace(0.0, INTERVAL, points + 1)
    fx = _f(x)
    out = np.empty((stop - start, 2), dtype=np.float64)
    for row, j in enumerate(range(start, stop)):
        if j == 0:
            out[row, 0] = np.trapezoid(fx, x) / INTERVAL
            out[row, 1] = 0.0
        else:
            omega = j * np.pi
            out[row, 0] = np.trapezoid(fx * np.cos(omega * x), x) * (2.0 / INTERVAL)
            out[row, 1] = np.trapezoid(fx * np.sin(omega * x), x) * (2.0 / INTERVAL)
    return out


def fourier_coefficients(n: int, points: int = DEFAULT_POINTS) -> np.ndarray:
    """First ``n`` coefficient pairs, sequentially (the serial kernel)."""
    return coefficient_range(0, n, points)


def coefficient_chunks(
    n: int, n_chunks: int, points: int = DEFAULT_POINTS
) -> list[tuple[slice, np.ndarray]]:
    """The kernel decomposed into ``n_chunks`` independent coefficient ranges.

    Mirrors a static ``omp for`` schedule over the coefficient index.
    """
    base, extra = divmod(n, n_chunks)
    chunks = []
    start = 0
    for i in range(n_chunks):
        size = base + (1 if i < extra else 0)
        if size:
            chunks.append(
                (slice(start, start + size), coefficient_range(start, start + size, points))
            )
        start += size
    return chunks


def reference_first_coefficients() -> dict[int, tuple[float, float]]:
    """High-accuracy reference values for validation.

    Computed with adaptive quadrature (scipy) at build time and frozen here so
    the library itself does not depend on scipy; tests cross-check against a
    fresh scipy run when available.
    """
    return {
        0: (2.8819181375448135, 0.0),
        1: (1.1340355956736667, -1.8820902650209874),
        2: (0.3622204698651016, -1.1648064092784118),
        3: (0.17031708266276055, -0.81470932068394),
    }
