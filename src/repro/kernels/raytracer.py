"""RayTracer kernel: sphere-scene rendering (Java Grande *RayTracer*).

The Java Grande RayTracer renders a scene of 64 spheres with one light, a
reflective shading model, and validates a checksum over the produced pixels.
This port keeps that structure — a grid of spheres, Lambert + specular
shading, hard shadows, and one reflection bounce — with rays vectorised per
image row.  Rows are independent: the ``omp for`` axis of the original.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Sphere", "Scene", "default_scene", "render_rows", "render", "checksum"]


@dataclass(frozen=True)
class Sphere:
    center: tuple[float, float, float]
    radius: float
    color: tuple[float, float, float]
    reflectivity: float = 0.4
    specular: float = 32.0


@dataclass
class Scene:
    spheres: list[Sphere] = field(default_factory=list)
    light_pos: tuple[float, float, float] = (-5.0, 8.0, -5.0)
    light_intensity: float = 1.0
    ambient: float = 0.08
    background: tuple[float, float, float] = (0.05, 0.05, 0.1)
    camera: tuple[float, float, float] = (0.0, 1.5, -6.0)
    max_depth: int = 2

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        centers = np.array([s.center for s in self.spheres], dtype=np.float64)
        radii = np.array([s.radius for s in self.spheres], dtype=np.float64)
        colors = np.array([s.color for s in self.spheres], dtype=np.float64)
        refl = np.array([s.reflectivity for s in self.spheres], dtype=np.float64)
        spec = np.array([s.specular for s in self.spheres], dtype=np.float64)
        return centers, radii, colors, refl, spec


def default_scene(n: int = 64) -> Scene:
    """A deterministic grid of *n* spheres, mirroring the 64-sphere JG scene."""
    side = max(1, int(round(n ** (1 / 3))))
    rng = np.random.default_rng(20160816)  # fixed: scene is part of the workload
    spheres = []
    i = 0
    for ix in range(side):
        for iy in range(side):
            for iz in range(side):
                if i >= n:
                    break
                center = (
                    (ix - (side - 1) / 2) * 2.0,
                    iy * 1.6 + 0.3,
                    iz * 2.0 + 1.0,
                )
                color = tuple(0.25 + 0.75 * rng.random(3))
                spheres.append(Sphere(center, 0.55, color))
                i += 1
    while i < n:
        center = tuple((rng.random(3) - 0.5) * 6.0)
        spheres.append(Sphere(center, 0.4, tuple(rng.random(3))))
        i += 1
    return Scene(spheres=spheres)


def _intersect(
    origins: np.ndarray, dirs: np.ndarray, centers: np.ndarray, radii: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest sphere hit per ray.

    Returns ``(t, index)`` with ``t = inf`` and ``index = -1`` for misses.
    ``origins``/``dirs``: (n, 3); ``centers``: (m, 3); ``radii``: (m,).
    """
    # Vector from each sphere center to each ray origin: (n, m, 3).
    oc = origins[:, None, :] - centers[None, :, :]
    b = np.einsum("nmk,nk->nm", oc, dirs)
    c = np.einsum("nmk,nmk->nm", oc, oc) - radii[None, :] ** 2
    disc = b * b - c
    hit = disc >= 0.0
    sqrt_disc = np.sqrt(np.where(hit, disc, 0.0))
    t0 = -b - sqrt_disc
    t1 = -b + sqrt_disc
    t = np.where(t0 > 1e-6, t0, np.where(t1 > 1e-6, t1, np.inf))
    t = np.where(hit, t, np.inf)
    idx = np.argmin(t, axis=1)
    tmin = t[np.arange(t.shape[0]), idx]
    idx = np.where(np.isinf(tmin), -1, idx)
    return tmin, idx


def _shade(
    origins: np.ndarray,
    dirs: np.ndarray,
    scene: Scene,
    arrays,
    depth: int,
) -> np.ndarray:
    centers, radii, colors, refl, spec = arrays
    n = origins.shape[0]
    out = np.tile(np.array(scene.background), (n, 1))
    if n == 0:
        return out
    t, idx = _intersect(origins, dirs, centers, radii)
    hit_mask = idx >= 0
    if not hit_mask.any():
        return out
    h_orig = origins[hit_mask]
    h_dir = dirs[hit_mask]
    h_t = t[hit_mask]
    h_idx = idx[hit_mask]

    points = h_orig + h_dir * h_t[:, None]
    normals = (points - centers[h_idx]) / radii[h_idx][:, None]
    base = colors[h_idx]

    light = np.array(scene.light_pos)
    to_light = light[None, :] - points
    dist_light = np.linalg.norm(to_light, axis=1)
    l_dir = to_light / dist_light[:, None]

    # Hard shadows: a hit between the point and the light blocks it.
    s_orig = points + normals * 1e-4
    st, sidx = _intersect(s_orig, l_dir, centers, radii)
    lit = (sidx < 0) | (st > dist_light)

    lambert = np.maximum(np.einsum("nk,nk->n", normals, l_dir), 0.0) * lit
    view = -h_dir
    half = l_dir + view
    half /= np.maximum(np.linalg.norm(half, axis=1, keepdims=True), 1e-12)
    spec_term = (
        np.power(np.maximum(np.einsum("nk,nk->n", normals, half), 0.0), spec[h_idx]) * lit
    )

    shade = (
        base * (scene.ambient + scene.light_intensity * lambert[:, None])
        + 0.5 * spec_term[:, None]
    )

    if depth < scene.max_depth:
        r_dir = h_dir - 2.0 * np.einsum("nk,nk->n", h_dir, normals)[:, None] * normals
        reflected = _shade(points + normals * 1e-4, r_dir, scene, arrays, depth + 1)
        k = refl[h_idx][:, None]
        shade = (1.0 - k) * shade + k * reflected

    out[hit_mask] = shade
    return out


def render_rows(scene: Scene, width: int, height: int, rows: slice) -> np.ndarray:
    """Render image rows ``rows`` of a ``height x width`` frame.

    Returns a float64 array of shape ``(n_rows, width, 3)`` in [0, 1].
    """
    arrays = scene.arrays()
    cam = np.array(scene.camera)
    ys = np.arange(height)[rows]
    aspect = width / height
    out = np.empty((len(ys), width, 3))
    xs = (np.arange(width) + 0.5) / width * 2.0 - 1.0
    for row_i, y in enumerate(ys):
        v = 1.0 - (y + 0.5) / height * 2.0
        dirs = np.stack(
            [xs * aspect, np.full(width, v + 0.3), np.ones(width)], axis=1
        )
        dirs /= np.linalg.norm(dirs, axis=1, keepdims=True)
        origins = np.tile(cam, (width, 1))
        out[row_i] = _shade(origins, dirs, scene, arrays, depth=0)
    return np.clip(out, 0.0, 1.0)


def render(scene: Scene, width: int = 64, height: int = 64) -> np.ndarray:
    """The sequential kernel: the full frame in one call."""
    return render_rows(scene, width, height, slice(0, height))


def checksum(image: np.ndarray) -> float:
    """The Java Grande-style validation value: sum of all pixel channels."""
    return float(image.sum())
