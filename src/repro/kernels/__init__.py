"""Java Grande kernel ports used by the paper's evaluation (§V-A).

Kernels: Crypt (IDEA encryption), Series (Fourier coefficients), MonteCarlo
(stock-path pricing), RayTracer (sphere scene).  Each exposes a sequential
form and an independent-chunk decomposition along the axis the original
benchmark parallelises with ``omp for``.
"""

from . import crypt, montecarlo, raytracer, series, sor, sparsematmult
from .harness import (
    KERNELS,
    KernelSpec,
    get_kernel,
    kernel_names,
    paper_kernel_names,
    time_kernel,
)

__all__ = [
    "crypt",
    "montecarlo",
    "raytracer",
    "series",
    "sor",
    "sparsematmult",
    "KERNELS",
    "KernelSpec",
    "get_kernel",
    "kernel_names",
    "paper_kernel_names",
    "time_kernel",
]
