"""repro.dist — process-backed virtual targets (supervised, GIL-free).

The distribution layer extends the paper's virtual-target abstraction from
threads to worker OS processes.  A :class:`ProcessTarget` registers under a
name like any other target — ``virtual_target_create_process_worker("gpu", 4)``
— and the directive layer (``virtual(name)``, scheduling clauses, ``timeout=``,
backpressure policies) works on it unchanged; what changes is *where* region
bodies run: in a pool of supervised worker processes, outside the parent
interpreter's GIL, so CPU-bound kernels scale with cores.

Module map:

* :mod:`~repro.dist.process_target` — the target itself: per-slot shipper
  threads, crash-to-:class:`~repro.core.errors.WorkerCrashedError` conversion,
  cross-process cancellation, shutdown semantics;
* :mod:`~repro.dist.worker` — the child-process entry point (task loop +
  control thread);
* :mod:`~repro.dist.wire` — serialization (cloudpickle when available) and
  the message protocol;
* :mod:`~repro.dist.supervisor` — heartbeats, restarts, restart budgets
  (generalised over a slot interface, so :mod:`repro.cluster` reuses it
  for socket-connected remote workers);
* :mod:`~repro.dist.remote_obs` — worker-side event capture and re-stamping
  onto the parent's trace clock.

The wire protocol carries an explicit version
(:data:`~repro.dist.wire.PROTOCOL_VERSION`): cluster connections open with
a hello handshake and fail with a structured
:class:`~repro.core.errors.ProtocolVersionError` on mismatch.

See ``docs/DISTRIBUTION.md`` for the architecture discussion.
"""

from ..core.errors import ProtocolVersionError
from .process_target import DEFAULT_START_METHOD, ProcessTarget
from .remote_obs import (
    WorkerEventLog,
    estimate_offset_ns,
    merge_worker_events,
    worker_track,
)
from .supervisor import Supervisor
from .wire import HAVE_CLOUDPICKLE, PROTOCOL_VERSION
from .worker import WorkerConfig, worker_main

__all__ = [
    "DEFAULT_START_METHOD",
    "HAVE_CLOUDPICKLE",
    "PROTOCOL_VERSION",
    "ProcessTarget",
    "ProtocolVersionError",
    "Supervisor",
    "WorkerConfig",
    "WorkerEventLog",
    "estimate_offset_ns",
    "merge_worker_events",
    "worker_main",
    "worker_track",
]
