"""`ProcessTarget`: a virtual target backed by supervised worker processes.

The process counterpart of :class:`~repro.core.targets.WorkerTarget` —
same name-based directive surface (``virtual(name)``, default/``nowait``/
``name_as``+``wait``/``await``, ``timeout=``), same bounded-queue
backpressure policies, same shutdown covenant (``wait=True`` drains,
``wait=False`` cancels, nothing is ever silently stranded) — but region
bodies execute on a pool of **worker OS processes**, outside this
interpreter's GIL.  That is the "device layer" move of the OpenMP-cluster
line of work (arXiv:2207.05677, 2205.10656): remote executors behind the
unchanged ``target`` abstraction.

Architecture (per target)::

    poster threads ──post()──▶ _TargetQueue (inherited: capacity, policies)
                                   │
                 ┌─────────────────┼─────────────────┐
        shipper thread 0   shipper thread 1   ...  (one per worker slot)
                 │ TaskMsg / ResultMsg over a duplex pipe
        worker process 0   worker process 1   ...  (repro.dist.worker)
                 ▲ PingMsg/PongMsg + CancelMsg over a second pipe
                 └──────────── Supervisor thread ────┘

Each slot owns one worker process and one parent-side *shipper* thread.
The shipper pulls the next item off the shared queue, serializes the
region's ``(body, args, kwargs)``, ships it, and waits for the result in a
poll loop that simultaneously watches for: the result, worker death
(→ :class:`~repro.core.errors.WorkerCrashedError` to the waiter, never a
hang), a parent-side cancellation (→ forwarded as a
:class:`~repro.dist.wire.CancelMsg`; a worker that ignores it past
``cancel_grace`` seconds is terminated and the lane reclaimed), and hard
shutdown.  Results and exceptions are delivered through
:meth:`~repro.core.region.TargetRegion.fulfill`, i.e. the normal
region-completion path, so waiters, tags, callbacks and the ``await``
logical barrier cannot tell a process region from a thread region.

Inline elision (Algorithm 1 lines 6-7) **never** applies here:
``supports_inline`` is False.  Elision is an optimization only when the
encountering thread *is* the execution environment — it shares the target's
address space and thread affinity, so running the block synchronously is
indistinguishable from posting it.  A process target's execution
environment is a different address space; eliding would silently move the
block's side effects (and its GIL contention) back into the parent, so the
affinity router in ``invoke_target_block`` always takes the posted path.

Tracing: the parent records SUBMIT/ENQUEUE/DEQUEUE as usual; EXEC spans are
recorded **in the worker**, shipped back with each result, re-stamped onto
the parent's clock (:mod:`repro.dist.remote_obs`) and attributed to a
``<target>[w<i>]`` track — Chrome/Perfetto shows one process row per
worker, with submit→exec flow arrows crossing process tracks.
"""

from __future__ import annotations

import logging
import multiprocessing
import threading
import time
from typing import Any, Callable

from ..core.errors import (
    RuntimeStateError,
    SerializationError,
    TargetShutdownError,
    WorkerCrashedError,
)
from ..core.region import TargetRegion
from ..core.targets import _SHUTDOWN, _WAKEUP, VirtualTarget, _item_identity
from ..obs import EventKind
from ..obs import recorder as _obs
from ..obs.events import now_ns
from . import wire
from .remote_obs import estimate_offset_ns, merge_worker_events, worker_track
from .supervisor import Supervisor
from .worker import WorkerConfig, worker_main

__all__ = ["ProcessTarget", "DEFAULT_START_METHOD"]

_logger = logging.getLogger(__name__)

#: ``spawn`` is the only start method that is safe in a multithreaded
#: parent: this runtime *is* threads (thread targets, EDTs, shippers), and
#: forking a threaded process can inherit locks mid-acquire.  ``fork`` /
#: ``forkserver`` remain selectable for single-threaded embedders that want
#: cheaper startup.
DEFAULT_START_METHOD = "spawn"

#: Poll tick of the result-wait loop: bounds crash/cancel/shutdown reaction
#: latency without busy-waiting.
_POLL_TICK = 0.05


class _WorkerSlot:
    """One lane of a process target: process + pipes + accounting.

    Lifecycle fields are guarded by ``lock`` (an RLock: the supervisor
    respawns while already holding it).  ``ctrl_lock`` serializes
    parent-side *sends* on the control pipe, which both the shipper
    (cancels) and the supervisor (pings) write to.
    """

    __slots__ = (
        "index", "lock", "ctrl_lock", "process", "task_conn", "ctrl_conn",
        "pid", "clock_offset", "spawns", "disabled", "busy", "last_pong",
        "thread",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.lock = threading.RLock()
        self.ctrl_lock = threading.Lock()
        self.process: multiprocessing.process.BaseProcess | None = None
        self.task_conn: Any = None
        self.ctrl_conn: Any = None
        self.pid: int | None = None
        self.clock_offset = 0
        self.spawns = 0          # total spawn attempts (first + respawns)
        self.disabled = False
        self.busy = False
        self.last_pong = 0.0     # time.monotonic() of the last heartbeat
        self.thread: threading.Thread | None = None

    @property
    def restarts(self) -> int:
        """Respawn attempts beyond the slot's first spawn."""
        return max(0, self.spawns - 1)

    # --------------------------------------------- supervisor slot interface

    @property
    def connected(self) -> bool:
        """A worker is attached to this lane (live or not-yet-reaped)."""
        return self.process is not None

    def is_alive(self) -> bool:
        proc = self.process
        return proc is not None and proc.is_alive()

    def exit_label(self) -> str:
        """Human-readable cause of death for supervisor log lines."""
        proc = self.process
        return f"exitcode {proc.exitcode}" if proc is not None else "no process"

    def drain_control(self) -> None:
        """Absorb pending control-channel traffic; pongs refresh liveness."""
        conn = self.ctrl_conn
        if conn is None:
            return
        try:
            while conn.poll(0):
                msg = conn.recv()
                if isinstance(msg, wire.PongMsg):
                    self.last_pong = time.monotonic()
        except (EOFError, OSError):
            pass  # pipe torn: the supervisor's liveness checks handle it

    # ------------------------------------------------------------ pipe sends

    def send_ping(self) -> None:
        with self.ctrl_lock:
            conn = self.ctrl_conn
            if conn is None:
                return
            try:
                conn.send(wire.PingMsg(now_ns()))
            except (OSError, ValueError):
                pass  # dead pipe: liveness checks will catch the corpse

    def send_cancel(self, seq: int) -> None:
        with self.ctrl_lock:
            conn = self.ctrl_conn
            if conn is None:
                return
            try:
                conn.send(wire.CancelMsg(seq))
            except (OSError, ValueError):
                pass

    # ------------------------------------------------------------- teardown

    def terminate(self) -> None:
        """Hard-kill the worker process (crash semantics follow)."""
        proc = self.process
        if proc is not None and proc.is_alive():
            try:
                proc.terminate()
            except Exception:  # noqa: BLE001 - already reaped
                pass

    def close_pipes(self) -> None:
        for conn in (self.task_conn, self.ctrl_conn):
            if conn is not None:
                try:
                    conn.close()
                except OSError:
                    pass
        self.task_conn = self.ctrl_conn = None

    def reap(self) -> int | None:
        """Join a dead process, drop the pipes; returns the exit code."""
        exitcode = None
        proc = self.process
        if proc is not None:
            proc.join(timeout=1.0)
            exitcode = proc.exitcode
            self.process = None
        self.close_pipes()
        self.busy = False
        return exitcode


class ProcessTarget(VirtualTarget):
    """A worker virtual target whose pool members are OS processes.

    Created by ``virtual_target_create_process_worker(tname, m)`` /
    :meth:`PjRuntime.create_process_worker`.  Parameters beyond the common
    target options:

    max_workers:
        Pool size — one worker process (and one shipper thread) per lane.
    max_restarts:
        Respawn budget *per slot*.  A slot whose worker keeps dying is
        disabled once the budget is spent; when the last slot disables, the
        backlog is failed (cancelled with the crash as reason) and the
        target refuses further posts.
    start_method:
        ``spawn`` (default, safe under threads) / ``fork`` / ``forkserver``.
    heartbeat_interval / heartbeat_misses:
        Supervisor probe cadence and the silent-interval budget after which
        an idle worker is declared wedged and replaced.
    cancel_grace:
        Seconds a worker may ignore a forwarded cancellation before its
        process is terminated and the lane reclaimed (this is what makes
        ``timeout=`` effective against a stuck worker).
    spawn_timeout:
        Budget for a new worker to come up and answer the clock handshake
        (covers interpreter start + imports under ``spawn``).
    """

    kind = "process"
    supports_inline = False   # different address space: elision would lie
    supports_pumping = False  # no parent thread is ever a member

    def __init__(
        self,
        name: str,
        max_workers: int,
        *,
        queue_capacity: int | None = None,
        rejection_policy: str = "block",
        max_restarts: int = 3,
        start_method: str | None = None,
        heartbeat_interval: float = 1.0,
        heartbeat_misses: int = 3,
        cancel_grace: float = 5.0,
        spawn_timeout: float = 60.0,
    ) -> None:
        if max_workers < 1:
            raise ValueError(
                f"process target needs at least 1 worker, got {max_workers}"
            )
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if cancel_grace <= 0:
            raise ValueError(f"cancel_grace must be > 0, got {cancel_grace}")
        super().__init__(
            name, queue_capacity=queue_capacity, rejection_policy=rejection_policy
        )
        self.max_workers = max_workers
        self.max_restarts = max_restarts
        self.cancel_grace = cancel_grace
        self.spawn_timeout = spawn_timeout
        self._ctx = multiprocessing.get_context(start_method or DEFAULT_START_METHOD)
        self._hard_stop = threading.Event()
        with self._stats_lock:
            self._stats.update({"worker_crashes": 0, "worker_restarts": 0})
        self._slots = [_WorkerSlot(i) for i in range(max_workers)]
        self._supervisor = Supervisor(
            self, interval=heartbeat_interval, misses=heartbeat_misses
        )
        for slot in self._slots:
            slot.thread = threading.Thread(
                target=self._shipper_loop,
                args=(slot,),
                name=f"repro-dist-{name}-ship-{slot.index}",
                daemon=True,
            )
            slot.thread.start()
        self._supervisor.start()

    # ------------------------------------------------------------ taxonomy

    @property
    def pool_size(self) -> int:
        return self.max_workers

    @property
    def restart_count(self) -> int:
        return sum(slot.restarts for slot in self._slots)

    @property
    def worker_pids(self) -> list[int | None]:
        """Current pid of each slot (None while down) — diagnostics."""
        return [slot.pid if slot.process is not None else None for slot in self._slots]

    def process_one(self, timeout: float | None = None) -> bool:
        """Process targets cannot run queued regions in the calling thread —
        the queue feeds worker *processes*, and executing a region here would
        silently move it back into this address space."""
        raise RuntimeStateError(
            f"process target {self.name!r} cannot be pumped: its queue is "
            "drained by shipper threads feeding worker processes"
        )

    def drain(self) -> int:
        """See :meth:`process_one` — draining in the caller is not allowed."""
        raise RuntimeStateError(
            f"process target {self.name!r} cannot be drained in the calling "
            "thread; use shutdown(wait=True) to run the backlog down"
        )

    # ------------------------------------------------------------- lifecycle

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool.

        ``wait=True`` drains: the backlog ships to the workers FIFO, shipper
        threads are joined, workers are stopped with a
        :class:`~repro.dist.wire.StopMsg` and joined.  ``wait=False``
        cancels: the queued backlog is withdrawn (waiters fail fast with
        ``RegionCancelledError``), in-flight regions are cancelled across
        the process boundary and their workers terminated, and nothing is
        joined — mirroring :class:`~repro.core.targets.WorkerTarget`.
        """
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        self._supervisor.stop()
        if not wait:
            self._hard_stop.set()
            self._queue.close()
            self._cancel_pending()
            # Nudge busy workers concurrently: forward a cancel for whatever
            # they are running.  Their shippers notice _hard_stop within one
            # poll tick, terminate them, and fail the in-flight regions.
            for slot in self._slots:
                if slot.busy:
                    slot.send_cancel(-1)  # wakes the control thread; benign
        for _ in self._slots:
            self._queue.put_internal(_SHUTDOWN)
        if wait:
            for slot in self._slots:
                if slot.thread is not None and slot.thread is not threading.current_thread():
                    slot.thread.join()
            self._supervisor.join()

    def _on_all_slots_disabled(self, cause: WorkerCrashedError) -> None:
        """Every lane exhausted its restart budget: fail the backlog.

        The no-lost-work covenant: queued regions are cancelled with the
        crash as reason (waiters see ``RegionCancelledError`` caused by
        :class:`WorkerCrashedError`), the queue closes, and further posts
        raise :class:`TargetShutdownError`.
        """
        if self._shutdown.is_set():
            return
        _logger.error(
            "process target %r lost all %d workers beyond their restart "
            "budgets; failing the backlog", self.name, self.max_workers,
        )
        self._shutdown.set()
        self._supervisor.stop()
        self._queue.close()
        cancelled = 0
        for item in self._queue.drain_items():
            if item is _SHUTDOWN or item is _WAKEUP:
                continue
            if isinstance(item, TargetRegion):
                if item.cancel(cause):
                    cancelled += 1
                    self._bump("cancelled_on_shutdown")
        if cancelled:
            _logger.error(
                "cancelled %d queued region(s) on dead target %r",
                cancelled, self.name,
            )

    # ---------------------------------------------------------- worker pool

    def _spawn_worker(self, slot: _WorkerSlot) -> None:
        """Start one worker process and run the clock-sync handshake.

        Called under ``slot.lock``.  Raises on any failure; the caller owns
        restart accounting.
        """
        parent_task, child_task = self._ctx.Pipe()
        parent_ctrl, child_ctrl = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=worker_main,
            args=(WorkerConfig(self.name, slot.index), child_task, child_ctrl),
            name=f"repro-dist-{self.name}-{slot.index}",
            daemon=True,
        )
        try:
            proc.start()
        except Exception:
            parent_task.close(); parent_ctrl.close()
            child_task.close(); child_ctrl.close()
            raise
        # The child inherited its ends; closing ours makes a dead child
        # surface as EOFError on recv instead of an indefinite block.
        child_task.close()
        child_ctrl.close()
        try:
            # Two-round clock handshake.  Round 1 absorbs interpreter
            # startup + imports (its round trip is wildly asymmetric, so its
            # midpoint would be tens of ms off); round 2 probes the warm
            # worker, where the trip is pure pipe latency, and sets the
            # offset.
            ack = None
            for probe, budget in ((1, self.spawn_timeout), (2, 5.0)):
                t0 = now_ns()
                parent_task.send(wire.SyncMsg(t0))
                if not parent_task.poll(budget):
                    raise RuntimeStateError(
                        f"worker {slot.index} of process target {self.name!r} "
                        f"did not answer clock probe {probe} within {budget}s"
                    )
                ack = parent_task.recv()
                t1 = now_ns()
                if not isinstance(ack, wire.SyncAck):
                    raise RuntimeStateError(
                        f"worker {slot.index} of process target {self.name!r} "
                        f"sent {type(ack).__name__} instead of the handshake ack"
                    )
        except Exception:
            try:
                proc.terminate()
            finally:
                proc.join(timeout=5.0)
                parent_task.close()
                parent_ctrl.close()
            raise
        slot.process = proc
        slot.task_conn = parent_task
        slot.ctrl_conn = parent_ctrl
        slot.pid = ack.pid
        slot.clock_offset = estimate_offset_ns(t0, t1, ack.worker_ns)
        slot.last_pong = time.monotonic()
        session = _obs.session()
        if session.enabled:
            session.emit(
                EventKind.WORKER_SPAWN, target=worker_track(self.name, slot.index),
                name=f"worker {slot.index}", arg=slot.pid,
            )

    def _ensure_worker(self, slot: _WorkerSlot) -> bool:
        """Make sure the slot has a live worker; spawn/respawn within budget.

        Returns False when the slot is disabled or the target is shutting
        down — the shipper then stops consuming.
        """
        disabled_now = False
        with slot.lock:
            while True:
                if slot.disabled:
                    return False
                # Gate on the *hard* stop, not _shutdown: a graceful
                # shutdown(wait=True) sets _shutdown while the backlog still
                # has to drain through live workers (respawning if needed).
                if self._hard_stop.is_set():
                    return False
                proc = slot.process
                if proc is not None and proc.is_alive():
                    return True
                if proc is not None:
                    # Died between regions (idle crash found by us, not the
                    # supervisor) — account and clean up.
                    exitcode = slot.reap()
                    self._bump("worker_crashes")
                    self._emit_worker_event(
                        slot, EventKind.WORKER_CRASH, arg=exitcode
                    )
                if slot.spawns > self.max_restarts:
                    slot.disabled = True
                    disabled_now = True
                    break
                slot.spawns += 1
                if slot.spawns > 1:
                    self._bump("worker_restarts")
                try:
                    self._spawn_worker(slot)
                except Exception as exc:  # noqa: BLE001 - spawn is best-effort
                    _logger.warning(
                        "spawn attempt %d for worker %d of target %r failed: %r",
                        slot.spawns, slot.index, self.name, exc,
                    )
                    continue
                return True
        if disabled_now:
            _logger.error(
                "worker %d of process target %r exceeded its restart budget "
                "(%d respawns); disabling the lane",
                slot.index, self.name, self.max_restarts,
            )
            if all(s.disabled for s in self._slots):
                self._on_all_slots_disabled(
                    WorkerCrashedError(
                        self.name, slot.index,
                        detail=f"all {self.max_workers} workers exceeded "
                               f"max_restarts={self.max_restarts}",
                    )
                )
        return False

    def _respawn_slot(self, slot: _WorkerSlot) -> None:
        """Supervisor entry point: replace a dead/wedged idle worker."""
        self._ensure_worker(slot)

    def _emit_worker_event(
        self, slot: _WorkerSlot, kind: EventKind, arg: object = None
    ) -> None:
        session = _obs.session()
        if session.enabled:
            session.emit(
                kind, target=worker_track(self.name, slot.index),
                name=f"worker {slot.index}", arg=arg,
            )

    # -------------------------------------------------------------- shipping

    def _shipper_loop(self, slot: _WorkerSlot) -> None:
        try:
            while True:
                if not self._ensure_worker(slot):
                    return
                item = self._queue.get()
                if item is _SHUTDOWN:
                    return
                if item is _WAKEUP:
                    continue
                self._execute_remote(slot, item)
        finally:
            self._retire_slot(slot)

    def _retire_slot(self, slot: _WorkerSlot) -> None:
        """Stop the slot's worker on shipper exit (drain or hard stop)."""
        with slot.lock:
            proc = slot.process
            if proc is None:
                return
            if proc.is_alive():
                if self._hard_stop.is_set():
                    slot.terminate()
                else:
                    # Graceful stop: drain sentinel on both pipes, bounded join.
                    try:
                        slot.task_conn.send(wire.StopMsg())
                    except (OSError, ValueError):
                        pass
                    with slot.ctrl_lock:
                        try:
                            slot.ctrl_conn.send(wire.StopMsg())
                        except (OSError, ValueError):
                            pass
                    proc.join(timeout=5.0)
                    if proc.is_alive():
                        _logger.warning(
                            "worker %d of target %r ignored StopMsg; terminating",
                            slot.index, self.name,
                        )
                        slot.terminate()
            exitcode = slot.reap()
            self._emit_worker_event(slot, EventKind.WORKER_EXIT, arg=exitcode)

    def _wrap_item(self, item: TargetRegion | Callable[[], Any]) -> TargetRegion:
        if isinstance(item, TargetRegion):
            return item
        # Plain callables (events posted by higher layers) ride as anonymous
        # regions; failures are logged parent-side, same policy as the
        # thread-backed dispatch loop.
        _rid, label = _item_identity(item)
        return TargetRegion(item, name=label)

    def _execute_remote(self, slot: _WorkerSlot, item: Any) -> None:
        session = _obs.session()
        region = self._wrap_item(item)
        if session.enabled:
            session.emit(
                EventKind.DEQUEUE, target=self.name, region=region.seq,
                name=region.label,
            )
            self._trace_depth(session)
        if region.done:
            return  # withdrawn (cancelled) while queued: nothing to ship
        try:
            blob = wire.dumps(
                (region.body, region.args, region.kwargs),
                what=f"payload of region {region.name!r}",
            )
        except SerializationError as exc:
            region.fulfill(exception=exc)
            self._log_plain_failure(item, region)
            return
        if not region.mark_running():
            return  # cancelled between dequeue and ship
        with slot.lock:
            proc = slot.process
            if proc is None or not proc.is_alive():
                self._handle_worker_failure(slot, region, detail="died before dispatch")
                return
            conn = slot.task_conn
            slot.busy = True
        try:
            try:
                conn.send(
                    wire.TaskMsg(
                        region.seq, region.name, region.source, blob,
                        session.enabled,
                    )
                )
            except (OSError, ValueError) as exc:
                self._handle_worker_failure(
                    slot, region, detail=f"task send failed: {exc!r}"
                )
                return
            self._await_result(slot, region)
        finally:
            with slot.lock:
                slot.busy = False
            self._log_plain_failure(item, region)

    def _await_result(self, slot: _WorkerSlot, region: TargetRegion) -> None:
        """Wait for the worker's verdict while watching for crash/cancel/stop."""
        conn = slot.task_conn
        cancel_sent_at: float | None = None
        while True:
            try:
                if conn.poll(_POLL_TICK):
                    msg = conn.recv()
                    if isinstance(msg, wire.ResultMsg) and msg.seq == region.seq:
                        self._deliver(slot, region, msg)
                        return
                    continue  # stale or unknown: keep waiting for ours
            except (EOFError, OSError):
                self._handle_worker_failure(slot, region, detail="pipe closed mid-region")
                return
            if self._hard_stop.is_set():
                # shutdown(wait=False): fail the in-flight region fast.
                slot.send_cancel(region.seq)
                slot.terminate()
                region.fulfill(exception=TargetShutdownError(self.name))
                with slot.lock:
                    slot.reap()
                return
            if not slot.process.is_alive():
                self._handle_worker_failure(slot, region)
                return
            if region.cancel_token.cancelled:
                now = time.monotonic()
                if cancel_sent_at is None:
                    # Parent-side cancellation (deadline watchdog, explicit
                    # request_cancel): forward it so the worker-side token —
                    # the one the body actually polls — flips too.
                    slot.send_cancel(region.seq)
                    cancel_sent_at = now
                elif now - cancel_sent_at > self.cancel_grace:
                    # The body ignored cooperative cancellation; reclaim the
                    # lane.  The next loop iteration takes the crash path.
                    _logger.warning(
                        "worker %d of target %r ignored cancellation of "
                        "region %r for %.1fs; terminating",
                        slot.index, self.name, region.name, self.cancel_grace,
                    )
                    slot.terminate()

    def _deliver(self, slot: _WorkerSlot, region: TargetRegion, msg: wire.ResultMsg) -> None:
        session = _obs.session()
        if session.enabled and msg.events:
            merge_worker_events(
                session, msg.events,
                offset_ns=slot.clock_offset,
                track=worker_track(self.name, slot.index),
                thread=f"pid {slot.pid}",
            )
        if msg.ok:
            try:
                value = wire.loads(msg.blob, what=f"result of region {region.name!r}")
            except SerializationError as exc:
                region.fulfill(exception=exc)
                return
            region.fulfill(result=value)
        else:
            region.fulfill(
                exception=wire.unpack_exception(msg.exc_blob, msg.exc_text, msg.exc_tb)
            )

    def _handle_worker_failure(
        self, slot: _WorkerSlot, region: TargetRegion, detail: str | None = None
    ) -> None:
        """A worker died with *region* in flight: fail the waiter, account."""
        with slot.lock:
            exitcode = slot.reap()
            self._bump("worker_crashes")
            self._emit_worker_event(slot, EventKind.WORKER_CRASH, arg=exitcode)
        if self._hard_stop.is_set():
            exc: Exception = TargetShutdownError(self.name)
        else:
            exc = WorkerCrashedError(
                self.name, slot.index,
                pid=slot.pid, exitcode=exitcode,
                region_name=region.name, detail=detail,
            )
        region.fulfill(exception=exc)
        _logger.error(
            "worker %d of process target %r (pid %s) crashed%s running region "
            "%r (exitcode %s)",
            slot.index, self.name, slot.pid,
            f" [{detail}]" if detail else "", region.name, exitcode,
        )

    def _log_plain_failure(self, item: Any, region: TargetRegion) -> None:
        """Plain callables have no waiter; surface their failures in the log."""
        if isinstance(item, TargetRegion) or region.exception is None:
            return
        _logger.error(
            "unhandled exception in %r posted to %s: %r",
            item, self.name, region.exception,
        )
