"""Wire format of process-backed virtual targets.

Everything that crosses the parent↔worker boundary is defined here, so the
protocol reads in one place:

* **Payload serialization** — :func:`dumps`/:func:`loads`.  Region bodies
  are arbitrary Python callables; the standard pickler refuses lambdas,
  closures and locally defined functions, so we prefer `cloudpickle
  <https://github.com/cloudpipe/cloudpickle>`_ when the interpreter ships it
  and fall back to plain :mod:`pickle` otherwise.  Serialization failures
  are wrapped in :class:`~repro.core.errors.SerializationError` with
  guidance, never surfaced as a raw ``TypeError`` from pickler internals.
* **Messages** — small slotted classes (not dataclasses: they are pickled
  on every hop and the fixed ``__reduce__`` below keeps them stable across
  interpreter versions).  Two channels per worker:

  - the *task* channel (parent shipper thread ↔ worker main thread):
    :class:`SyncMsg`/:class:`SyncAck` clock handshake at spawn, then
    :class:`TaskMsg` → :class:`ResultMsg` pairs, terminated by
    :class:`StopMsg`;
  - the *control* channel (parent supervisor/shipper → worker control
    thread): :class:`PingMsg` → :class:`PongMsg` heartbeats and
    :class:`CancelMsg` cooperative-cancellation requests, which must remain
    deliverable *while the worker's main thread is busy executing a region*
    — the reason control rides a separate pipe.

The payload of a task is the tuple ``(body, args, kwargs)`` serialized as
one blob: serializing eagerly in the parent (rather than letting
``Connection.send`` pickle lazily) means an unpicklable payload is rejected
at dispatch with a clear error instead of killing the channel mid-protocol.
Results come back the same way — the *worker* serializes eagerly so an
unpicklable return value becomes an error result, not a dead worker.
"""

from __future__ import annotations

import pickle
import traceback
from typing import Any

from ..core.errors import ProtocolVersionError, RemoteExecutionError, SerializationError

try:  # cloudpickle widens what can cross the wire (lambdas, closures, ...)
    import cloudpickle as _pickler
    HAVE_CLOUDPICKLE = True
except ImportError:  # pragma: no cover - environment-dependent
    _pickler = pickle
    HAVE_CLOUDPICKLE = False

__all__ = [
    "HAVE_CLOUDPICKLE",
    "PROTOCOL_VERSION",
    "ProtocolVersionError",
    "check_protocol_version",
    "dumps",
    "loads",
    "pack_exception",
    "unpack_exception",
    "HelloMsg",
    "SyncMsg",
    "SyncAck",
    "TaskMsg",
    "ClusterTaskMsg",
    "ResultMsg",
    "StopMsg",
    "PingMsg",
    "PongMsg",
    "CancelMsg",
    "TagDoneMsg",
]

#: Version of the message protocol defined in this module.  Bumped whenever
#: a message gains/loses a field or changes meaning.  Pipe-backed process
#: targets never see a mismatch (parent and child share one checkout by
#: construction), but cluster workers are separate invocations — possibly of
#: a different checkout — so every socket connection opens with a
#: :class:`HelloMsg` carrying this number, and a mismatch raises a
#: structured :class:`ProtocolVersionError` instead of undefined behaviour
#: deep inside message dispatch.
PROTOCOL_VERSION = 1


def check_protocol_version(theirs: int, *, peer: str | None = None) -> None:
    """Raise :class:`ProtocolVersionError` unless *theirs* matches ours."""
    if theirs != PROTOCOL_VERSION:
        raise ProtocolVersionError(PROTOCOL_VERSION, theirs, peer=peer)


def dumps(obj: Any, *, what: str = "payload") -> bytes:
    """Serialize *obj*; raise :class:`SerializationError` naming *what*."""
    try:
        return _pickler.dumps(obj)
    except Exception as exc:  # noqa: BLE001 - picklers raise a zoo of types
        raise SerializationError(what, exc) from exc


def loads(blob: bytes, *, what: str = "payload") -> Any:
    """Deserialize a :func:`dumps` blob; failures (e.g. a module importable
    in the parent but not in the worker) become :class:`SerializationError`."""
    try:
        return _pickler.loads(blob)
    except Exception as exc:  # noqa: BLE001
        raise SerializationError(what, exc) from exc


def pack_exception(exc: BaseException) -> tuple[bytes | None, str, str]:
    """(blob-or-None, repr, formatted traceback) for shipping a failure.

    The blob is None when the exception itself cannot be pickled — the
    receiving side then reconstructs a :class:`RemoteExecutionError` from
    the repr and traceback text instead.
    """
    tb = "".join(traceback.format_exception(type(exc), exc, exc.__traceback__))
    try:
        blob = _pickler.dumps(exc)
    except Exception:  # noqa: BLE001 - unpicklable exception: ship text only
        blob = None
    return blob, repr(exc), tb


def unpack_exception(blob: bytes | None, text: str, tb: str) -> BaseException:
    """Rebuild a shipped failure; degrade to :class:`RemoteExecutionError`
    when the original exception could not make the trip."""
    if blob is not None:
        try:
            exc = _pickler.loads(blob)
        except Exception:  # noqa: BLE001
            return RemoteExecutionError(text, tb)
        if isinstance(exc, BaseException):
            # Preserve the worker-side traceback for post-mortems: the
            # unpickled exception's __traceback__ never survives the trip.
            exc.remote_traceback = tb  # type: ignore[attr-defined]
            return exc
    return RemoteExecutionError(text, tb)


class _Msg:
    """Base for wire messages: slotted, field-order pickled, repr'd."""

    __slots__: tuple[str, ...] = ()

    def __init__(self, *values: Any) -> None:
        for field, value in zip(self.__slots__, values):
            setattr(self, field, value)

    def __reduce__(self):
        return (type(self), tuple(getattr(self, f) for f in self.__slots__))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        fields = ", ".join(f"{f}={getattr(self, f)!r}" for f in self.__slots__)
        return f"<{type(self).__name__} {fields}>"


class HelloMsg(_Msg):
    """First frame on every cluster connection, both directions.

    ``version`` is the sender's :data:`PROTOCOL_VERSION` — checked with
    :func:`check_protocol_version` before anything else is parsed, because
    it is the only field whose meaning must never change.  ``role`` names
    what the connection is for (``"task"`` or ``"ctrl"``); ``target_name``
    and ``slot`` identify which parent-side lane the connection serves, so
    the agent can pair a lane's task and control channels; ``meta`` is a
    small dict of non-load-bearing extras (pid, hostname) for diagnostics.
    """

    __slots__ = ("version", "role", "target_name", "slot", "meta")


class SyncMsg(_Msg):
    """Parent → worker, first message: clock-sync probe.

    ``parent_ns`` is the parent's ``perf_counter_ns`` at send time; the
    worker answers with :class:`SyncAck` immediately so the parent can
    estimate the clock offset from the round trip.
    """

    __slots__ = ("parent_ns",)


class SyncAck(_Msg):
    """Worker → parent: ``worker_ns`` is the worker's ``perf_counter_ns``
    captured while answering the :class:`SyncMsg`; ``pid`` confirms which
    process answered."""

    __slots__ = ("worker_ns", "pid")


class TaskMsg(_Msg):
    """Parent → worker: one region to execute.

    ``seq`` is the parent-side ``TargetRegion.seq`` (the trace correlation
    id); ``name``/``source`` reproduce the region's identity worker-side so
    traces and error messages carry the user's labels; ``blob`` is the
    :func:`dumps` of ``(body, args, kwargs)``; ``trace`` tells the worker
    whether to record (and ship back) execution events.
    """

    __slots__ = ("seq", "name", "source", "blob", "trace")


class ClusterTaskMsg(_Msg):
    """Parent → cluster worker: one region to execute, tag-aware.

    The cluster superset of :class:`TaskMsg`: same first five fields, plus
    ``tag`` — the region's ``name_as`` group, or None.  A tagged task makes
    the worker send a :class:`TagDoneMsg` the moment the body finishes,
    *before* the (possibly large) result payload is serialized and shipped,
    so cross-host ``wait_tag`` progress is visible at body-completion
    latency rather than result-transfer latency.  A separate class (not a
    new :class:`TaskMsg` field) keeps the pipe protocol of process targets
    byte-identical.
    """

    __slots__ = ("seq", "name", "source", "blob", "trace", "tag")


class ResultMsg(_Msg):
    """Worker → parent: the outcome of one :class:`TaskMsg`.

    ``ok`` selects the branch: on success ``blob`` is the :func:`dumps` of
    the return value; on failure ``exc_blob``/``exc_text``/``exc_tb`` are
    the :func:`pack_exception` triple.  ``events`` is the worker-side event
    log (list of ``(kind, ts_ns, region, name, arg)`` tuples on the
    *worker's* clock) and ``events_dropped`` how many were discarded when
    the bounded log overflowed.
    """

    __slots__ = (
        "seq", "ok", "blob", "exc_blob", "exc_text", "exc_tb",
        "events", "events_dropped",
    )


class StopMsg(_Msg):
    """Parent → worker: drain sentinel; the worker main loop exits."""

    __slots__ = ()


class PingMsg(_Msg):
    """Supervisor → worker control thread: liveness probe."""

    __slots__ = ("sent_ns",)


class PongMsg(_Msg):
    """Worker control thread → supervisor: echo of :class:`PingMsg`.

    Answered by a dedicated thread, so a pong proves the worker process is
    alive and scheduling threads even while its main thread grinds through
    a long region.
    """

    __slots__ = ("sent_ns", "pid")


class CancelMsg(_Msg):
    """Parent → worker control thread: set the cooperative cancel token of
    the region ``seq`` if it is currently executing (stale seqs are ignored
    — the region may have finished while the message was in flight)."""

    __slots__ = ("seq",)


class TagDoneMsg(_Msg):
    """Cluster worker → parent: a tagged region's body finished.

    Sent on the task channel immediately after the body of a
    :class:`ClusterTaskMsg` with a non-None ``tag`` returns — before result
    serialization — so the parent learns of tag-group progress across hosts
    at body-completion latency.  ``outcome`` is ``"completed"`` or
    ``"failed"``; the authoritative terminal state (and the value) still
    arrive with the :class:`ResultMsg` that follows.
    """

    __slots__ = ("seq", "tag", "outcome")
