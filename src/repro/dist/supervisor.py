"""Worker-pool supervision: heartbeats, crash detection, restarts.

A :class:`Supervisor` is one daemon thread per remote-backed target — the
same sweep serves process targets (workers behind pipes,
:mod:`repro.dist.process_target`) and cluster targets (workers behind
sockets, :mod:`repro.cluster.target`), because it is written against the
slot interface below rather than ``multiprocessing`` internals.  Division
of labour with the per-slot shipper threads:

* a worker that dies **mid-region** is caught by its shipper's result-wait
  loop within one poll tick (the shipper is already watching that worker) —
  the shipper fails the in-flight region with
  :class:`~repro.core.errors.WorkerCrashedError` and respawns on the next
  dispatch;
* a worker that dies **idle** has no shipper watching it (the shipper is
  parked on the target queue), so the supervisor's periodic sweep respawns
  it eagerly — the next region must not pay the spawn latency or, worse,
  be shipped into a dead pipe;
* a worker that is **alive but wedged** (e.g. a native extension stuck in a
  syscall) stops answering pings; after ``heartbeat_misses`` silent
  intervals an *idle* wedged worker is terminated and respawned.  A *busy*
  silent worker is left to the deadline machinery — killing it would turn a
  slow region into a crashed one, which is the waiter's call (via
  ``timeout=``), not ours.

Every respawn beyond a slot's first spawn counts against the target's
``max_restarts`` budget; a slot that exhausts it is disabled, and when the
last slot disables the target fails its backlog rather than queueing work
nothing will ever run (the same no-lost-work covenant as
``shutdown(wait=False)``).

Heartbeats are answered by a dedicated control thread worker-side, so a
pong proves the process schedules threads even while its main thread grinds
through a long region — ``Process.is_alive()`` alone cannot distinguish
"computing" from "wedged".

Slot interface
--------------
Each entry of ``target._slots`` must provide: ``lock`` (RLock), the flags
``disabled``/``busy``/``last_pong``/``index``, the properties/methods
``connected`` (a worker is attached), ``is_alive()`` (it is believed live),
``drain_control()`` (absorb pending control-channel messages, refreshing
``last_pong`` on pongs), ``exit_label()`` (human-readable cause of death
for the log line), ``terminate()`` and ``send_ping()`` — plus a
``target._respawn_slot(slot)`` entry point.  ``_WorkerSlot`` implements it
over a process + pipes; ``_ClusterSlot`` over two socket transports.
"""

from __future__ import annotations

import logging
import threading
import time

_logger = logging.getLogger(__name__)

__all__ = ["Supervisor"]


class Supervisor:
    """Periodic health sweep over a remote-backed target's worker slots."""

    def __init__(
        self,
        target,  # ProcessTarget/ClusterTarget; untyped: circular import
        *,
        interval: float = 1.0,
        misses: int = 3,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"heartbeat interval must be > 0, got {interval}")
        if misses < 1:
            raise ValueError(f"heartbeat misses must be >= 1, got {misses}")
        self._target = target
        self.interval = interval
        self.misses = misses
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop,
            name=f"repro-dist-supervisor-{target.name}",
            daemon=True,
        )
        self.sweeps = 0

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()

    def join(self, timeout: float | None = 5.0) -> None:
        if self._thread.is_alive() and self._thread is not threading.current_thread():
            self._thread.join(timeout)

    # ------------------------------------------------------------------ sweep

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            try:
                self.sweep()
            except Exception:  # noqa: BLE001 - supervision must not die
                _logger.exception(
                    "supervisor sweep failed for target %r", self._target.name
                )

    def sweep(self) -> None:
        """One pass: collect pongs, respawn idle corpses, probe the living."""
        self.sweeps += 1
        for slot in self._target._slots:
            if self._stop.is_set():
                return
            self._check_slot(slot)

    def _check_slot(self, slot) -> None:
        with slot.lock:
            if slot.disabled or not slot.connected:
                return
            slot.drain_control()
            alive = slot.is_alive()
            busy = slot.busy
            if not alive and busy:
                return  # the shipper is on it: it polls liveness every tick
            if not alive:
                # Idle crash: no shipper is watching; respawn eagerly so the
                # next region does not pay spawn latency into a dead lane.
                _logger.warning(
                    "worker %d of target %r died idle (%s); respawning",
                    slot.index, self._target.name, slot.exit_label(),
                )
                self._target._respawn_slot(slot)
                return
            silent_for = time.monotonic() - slot.last_pong
            if not busy and silent_for > self.misses * self.interval:
                # Alive but not answering pings while idle: wedged.  Replace.
                _logger.warning(
                    "worker %d of target %r (pid %s) missed %d heartbeats; "
                    "terminating and respawning",
                    slot.index, self._target.name, slot.pid, self.misses,
                )
                slot.terminate()
                self._target._respawn_slot(slot)
                return
        # Ping outside slot.lock: sends only contend on the ctrl channel lock.
        slot.send_ping()
