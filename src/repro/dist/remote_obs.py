"""Cross-process observability: worker-side event capture + clock merge.

The obs layer's contract (``docs/OBSERVABILITY.md``) is a single timeline on
one ``perf_counter_ns`` clock.  A worker process has its *own*
``perf_counter_ns`` origin, so its raw timestamps are meaningless in the
parent.  The fix is the classic two-step of distributed tracers:

1. **Offset estimation at spawn.**  The parent timestamps a
   :class:`~repro.dist.wire.SyncMsg` send (``t0``), the worker answers with
   its own clock reading ``w``, the parent timestamps the reply (``t1``).
   Assuming the two pipe hops are symmetric, the worker read ``w`` at parent
   time ``(t0 + t1) / 2``, giving ``offset = (t0 + t1) // 2 - w``.  Pipe
   hops on one host are tens of microseconds, so the estimate is far finer
   than the millisecond-scale spans it positions.
2. **Re-stamping at merge.**  Worker events ship back as plain tuples with
   each result; :func:`merge_worker_events` adds the offset and replays them
   into the parent's :class:`~repro.obs.TraceSession` under a per-worker
   track name, so Chrome/Perfetto shows one process row per worker with its
   ``run`` spans aligned against the parent's SUBMIT/ENQUEUE/DEQUEUE events.

Worker-side capture is a deliberately tiny bounded list, not a full
:class:`~repro.obs.TraceSession`: a worker emits a handful of events per
region (EXEC_BEGIN/EXEC_END today) and ships them immediately, so rings,
thread-locals and generation counters would be dead weight.
"""

from __future__ import annotations

from typing import Iterable

from ..obs import EventKind
from ..obs.events import now_ns
from ..obs.recorder import TraceSession

__all__ = ["WorkerEventLog", "estimate_offset_ns", "merge_worker_events", "worker_track"]

#: Cap on events buffered per task worker-side.  EXEC begin/end is 2; the
#: headroom is for future per-region kinds without unbounded growth if a
#: region body itself emits.
DEFAULT_LOG_LIMIT = 256


def estimate_offset_ns(t0_parent: int, t1_parent: int, worker_ns: int) -> int:
    """Clock offset such that ``worker_ts + offset`` is on the parent clock."""
    return (t0_parent + t1_parent) // 2 - worker_ns


def worker_track(target_name: str, worker_id: int) -> str:
    """Trace track name of one worker: ``<target>[w<i>]``.

    Used as the event's *target* so the Chrome exporter assigns each worker
    its own process row (one pid per target name), mirroring the fact that
    it really is a separate OS process.
    """
    return f"{target_name}[w{worker_id}]"


class WorkerEventLog:
    """Bounded in-worker event buffer, shipped back with each result.

    Records ``(kind_value, ts_ns, region, name, arg)`` tuples on the
    worker's own clock.  Tuples — not :class:`~repro.obs.TraceEvent` —
    because they are pickled on every result hop and must stay cheap and
    version-stable.
    """

    __slots__ = ("limit", "items", "dropped")

    def __init__(self, limit: int = DEFAULT_LOG_LIMIT) -> None:
        self.limit = limit
        self.items: list[tuple[int, int, int | None, str | None, object]] = []
        self.dropped = 0

    def emit(
        self,
        kind: EventKind,
        *,
        region: int | None = None,
        name: str | None = None,
        arg: object = None,
    ) -> None:
        """Record one event at the worker's current ``perf_counter_ns``."""
        if len(self.items) >= self.limit:
            self.dropped += 1
            return
        self.items.append((int(kind), now_ns(), region, name, arg))

    def drain(self) -> list[tuple[int, int, int | None, str | None, object]]:
        """Hand over (and clear) the buffered events for shipping."""
        items, self.items = self.items, []
        return items


def merge_worker_events(
    session: TraceSession,
    events: Iterable[tuple[int, int, int | None, str | None, object]],
    *,
    offset_ns: int,
    track: str,
    thread: str,
) -> int:
    """Replay worker events into the parent session on the shared clock.

    *track* becomes the event's target (one Chrome process row per worker),
    *thread* its thread label (``pid <n>``).  Returns how many events were
    merged.  Unknown kind values (a newer worker talking to an older parent)
    are skipped rather than corrupting the stream.
    """
    merged = 0
    for kind_value, ts, region, name, arg in events:
        try:
            kind = EventKind(kind_value)
        except ValueError:
            continue
        session.emit(
            kind, target=track, region=region, name=name, arg=arg,
            ts=ts + offset_ns, thread=thread,
        )
        merged += 1
    return merged
