"""The worker-process side of a process-backed virtual target.

:func:`worker_main` is the ``multiprocessing.Process`` entry point.  Each
worker runs two threads:

* the **main thread** drives the task loop: clock-sync handshake, then
  ``recv`` a :class:`~repro.dist.wire.TaskMsg`, rebuild the region, run it,
  ship a :class:`~repro.dist.wire.ResultMsg` (result *or* exception, plus
  the worker-side trace events), repeat until :class:`~repro.dist.wire.StopMsg`;
* a daemon **control thread** answers heartbeat pings and applies
  cooperative cancellation — it owns the control pipe, so both keep working
  while the main thread is deep inside a region body.

Regions execute as real :class:`~repro.core.region.TargetRegion` instances,
so worker-side user code keeps the full in-process contract:
``current_region()`` resolves, and ``current_region().cancel_token`` is the
*same token* the parent's :class:`CancelMsg` flips — a body written to poll
its token cooperates with cancellation identically on thread and process
targets.

Failure policy mirrors the thread-backed dispatch loop: nothing a region
body does may kill the worker.  Exceptions are captured and shipped;
unpicklable payloads/results/exceptions degrade to typed errors
(:class:`~repro.core.errors.SerializationError`,
:class:`~repro.core.errors.RemoteExecutionError`) rather than breaking the
protocol.  Only a torn pipe (the parent died) exits the loop.
"""

from __future__ import annotations

import os
import threading
from typing import Any

from ..core.region import TargetRegion
from ..obs import EventKind
from ..obs.events import now_ns
from . import wire
from .remote_obs import WorkerEventLog

__all__ = ["WorkerConfig", "worker_main"]


class WorkerConfig:
    """Identity handed to a worker at spawn (picklable, version-stable)."""

    __slots__ = ("target_name", "worker_id")

    def __init__(self, target_name: str, worker_id: int) -> None:
        self.target_name = target_name
        self.worker_id = worker_id

    def __reduce__(self):
        return (WorkerConfig, (self.target_name, self.worker_id))


class _Current:
    """The region the main thread is executing, shared with the control
    thread under a lock so cancel requests can find its token."""

    __slots__ = ("_lock", "_seq", "_region")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._seq: int | None = None
        self._region: TargetRegion | None = None

    def set(self, seq: int, region: TargetRegion) -> None:
        with self._lock:
            self._seq, self._region = seq, region

    def clear(self) -> None:
        with self._lock:
            self._seq, self._region = None, None

    def cancel(self, seq: int) -> None:
        """Flip the cancel token iff *seq* is still the executing region."""
        with self._lock:
            if self._seq == seq and self._region is not None:
                self._region.cancel_token.set()


def _control_loop(ctrl_conn: Any, current: _Current) -> None:
    """Answer pings and deliver cancellations until the pipe tears."""
    while True:
        try:
            msg = ctrl_conn.recv()
        except (EOFError, OSError):
            return
        if isinstance(msg, wire.PingMsg):
            try:
                ctrl_conn.send(wire.PongMsg(msg.sent_ns, os.getpid()))
            except (OSError, ValueError):
                return
        elif isinstance(msg, wire.CancelMsg):
            current.cancel(msg.seq)
        elif isinstance(msg, wire.StopMsg):
            return


def _error_result(seq: int, exc: BaseException, log: WorkerEventLog) -> wire.ResultMsg:
    blob, text, tb = wire.pack_exception(exc)
    return wire.ResultMsg(seq, False, None, blob, text, tb, log.drain(), log.dropped)


def _run_task(
    msg: wire.TaskMsg,
    config: WorkerConfig,
    current: _Current,
    on_body_done=None,
) -> wire.ResultMsg:
    """Execute one task; always returns a ResultMsg (never raises).

    ``on_body_done(region)``, when given, fires the moment the body returns
    — before the result is serialized — so callers can announce completion
    (cluster tag notifications) at body latency, not result-transfer latency.
    """
    log = WorkerEventLog()
    try:
        body, args, kwargs = wire.loads(msg.blob, what=f"payload of region {msg.name!r}")
    except Exception as exc:  # noqa: BLE001 - SerializationError or worse
        return _error_result(msg.seq, exc, log)

    region = TargetRegion(body, *args, **kwargs)
    # Adopt the parent-side identity so current_region(), traces and error
    # messages show the user's region, not a worker-local counter.
    region.name = msg.name
    region.source = msg.source
    current.set(msg.seq, region)
    try:
        if msg.trace:
            log.emit(EventKind.EXEC_BEGIN, region=msg.seq, name=region.label)
        region.run()  # captures body exceptions on the region
        if msg.trace:
            log.emit(
                EventKind.EXEC_END, region=msg.seq, name=region.label,
                arg="failed" if region.exception is not None else "completed",
            )
    finally:
        current.clear()

    if on_body_done is not None:
        try:
            on_body_done(region)
        except Exception:  # noqa: BLE001 - a notification must not kill the task
            pass
    if region.exception is not None:
        return _error_result(msg.seq, region.exception, log)
    try:
        blob = wire.dumps(region.result(), what=f"result of region {msg.name!r}")
    except Exception as exc:  # noqa: BLE001 - unpicklable result
        return _error_result(msg.seq, exc, log)
    return wire.ResultMsg(msg.seq, True, blob, None, None, None, log.drain(), log.dropped)


def worker_main(config: WorkerConfig, task_conn: Any, ctrl_conn: Any) -> None:
    """Entry point of one worker process (the ``Process`` target).

    Protocol: answer the clock-sync handshake, then loop over tasks until a
    :class:`~repro.dist.wire.StopMsg` arrives or the parent disappears.
    """
    current = _Current()
    ctrl = threading.Thread(
        target=_control_loop,
        args=(ctrl_conn, current),
        name=f"repro-dist-ctrl-{config.target_name}-{config.worker_id}",
        daemon=True,
    )
    ctrl.start()

    while True:
        try:
            msg = task_conn.recv()
        except (EOFError, OSError):
            return  # parent went away: nothing left to serve
        if isinstance(msg, wire.SyncMsg):
            # Clock-sync probe: answer as fast as possible so the parent's
            # round-trip midpoint estimate is tight.  The parent probes twice
            # at spawn — the first round absorbs interpreter startup, only
            # the second (warm, pure pipe latency) sets the offset.
            try:
                task_conn.send(wire.SyncAck(now_ns(), os.getpid()))
            except (OSError, ValueError):
                return
            continue
        if isinstance(msg, wire.StopMsg):
            return
        if not isinstance(msg, wire.TaskMsg):
            continue  # unknown message from a newer parent: skip, stay alive
        result = _run_task(msg, config, current)
        try:
            task_conn.send(result)
        except (OSError, ValueError, EOFError):
            return  # parent tore the pipe mid-result
