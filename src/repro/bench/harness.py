"""The benchmark registry and timing protocol.

The paper's core claim is quantitative — virtual-target dispatch must be
cheap enough that handlers gain asynchrony "without restructuring the
sequential code" (Section V measures dispatch overhead directly).  Guarding
that claim across PRs needs one harness producing *comparable* numbers, not
sixteen scripts each hand-rolling ``time.perf_counter`` loops.

Protocol
--------
Every benchmark is measured the same way, on the shared ``perf_counter_ns``
clock (the same clock the trace layer stamps events with):

1. *setup* builds the operation under test (and an optional cleanup);
2. ``warmup`` untimed samples prime caches, lazy imports, and thread pools;
3. ``repeats`` timed samples follow, each timing ``number`` back-to-back
   invocations of the operation and recording the mean ns/op;
4. the slowest ``trim`` fraction of samples is discarded before aggregate
   statistics — timer outliers on a busy host are one-sided (GC pauses,
   scheduler preemption), so trimming only the top keeps the floor honest;
5. statistics (min/mean/p50/p95/max) are computed over the kept samples.

The clock is injectable (``Protocol.clock``) so the protocol itself is
testable with a deterministic fake clock.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

__all__ = [
    "Benchmark",
    "BenchResult",
    "Protocol",
    "benchmark",
    "register",
    "unregister",
    "get",
    "all_benchmarks",
    "select",
    "run_benchmark",
    "run_selected",
    "clear_registry",
]


@dataclass(frozen=True)
class Protocol:
    """The shared measurement protocol (see module docstring)."""

    warmup: int = 2
    repeats: int = 10
    trim: float = 0.2
    clock: Callable[[], int] = time.perf_counter_ns

    def __post_init__(self) -> None:
        if self.warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {self.warmup}")
        if self.repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {self.repeats}")
        if not 0.0 <= self.trim < 1.0:
            raise ValueError(f"trim must be in [0, 1), got {self.trim}")


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark.

    *setup* is called once per run and returns either the operation to time
    (a zero-argument callable) or a ``(operation, cleanup)`` pair; *cleanup*
    runs after measurement even if the operation raised.  *number* is the
    inner-loop count per timed sample — raise it until one sample comfortably
    exceeds the clock's resolution (microbenchmarks want hundreds).
    """

    name: str
    setup: Callable[[], Any]
    group: str = "default"
    number: int = 1
    tags: tuple[str, ...] = ()
    description: str = ""
    slow: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("benchmark name must be non-empty")
        if self.number < 1:
            raise ValueError(f"number must be >= 1, got {self.number}")

    def build(self) -> tuple[Callable[[], Any], Callable[[], None]]:
        """Run setup; normalize to an (operation, cleanup) pair."""
        built = self.setup()
        if isinstance(built, tuple):
            op, cleanup = built
            return op, cleanup
        return built, lambda: None

    def matches(self, pattern: str) -> bool:
        """Substring match against name, group, and tags (case-insensitive)."""
        p = pattern.lower()
        return (
            p in self.name.lower()
            or p in self.group.lower()
            or any(p in t.lower() for t in self.tags)
        )


@dataclass
class BenchResult:
    """Aggregate statistics for one benchmark run (all times in ns/op)."""

    name: str
    group: str
    number: int
    samples_ns: list[float]          # every timed sample (untrimmed)
    kept_ns: list[float] = field(default_factory=list)  # after trimming
    trimmed: int = 0

    @property
    def min_ns(self) -> float:
        return min(self.kept_ns)

    @property
    def max_ns(self) -> float:
        return max(self.kept_ns)

    @property
    def mean_ns(self) -> float:
        return sum(self.kept_ns) / len(self.kept_ns)

    @property
    def p50_ns(self) -> float:
        return percentile(self.kept_ns, 50.0)

    @property
    def p95_ns(self) -> float:
        return percentile(self.kept_ns, 95.0)

    def to_dict(self) -> dict[str, Any]:
        return {
            "group": self.group,
            "number": self.number,
            "repeats": len(self.samples_ns),
            "trimmed": self.trimmed,
            "samples_ns": [round(s, 3) for s in self.samples_ns],
            "min_ns": round(self.min_ns, 3),
            "mean_ns": round(self.mean_ns, 3),
            "p50_ns": round(self.p50_ns, 3),
            "p95_ns": round(self.p95_ns, 3),
            "max_ns": round(self.max_ns, 3),
        }


def percentile(samples: Iterable[float], pct: float) -> float:
    """Linear-interpolated percentile (numpy-free; deterministic)."""
    xs = sorted(samples)
    if not xs:
        raise ValueError("percentile of empty sample set")
    if len(xs) == 1:
        return xs[0]
    rank = (pct / 100.0) * (len(xs) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return xs[lo]
    frac = rank - lo
    return xs[lo] * (1.0 - frac) + xs[hi] * frac


# ------------------------------------------------------------------ registry

_REGISTRY: dict[str, Benchmark] = {}


def register(bench: Benchmark) -> Benchmark:
    """Add *bench* to the process-wide registry.

    Re-registering a name replaces the previous entry — benchmark modules
    are imported both by pytest and by ``python -m repro bench``, and a
    double import must not error.
    """
    _REGISTRY[bench.name] = bench
    return bench


def benchmark(
    name: str,
    *,
    group: str = "default",
    number: int = 1,
    tags: tuple[str, ...] = (),
    description: str = "",
    slow: bool = False,
) -> Callable[[Callable[[], Any]], Benchmark]:
    """Decorator form of :func:`register`::

        @benchmark("dispatch_default", group="dispatch", number=200)
        def _dispatch_default():
            rt = PjRuntime(); rt.create_worker("w", 2)
            op = lambda: rt.invoke_target_block("w", _NOP)
            return op, lambda: rt.shutdown(wait=False)
    """

    def deco(setup: Callable[[], Any]) -> Benchmark:
        return register(
            Benchmark(
                name=name, setup=setup, group=group, number=number,
                tags=tags, description=description or (setup.__doc__ or "").strip(),
                slow=slow,
            )
        )

    return deco


def unregister(name: str) -> None:
    _REGISTRY.pop(name, None)


def clear_registry() -> None:
    """Drop every registered benchmark (test isolation helper)."""
    _REGISTRY.clear()


def get(name: str) -> Benchmark:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"no benchmark named {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def all_benchmarks() -> list[Benchmark]:
    return [_REGISTRY[k] for k in sorted(_REGISTRY)]


def select(pattern: str | None = None, *, include_slow: bool = False) -> list[Benchmark]:
    """Benchmarks matching *pattern* (None = all), name-sorted.

    Slow benchmarks are excluded unless *include_slow* or the pattern
    matches them explicitly by name.
    """
    out = []
    for b in all_benchmarks():
        if pattern is not None and not b.matches(pattern):
            continue
        if b.slow and not include_slow:
            # An exact-ish name match is an explicit request.
            if pattern is None or pattern.lower() not in b.name.lower():
                continue
        out.append(b)
    return out


# --------------------------------------------------------------------- runner

def run_benchmark(bench: Benchmark, protocol: Protocol | None = None) -> BenchResult:
    """Measure one benchmark under *protocol* and return its statistics."""
    proto = protocol or Protocol()
    clock = proto.clock
    number = bench.number
    op, cleanup = bench.build()
    try:
        for _ in range(proto.warmup):
            for _ in range(number):
                op()
        samples: list[float] = []
        for _ in range(proto.repeats):
            t0 = clock()
            for _ in range(number):
                op()
            t1 = clock()
            samples.append((t1 - t0) / number)
    finally:
        cleanup()
    n_trim = int(len(samples) * proto.trim)
    kept = sorted(samples)[: len(samples) - n_trim] if n_trim else sorted(samples)
    return BenchResult(
        name=bench.name,
        group=bench.group,
        number=number,
        samples_ns=samples,
        kept_ns=kept,
        trimmed=n_trim,
    )


def run_selected(
    pattern: str | None = None,
    protocol: Protocol | None = None,
    *,
    include_slow: bool = False,
    progress: Callable[[str], None] | None = None,
) -> list[BenchResult]:
    """Run every benchmark matching *pattern* and return their results."""
    results = []
    for bench in select(pattern, include_slow=include_slow):
        if progress is not None:
            progress(bench.name)
        results.append(run_benchmark(bench, protocol))
    return results
