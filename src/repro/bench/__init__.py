"""repro.bench — the unified benchmark harness.

One registry, one measurement protocol (warmup / repeats / outlier
trimming on the shared ``perf_counter_ns`` clock), one machine-readable
result schema (``repro.bench/v1``), so performance numbers are comparable
across PRs, hosts, and tracing modes.  See ``docs/BENCHMARKS.md`` for the
protocol, the JSON schema, and how to add a benchmark; ``python -m repro
bench`` is the command-line entry point, and ``--compare`` turns any
archived result document into a regression gate.
"""

from .env import environment_fingerprint, fingerprint_delta
from .harness import (
    Benchmark,
    BenchResult,
    Protocol,
    all_benchmarks,
    benchmark,
    clear_registry,
    get,
    percentile,
    register,
    run_benchmark,
    run_selected,
    select,
    unregister,
)
from .report import (
    SCHEMA,
    Comparison,
    compare,
    format_comparison,
    format_table,
    load_json,
    results_document,
    write_json,
)
from .suites import load_builtin, load_external

__all__ = [
    "Benchmark",
    "BenchResult",
    "Protocol",
    "benchmark",
    "register",
    "unregister",
    "get",
    "all_benchmarks",
    "select",
    "run_benchmark",
    "run_selected",
    "clear_registry",
    "percentile",
    "environment_fingerprint",
    "fingerprint_delta",
    "SCHEMA",
    "results_document",
    "write_json",
    "load_json",
    "format_table",
    "Comparison",
    "compare",
    "format_comparison",
    "load_builtin",
    "load_external",
]
