"""Result documents: JSON schema, human table, and regression comparison.

Schema (``repro.bench/v1``)::

    {
      "schema": "repro.bench/v1",
      "created": "2026-08-06T12:00:00+00:00",
      "env": { ...environment fingerprint... },
      "protocol": {"warmup": 2, "repeats": 10, "trim": 0.2},
      "benchmarks": {
        "<name>": {
          "group": "...", "number": 200, "repeats": 10, "trimmed": 2,
          "samples_ns": [...], "min_ns": ..., "mean_ns": ...,
          "p50_ns": ..., "p95_ns": ..., "max_ns": ...
        }, ...
      }
    }

``python -m repro bench`` writes one such document per run as
``BENCH_<name>.json`` at the invocation directory (the repo root in CI),
building the machine-readable perf trajectory the free-form ``.txt`` dumps
never gave us.  ``compare`` gates a current document against a baseline:
a benchmark regresses when its p50 exceeds the baseline p50 by more than
the allowed percentage.
"""

from __future__ import annotations

import datetime
import json
import pathlib
from dataclasses import dataclass
from typing import Any

from .env import environment_fingerprint, fingerprint_delta
from .harness import BenchResult, Protocol

__all__ = [
    "SCHEMA",
    "results_document",
    "write_json",
    "load_json",
    "format_table",
    "Comparison",
    "compare",
    "format_comparison",
]

SCHEMA = "repro.bench/v1"


def results_document(
    results: list[BenchResult],
    protocol: Protocol | None = None,
    *,
    env: dict[str, Any] | None = None,
    created: str | None = None,
) -> dict[str, Any]:
    """Assemble the schema-v1 document for *results*."""
    proto = protocol or Protocol()
    return {
        "schema": SCHEMA,
        "created": created
        or datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
        "env": env if env is not None else environment_fingerprint(),
        "protocol": {
            "warmup": proto.warmup,
            "repeats": proto.repeats,
            "trim": proto.trim,
        },
        "benchmarks": {r.name: r.to_dict() for r in results},
    }


def write_json(path: str | pathlib.Path, document: dict[str, Any]) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return path


def load_json(path: str | pathlib.Path) -> dict[str, Any]:
    document = json.loads(pathlib.Path(path).read_text())
    schema = document.get("schema")
    if schema != SCHEMA:
        raise ValueError(
            f"{path}: expected schema {SCHEMA!r}, got {schema!r} "
            "(regenerate the baseline with `python -m repro bench`)"
        )
    return document


def _fmt_ns(ns: float) -> str:
    if ns >= 1e9:
        return f"{ns / 1e9:.2f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f} µs"
    return f"{ns:.0f} ns"


def format_table(document: dict[str, Any]) -> str:
    """The human view of a result document: one row per benchmark."""
    rows = [("benchmark", "group", "p50", "p95", "min", "mean", "reps×n")]
    for name in sorted(document["benchmarks"]):
        b = document["benchmarks"][name]
        rows.append(
            (
                name,
                b["group"],
                _fmt_ns(b["p50_ns"]),
                _fmt_ns(b["p95_ns"]),
                _fmt_ns(b["min_ns"]),
                _fmt_ns(b["mean_ns"]),
                f"{b['repeats']}×{b['number']}",
            )
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(w) if j else cell.ljust(w)
                               for j, (cell, w) in enumerate(zip(row, widths))))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    env = document.get("env", {})
    lines.append(
        f"[{env.get('implementation', '?')} {env.get('python', '?')}, "
        f"{env.get('cpu_count', '?')} cpus, gil={env.get('gil', '?')}]"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------- comparison

@dataclass(frozen=True)
class Comparison:
    """One benchmark's current-vs-baseline verdict."""

    name: str
    baseline_p50_ns: float
    current_p50_ns: float
    change_pct: float
    regressed: bool


def compare(
    current: dict[str, Any],
    baseline: dict[str, Any],
    *,
    max_regress_pct: float = 25.0,
) -> tuple[list[Comparison], list[str]]:
    """Gate *current* against *baseline*.

    Returns ``(comparisons, warnings)``.  Only benchmarks present in both
    documents are compared; missing ones are reported as warnings, never as
    regressions (a renamed benchmark must not silently pass either, so the
    warning names it).  Environment drift between the documents is also a
    warning — it does not veto the comparison, but a reader must see it.
    """
    warnings: list[str] = []
    delta = fingerprint_delta(baseline.get("env", {}), current.get("env", {}))
    if delta:
        warnings.append("environment drift vs baseline: " + "; ".join(delta))
    comparisons: list[Comparison] = []
    cur = current["benchmarks"]
    base = baseline["benchmarks"]
    for name in sorted(base):
        if name not in cur:
            warnings.append(f"baseline benchmark {name!r} missing from current run")
            continue
        b50 = float(base[name]["p50_ns"])
        c50 = float(cur[name]["p50_ns"])
        change = ((c50 - b50) / b50 * 100.0) if b50 else 0.0
        comparisons.append(
            Comparison(
                name=name,
                baseline_p50_ns=b50,
                current_p50_ns=c50,
                change_pct=change,
                regressed=change > max_regress_pct,
            )
        )
    for name in sorted(set(cur) - set(base)):
        warnings.append(f"benchmark {name!r} has no baseline entry (new?)")
    return comparisons, warnings


def format_comparison(
    comparisons: list[Comparison], warnings: list[str], *, max_regress_pct: float
) -> str:
    lines = [f"{'benchmark':<32} {'baseline p50':>14} {'current p50':>14} {'change':>9}"]
    lines.append("-" * len(lines[0]))
    for c in comparisons:
        flag = "  REGRESSION" if c.regressed else ""
        lines.append(
            f"{c.name:<32} {_fmt_ns(c.baseline_p50_ns):>14} "
            f"{_fmt_ns(c.current_p50_ns):>14} {c.change_pct:>+8.1f}%{flag}"
        )
    regressed = [c for c in comparisons if c.regressed]
    lines.append(
        f"{len(comparisons)} compared, {len(regressed)} regression(s) "
        f"(threshold +{max_regress_pct:g}% on p50)"
    )
    for w in warnings:
        lines.append(f"warning: {w}")
    return "\n".join(lines)
