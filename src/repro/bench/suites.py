"""Built-in benchmark registrations: the runtime's hot paths.

Importing this module populates the registry with the core suite — the
dispatch paths Algorithm 1 takes (posted, inline, fire-and-forget), the
pure queue hand-off, region construction, and the tracing-mode overhead
ladder.  The figure/table benchmarks under ``benchmarks/`` register their
own entries on top when imported (``load_external``).

Measurement notes
-----------------
* ``queue_*`` and ``trace_*`` benchmarks post to an *unstarted* EDT target
  and drain it in the measuring thread: one thread, no scheduler hand-off,
  so they isolate the enqueue/dequeue/dispatch cost itself.  They are the
  low-noise smoke tier CI gates on.
* ``dispatch_*`` benchmarks use a live two-thread worker target: they
  include the real cross-thread wake-up, which is what an application
  pays.  Noisier, so regressions gate on p50 with generous thresholds.
"""

from __future__ import annotations

import importlib
import pkgutil

from .harness import benchmark

__all__ = ["load_builtin", "load_external"]


def _nop() -> None:
    return None


# ------------------------------------------------------------- dispatch group

@benchmark(
    "dispatch_default", group="dispatch", number=20,
    description="Algorithm 1 default mode: post to a warm worker + wait",
)
def _dispatch_default():
    from ..core import PjRuntime

    rt = PjRuntime()
    rt.create_worker("w", 2)
    op = lambda: rt.invoke_target_block("w", _nop)  # noqa: E731
    return op, lambda: rt.shutdown(wait=False)


@benchmark(
    "dispatch_nowait", group="dispatch", number=200,
    description="Algorithm 1 nowait: fire-and-forget post to a warm worker",
)
def _dispatch_nowait():
    from ..core import PjRuntime

    rt = PjRuntime()
    rt.create_worker("w", 2)
    op = lambda: rt.invoke_target_block("w", _nop, "nowait")  # noqa: E731
    return op, lambda: rt.shutdown(wait=False)


@benchmark(
    "dispatch_inline", group="dispatch", number=20,
    description="context-aware inline elision: dispatch from a member thread",
)
def _dispatch_inline():
    from ..core import PjRuntime

    rt = PjRuntime()
    rt.create_worker("w", 2)

    def member_dispatch():
        # Outer hop is posted; the inner 200 dispatches are the measured
        # inline elisions (Algorithm 1 lines 6-7) amortized per op.
        def nested():
            for _ in range(200):
                rt.invoke_target_block("w", _nop)

        rt.invoke_target_block("w", nested)

    return member_dispatch, lambda: rt.shutdown(wait=False)


@benchmark(
    "dispatch_await_member", group="dispatch", number=10,
    description="await logical barrier taken from a pool member thread",
)
def _dispatch_await_member():
    from ..core import PjRuntime

    rt = PjRuntime()
    rt.create_worker("w", 2)
    rt.await_poll_var = 0.001

    def member_await():
        def outer():
            rt.invoke_target_block("w", _nop, "await")

        rt.invoke_target_block("w", outer)

    return member_await, lambda: rt.shutdown(wait=False)


# ---------------------------------------------------------------- queue group

@benchmark(
    "queue_post_drain", group="queue", number=300, tags=("smoke",),
    description="single-thread enqueue + dequeue + run on an unpumped EDT",
)
def _queue_post_drain():
    from ..core import PjRuntime
    from ..core.region import TargetRegion

    rt = PjRuntime()
    target = rt.register_edt("q")

    def op():
        target.post(TargetRegion(_nop))
        target.drain()

    return op, lambda: rt.shutdown(wait=False)


@benchmark(
    "region_create", group="queue", number=1000, tags=("smoke",),
    description="TargetRegion construction (the per-dispatch allocation cost)",
)
def _region_create():
    from ..core.region import TargetRegion

    return lambda: TargetRegion(_nop)


# ---------------------------------------------------------------- trace group

def _traced_post_drain(mode: str):
    """Build the queue_post_drain op under a given tracing mode."""
    from .. import obs
    from ..core import PjRuntime
    from ..core.region import TargetRegion

    if mode == "off":
        obs.disable()
    elif mode == "null":
        obs.enable(null=True)
    else:
        obs.enable(buffer_size=4096)
    rt = PjRuntime()
    target = rt.register_edt("q")

    def op():
        target.post(TargetRegion(_nop))
        target.drain()

    def cleanup():
        rt.shutdown(wait=False)
        obs.disable()

    return op, cleanup


@benchmark(
    "trace_off_post_drain", group="trace", number=300,
    description="queue_post_drain with tracing disabled (the guard-only path)",
)
def _trace_off():
    return _traced_post_drain("off")


@benchmark(
    "trace_null_post_drain", group="trace", number=300,
    description="queue_post_drain with the null recorder (emit, no storage)",
)
def _trace_null():
    return _traced_post_drain("null")


@benchmark(
    "trace_ring_post_drain", group="trace", number=300,
    description="queue_post_drain with full ring-buffer recording",
)
def _trace_ring():
    return _traced_post_drain("ring")


# ------------------------------------------------------------- lifecycle group

@benchmark(
    "worker_lifecycle", group="lifecycle", number=1, slow=True,
    description="create a 2-thread worker, run 10 regions, drain-shutdown",
)
def _worker_lifecycle():
    from ..core import PjRuntime

    def op():
        rt = PjRuntime()
        rt.create_worker("w", 2)
        handles = [rt.invoke_target_block("w", _nop, "nowait") for _ in range(10)]
        rt.shutdown(wait=True)
        for h in handles:
            h.wait(5)

    return op


# ------------------------------------------------------------------- loaders

def load_builtin() -> None:
    """Importing this module *is* the registration; kept for symmetry."""


def load_external(package: str = "benchmarks") -> list[str]:
    """Import every ``bench_*`` module of *package* so its registrations run.

    The figure/table scripts under ``benchmarks/`` each register thin
    harness entries at import time while keeping their pytest entry points.
    Returns the imported module names; missing package or per-module import
    errors (e.g. pytest absent in a production install) are skipped —
    the built-in suite above never depends on them.
    """
    try:
        pkg = importlib.import_module(package)
    except ImportError:
        return []
    loaded = []
    for mod in pkgutil.iter_modules(pkg.__path__):
        if not mod.name.startswith("bench_"):
            continue
        try:
            importlib.import_module(f"{package}.{mod.name}")
        except Exception:  # noqa: BLE001 - optional deps must not kill the CLI
            continue
        loaded.append(mod.name)
    return loaded
