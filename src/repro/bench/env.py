"""Environment fingerprinting for benchmark results.

A number without its environment is not comparable: the JSON trajectory
spans PRs, machines, and (eventually) GIL modes, so every result document
embeds the fingerprint of the interpreter and host that produced it.
``compare`` warns when fingerprints differ — a regression measured on a
different CPU count is a fact about the host, not the code.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from typing import Any

__all__ = ["environment_fingerprint", "fingerprint_delta"]

#: Fields whose change makes two result documents incomparable for
#: regression gating (the rest are informational).
COMPARABILITY_FIELDS = ("implementation", "machine", "cpu_count", "gil")


def _gil_mode() -> str:
    """``on`` / ``off`` (free-threaded build) / the pre-3.13 default."""
    try:
        return "off" if not sys._is_gil_enabled() else "on"  # type: ignore[attr-defined]
    except AttributeError:
        return "on"


def environment_fingerprint() -> dict[str, Any]:
    """The host/interpreter facts stamped into every result document."""
    try:
        usable = len(os.sched_getaffinity(0))
    except AttributeError:  # macOS / Windows
        usable = os.cpu_count() or 1
    from .. import __version__

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
        "usable_cores": usable,
        "gil": _gil_mode(),
        "perf_counter_resolution_s": time.get_clock_info("perf_counter").resolution,
        "repro_version": __version__,
    }


def fingerprint_delta(a: dict[str, Any], b: dict[str, Any]) -> list[str]:
    """Comparability fields that differ between two fingerprints."""
    return [
        f"{key}: {a.get(key)!r} != {b.get(key)!r}"
        for key in COMPARABILITY_FIELDS
        if a.get(key) != b.get(key)
    ]
