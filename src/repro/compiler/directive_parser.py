"""Parser: directive text → directive objects.

Grammar (paper Figure 5 for ``target``, classic OpenMP for the rest)::

    directive := 'target' target-clause*
               | 'parallel' [('for' for-clause*) | 'sections'] parallel-clause*
               | 'for' for-clause*
               | 'task' task-clause*
               | 'taskwait'
               | 'wait' '(' name ')'
               | 'barrier'
               | 'critical' ['(' name ')']
               | 'single' ['nowait']
               | 'master'
               | 'ordered'
               | 'flush' ['(' names ')']
               | 'sections' ['nowait']
               | 'section'

    target-clause   := 'virtual' '(' name ')' | 'device' '(' int ')'
                     | 'nowait' | 'await' | 'name_as' '(' name ')'
                     | 'timeout' '(' seconds ')'
                     | 'if' '(' expr ')' | data-clause
    parallel-clause := 'num_threads' '(' expr ')' | 'if' '(' expr ')'
                     | 'default' '(' ('shared'|'none') ')' | data-clause
    for-clause      := 'schedule' '(' kind [',' int] ')'   # kind incl. runtime
                     | 'reduction' '(' op ':' name ')' | 'nowait'
                     | 'ordered' | 'collapse' '(' int ')'
    task-clause     := 'if' '(' expr ')' | data-clause
    data-clause     := ('shared'|'private'|'firstprivate') '(' names ')'
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.directives import (
    DataClause,
    DataSharing,
    SchedulingMode,
    TargetDirective,
    TargetProperty,
)
from ..core.errors import DirectiveSyntaxError
from .directive_lexer import DirectiveLexer

__all__ = [
    "ParsedDirective",
    "TargetDir",
    "WaitDir",
    "ParallelDir",
    "ForDir",
    "ParallelForDir",
    "ParallelSectionsDir",
    "TaskDir",
    "TaskwaitDir",
    "CriticalDir",
    "BarrierDir",
    "SingleDir",
    "MasterDir",
    "OrderedDir",
    "FlushDir",
    "SectionsDir",
    "SectionDir",
    "parse_directive",
]


@dataclass
class ParsedDirective:
    """Base: every parsed directive knows its source line."""

    line: int = field(default=0, kw_only=True)

    #: standalone directives are statements themselves; block directives
    #: govern the immediately following statement.
    standalone: bool = field(default=False, kw_only=True)


@dataclass
class TargetDir(ParsedDirective):
    directive: TargetDirective


@dataclass
class WaitDir(ParsedDirective):
    tag: str

    def __post_init__(self) -> None:
        self.standalone = True


@dataclass
class ParallelDir(ParsedDirective):
    num_threads: str | None = None  # raw Python expression
    if_condition: str | None = None
    data_clauses: tuple[DataClause, ...] = ()
    default_sharing: str | None = None  # 'shared' | 'none'


@dataclass
class ForDir(ParsedDirective):
    schedule: str = "static"
    chunk: int | None = None
    reduction_op: str | None = None
    reduction_var: str | None = None
    nowait: bool = False
    ordered: bool = False
    collapse: int = 1


@dataclass
class ParallelForDir(ParsedDirective):
    parallel: ParallelDir = field(default_factory=ParallelDir)
    loop: ForDir = field(default_factory=ForDir)


@dataclass
class ParallelSectionsDir(ParsedDirective):
    parallel: ParallelDir = field(default_factory=ParallelDir)


@dataclass
class TaskDir(ParsedDirective):
    if_condition: str | None = None
    data_clauses: tuple[DataClause, ...] = ()


@dataclass
class TaskwaitDir(ParsedDirective):
    def __post_init__(self) -> None:
        self.standalone = True


@dataclass
class CriticalDir(ParsedDirective):
    name: str = ""


@dataclass
class BarrierDir(ParsedDirective):
    def __post_init__(self) -> None:
        self.standalone = True


@dataclass
class SingleDir(ParsedDirective):
    nowait: bool = False


@dataclass
class MasterDir(ParsedDirective):
    pass


@dataclass
class OrderedDir(ParsedDirective):
    pass


@dataclass
class FlushDir(ParsedDirective):
    def __post_init__(self) -> None:
        self.standalone = True


@dataclass
class SectionsDir(ParsedDirective):
    nowait: bool = False


@dataclass
class SectionDir(ParsedDirective):
    pass


_SCHEDULES = ("static", "dynamic", "guided", "runtime")
_SHARING = {
    "shared": DataSharing.SHARED,
    "private": DataSharing.PRIVATE,
    "firstprivate": DataSharing.FIRSTPRIVATE,
}


def parse_directive(text: str, line: int = 0) -> ParsedDirective:
    """Parse the text following ``#omp`` into a directive object."""
    lx = DirectiveLexer(text, line)
    head = lx.expect("NAME", "a directive name")
    name = head.text
    if name == "target":
        return _parse_target(lx, line)
    if name == "parallel":
        if lx.accept("NAME", "for"):
            return _parse_parallel_for(lx, line)
        if lx.accept("NAME", "sections"):
            d = ParallelSectionsDir(line=line)
            while not lx.at_end():
                clause = lx.expect("NAME", "a clause").text
                if not _parse_parallel_clauses(lx, d.parallel, clause):
                    raise lx.error(f"unknown parallel sections clause {clause!r}")
            return d
        return _parse_parallel(lx, line)
    if name == "task":
        return _parse_task(lx, line)
    if name == "taskwait":
        _expect_end(lx)
        return TaskwaitDir(line=line)
    if name == "for":
        return _parse_for(lx, line)
    if name == "wait":
        lx.expect("LPAREN")
        tag = lx.expect("NAME", "a name-tag").text
        lx.expect("RPAREN")
        _expect_end(lx)
        return WaitDir(tag, line=line)
    if name == "barrier":
        _expect_end(lx)
        return BarrierDir(line=line)
    if name == "critical":
        cname = ""
        if lx.accept("LPAREN"):
            cname = lx.expect("NAME", "a critical name").text
            lx.expect("RPAREN")
        _expect_end(lx)
        return CriticalDir(cname, line=line)
    if name == "single":
        nowait = bool(lx.accept("NAME", "nowait"))
        _expect_end(lx)
        return SingleDir(nowait=nowait, line=line)
    if name == "master":
        _expect_end(lx)
        return MasterDir(line=line)
    if name == "ordered":
        _expect_end(lx)
        return OrderedDir(line=line)
    if name == "flush":
        if lx.accept("LPAREN"):
            lx.expect("NAME", "a variable name")
            while lx.accept("COMMA"):
                lx.expect("NAME", "a variable name")
            lx.expect("RPAREN")
        _expect_end(lx)
        return FlushDir(line=line)
    if name == "sections":
        nowait = bool(lx.accept("NAME", "nowait"))
        _expect_end(lx)
        return SectionsDir(nowait=nowait, line=line)
    if name == "section":
        _expect_end(lx)
        return SectionDir(line=line)
    raise lx.error(f"unknown directive {name!r}")


def _expect_end(lx: DirectiveLexer) -> None:
    if not lx.at_end():
        raise lx.error(f"unexpected trailing tokens starting at {lx.peek().text!r}")


def _parse_name_list(lx: DirectiveLexer) -> tuple[str, ...]:
    lx.expect("LPAREN")
    names = [lx.expect("NAME", "a variable name").text]
    while lx.accept("COMMA"):
        names.append(lx.expect("NAME", "a variable name").text)
    lx.expect("RPAREN")
    return tuple(names)


def _parse_target(lx: DirectiveLexer, line: int) -> TargetDir:
    target_prop: TargetProperty | None = None
    mode = SchedulingMode.DEFAULT
    mode_set = False
    tag: str | None = None
    if_cond: str | None = None
    timeout: float | None = None
    data: list[DataClause] = []

    while not lx.at_end():
        tok = lx.expect("NAME", "a clause")
        clause = tok.text
        if clause == "virtual":
            if target_prop is not None:
                raise lx.error("duplicate target-property clause")
            lx.expect("LPAREN")
            target_prop = TargetProperty.virtual(lx.expect("NAME", "a target name").text)
            lx.expect("RPAREN")
        elif clause == "device":
            if target_prop is not None:
                raise lx.error("duplicate target-property clause")
            lx.expect("LPAREN")
            num = lx.expect("NAME", "a device number").text
            if not num.isdigit():
                raise lx.error(f"device number must be an integer, got {num!r}")
            target_prop = TargetProperty.device(int(num))
            lx.expect("RPAREN")
        elif clause in ("nowait", "await"):
            if mode_set:
                raise lx.error("duplicate scheduling-property clause")
            mode = SchedulingMode.NOWAIT if clause == "nowait" else SchedulingMode.AWAIT
            mode_set = True
        elif clause == "name_as":
            if mode_set:
                raise lx.error("duplicate scheduling-property clause")
            lx.expect("LPAREN")
            tag = lx.expect("NAME", "a name-tag").text
            lx.expect("RPAREN")
            mode = SchedulingMode.NAME_AS
            mode_set = True
        elif clause == "timeout":
            if timeout is not None:
                raise lx.error("duplicate timeout clause")
            raw = lx.raw_parenthesized()
            try:
                timeout = float(raw)
            except ValueError:
                raise lx.error(
                    f"timeout() needs a number of seconds, got {raw!r}"
                ) from None
            if timeout <= 0:
                raise lx.error(f"timeout() must be positive, got {raw!r}")
        elif clause == "if":
            if if_cond is not None:
                raise lx.error("duplicate if clause")
            if_cond = lx.raw_parenthesized()
        elif clause in _SHARING:
            data.append(DataClause(_SHARING[clause], _parse_name_list(lx)))
        else:
            raise lx.error(f"unknown target clause {clause!r}")

    if target_prop is None:
        raise DirectiveSyntaxError(
            "target directive needs a virtual(...) or device(...) clause "
            "(there is no default accelerator in this runtime)",
            line=line,
        )
    return TargetDir(
        TargetDirective(
            target=target_prop,
            mode=mode,
            tag=tag,
            if_condition=if_cond,
            data_clauses=tuple(data),
            timeout=timeout,
        ),
        line=line,
    )


def _parse_task(lx: DirectiveLexer, line: int) -> TaskDir:
    d = TaskDir(line=line)
    while not lx.at_end():
        clause = lx.expect("NAME", "a clause").text
        if clause == "if":
            if d.if_condition is not None:
                raise lx.error("duplicate if clause")
            d.if_condition = lx.raw_parenthesized()
        elif clause in _SHARING:
            d.data_clauses = d.data_clauses + (
                DataClause(_SHARING[clause], _parse_name_list(lx)),
            )
        else:
            raise lx.error(f"unknown task clause {clause!r}")
    return d


def _parse_parallel_clauses(lx: DirectiveLexer, d: ParallelDir, clause: str) -> bool:
    if clause == "default":
        if d.default_sharing is not None:
            raise lx.error("duplicate default clause")
        lx.expect("LPAREN")
        kind = lx.expect("NAME", "'shared' or 'none'").text
        if kind not in ("shared", "none"):
            raise lx.error(f"default() accepts shared or none, got {kind!r}")
        d.default_sharing = kind
        lx.expect("RPAREN")
        return True
    if clause == "num_threads":
        if d.num_threads is not None:
            raise lx.error("duplicate num_threads clause")
        d.num_threads = lx.raw_parenthesized()
        return True
    if clause == "if":
        if d.if_condition is not None:
            raise lx.error("duplicate if clause")
        d.if_condition = lx.raw_parenthesized()
        return True
    if clause in _SHARING:
        d.data_clauses = d.data_clauses + (DataClause(_SHARING[clause], _parse_name_list(lx)),)
        return True
    return False


def _parse_for_clauses(lx: DirectiveLexer, d: ForDir, clause: str) -> bool:
    if clause == "schedule":
        lx.expect("LPAREN")
        kind = lx.expect("NAME", "a schedule kind").text
        if kind not in _SCHEDULES:
            raise lx.error(f"unknown schedule {kind!r}")
        d.schedule = kind
        if lx.accept("COMMA"):
            chunk = lx.expect("NAME", "a chunk size").text
            if not chunk.isdigit() or int(chunk) < 1:
                raise lx.error(f"chunk size must be a positive integer, got {chunk!r}")
            d.chunk = int(chunk)
        lx.expect("RPAREN")
        return True
    if clause == "reduction":
        lx.expect("LPAREN")
        op_tok = lx.next()
        if op_tok.kind not in ("OP", "NAME"):
            raise lx.error("expected a reduction operator")
        d.reduction_op = op_tok.text
        lx.expect("COLON")
        d.reduction_var = lx.expect("NAME", "a reduction variable").text
        lx.expect("RPAREN")
        return True
    if clause == "nowait":
        d.nowait = True
        return True
    if clause == "ordered":
        d.ordered = True
        return True
    if clause == "collapse":
        lx.expect("LPAREN")
        depth = lx.expect("NAME", "a nesting depth").text
        if not depth.isdigit() or int(depth) < 1:
            raise lx.error(f"collapse depth must be a positive integer, got {depth!r}")
        d.collapse = int(depth)
        lx.expect("RPAREN")
        return True
    return False


def _parse_parallel(lx: DirectiveLexer, line: int) -> ParallelDir:
    d = ParallelDir(line=line)
    while not lx.at_end():
        clause = lx.expect("NAME", "a clause").text
        if not _parse_parallel_clauses(lx, d, clause):
            raise lx.error(f"unknown parallel clause {clause!r}")
    return d


def _parse_for(lx: DirectiveLexer, line: int) -> ForDir:
    d = ForDir(line=line)
    while not lx.at_end():
        clause = lx.expect("NAME", "a clause").text
        if not _parse_for_clauses(lx, d, clause):
            raise lx.error(f"unknown for clause {clause!r}")
    return d


def _parse_parallel_for(lx: DirectiveLexer, line: int) -> ParallelForDir:
    d = ParallelForDir(line=line)
    while not lx.at_end():
        clause = lx.expect("NAME", "a clause").text
        if _parse_parallel_clauses(lx, d.parallel, clause):
            continue
        if _parse_for_clauses(lx, d.loop, clause):
            continue
        raise lx.error(f"unknown parallel for clause {clause!r}")
    if d.loop.nowait:
        raise lx.error("nowait is not allowed on a combined parallel for")
    return d
