"""Pyjama-style source-to-source compiler for ``#omp`` comment pragmas.

Pipeline (paper §IV-A): scan pragmas → parse directives → lift annotated
blocks into generated region functions → replace with runtime calls.
Non-supporting interpreters see only comments, preserving sequential
correctness — the core OpenMP design rule the paper's extension keeps.
"""

from .api import compile_source, compiled_source_of, exec_omp, omp
from .directive_parser import (
    BarrierDir,
    CriticalDir,
    ForDir,
    MasterDir,
    ParallelDir,
    ParallelForDir,
    ParallelSectionsDir,
    ParsedDirective,
    SectionDir,
    SectionsDir,
    SingleDir,
    TargetDir,
    TaskDir,
    TaskwaitDir,
    WaitDir,
    parse_directive,
)
from .scanner import PragmaComment, scan_pragmas
from .transform import OmpTransformer, transform_source

__all__ = [
    "compile_source", "compiled_source_of", "exec_omp", "omp",
    "BarrierDir", "CriticalDir", "ForDir", "MasterDir", "ParallelDir",
    "ParallelForDir", "ParallelSectionsDir", "ParsedDirective", "SectionDir",
    "SectionsDir", "SingleDir", "TargetDir", "TaskDir", "TaskwaitDir",
    "WaitDir", "parse_directive",
    "PragmaComment", "scan_pragmas",
    "OmpTransformer", "transform_source",
]
