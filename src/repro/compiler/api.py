"""User-facing compiler API: ``@omp`` decorator and whole-source compilation.

Usage, mirroring the paper's Figure 6 in Python::

    from repro.compiler import omp
    from repro.core import virtual_target_create_worker, start_edt

    start_edt("edt")
    virtual_target_create_worker("worker", 4)

    @omp
    def button_on_click(panel, info):
        panel.show_msg("Started EDT handling")
        #omp target virtual(worker) nowait
        if True:
            hscode = get_hash_code(info)
            download_and_compute(hscode)
            #omp target virtual(edt) nowait
            panel.show_msg("Finished!")

A non-supporting interpreter simply ignores the pragmas (they are comments)
and runs the function sequentially — the OpenMP philosophy the paper's
semantic design follows.
"""

from __future__ import annotations

import ast
import functools
import inspect
import linecache
import textwrap
from typing import Any, Callable, TypeVar, overload

from ..core.errors import DirectiveSyntaxError
from ..core.runtime import PjRuntime
from . import bridge
from .codegen import BRIDGE, RUNTIME
from .transform import OmpTransformer, transform_source

__all__ = ["omp", "compile_source", "exec_omp", "compiled_source_of"]

F = TypeVar("F", bound=Callable[..., Any])


def compile_source(source: str, filename: str = "<omp>") -> str:
    """Source-to-source compile: pragmas become runtime calls.

    The output references ``__repro_omp__``/``__repro_omp_rt__``; execute it
    with :func:`exec_omp`, which binds them.
    """
    return transform_source(source, filename)


def _register_source(filename: str, source: str) -> None:
    """Make the generated source visible to tracebacks and pdb.

    Exceptions raised inside compiled regions would otherwise point at lines
    of a file that does not exist; registering the generated text in
    :mod:`linecache` lets tracebacks display the actual generated code.
    """
    linecache.cache[filename] = (
        len(source),
        None,
        source.splitlines(keepends=True),
        filename,
    )


def exec_omp(
    source: str,
    namespace: dict[str, Any] | None = None,
    *,
    runtime: PjRuntime | None = None,
    filename: str = "<omp>",
) -> dict[str, Any]:
    """Compile *source* and execute it; returns the namespace."""
    compiled = compile_source(source, filename)
    _register_source(filename, compiled)
    ns = namespace if namespace is not None else {}
    ns[BRIDGE] = bridge
    ns[RUNTIME] = runtime
    exec(compile(compiled, filename, "exec"), ns)  # noqa: S102 - the point of the tool
    return ns


@overload
def omp(fn: F) -> F: ...
@overload
def omp(*, runtime: PjRuntime | None = ..., debug: bool = ...) -> Callable[[F], F]: ...


def omp(fn: Callable[..., Any] | None = None, *, runtime: PjRuntime | None = None,
        debug: bool = False):
    """Decorator: compile a function's ``#omp`` pragmas.

    Parameters
    ----------
    runtime:
        Bind the generated dispatch calls to a specific :class:`PjRuntime`
        (None = the process default at call time).
    debug:
        Attach the generated source as ``fn.__omp_source__`` (it is always
        retrievable via :func:`compiled_source_of`).

    Closure variables are snapshotted into the compiled function's globals;
    rebinding them later in the enclosing scope is not reflected (documented
    divergence — Pyjama compiles whole files, where the question never
    arises).
    """
    if fn is None:
        return functools.partial(omp, runtime=runtime, debug=debug)

    try:
        raw = inspect.getsource(fn)
    except (OSError, TypeError) as exc:
        raise DirectiveSyntaxError(
            f"cannot read source of {fn!r} (interactive definitions need "
            "compile_source/exec_omp instead)"
        ) from exc
    source = textwrap.dedent(raw)

    transformer = OmpTransformer(source, filename=f"<omp {fn.__qualname__}>")
    tree = transformer.transform_module()
    fndefs = [n for n in tree.body if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))]
    if not fndefs or fndefs[0].name != fn.__name__:
        raise DirectiveSyntaxError(
            f"@omp expects a plain function definition; got {source.splitlines()[0]!r}"
        )
    fndefs[0].decorator_list = []  # drop @omp itself (and stacked decorators)
    new_source = ast.unparse(tree)

    globalns = dict(fn.__globals__)
    if fn.__closure__:
        for name, cell in zip(fn.__code__.co_freevars, fn.__closure__):
            try:
                globalns[name] = cell.cell_contents
            except ValueError:
                # Empty cell: typically the function's own (not yet bound)
                # name in a recursive def — the compiled def fills it.
                continue
    globalns[BRIDGE] = bridge
    globalns[RUNTIME] = runtime
    gen_filename = f"<omp {fn.__qualname__}>"
    _register_source(gen_filename, new_source)
    exec(compile(new_source, gen_filename, "exec"), globalns)  # noqa: S102
    compiled_fn = globalns[fn.__name__]

    functools.update_wrapper(compiled_fn, fn)
    compiled_fn.__omp_source__ = new_source
    compiled_fn.__omp_original__ = fn
    if debug:  # pragma: no cover - identical to the attribute above
        compiled_fn.__omp_debug__ = True
    return compiled_fn


def compiled_source_of(fn: Callable[..., Any]) -> str:
    """The generated source of an ``@omp``-compiled function."""
    try:
        return fn.__omp_source__  # type: ignore[attr-defined]
    except AttributeError:
        raise ValueError(f"{fn!r} was not compiled with @omp") from None
