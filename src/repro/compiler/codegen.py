"""AST-building helpers and scope analysis for the source-to-source compiler.

The generated code calls into :mod:`repro.compiler.bridge` through the
reserved name ``__repro_omp__`` (with the runtime instance bound to
``__repro_omp_rt__``); these helpers build those call nodes and answer the
binding questions the region-lifting transform needs (which names must be
declared ``nonlocal``/``global``, which need a pre-initialisation).
"""

from __future__ import annotations

import ast
import itertools
from typing import Iterable

__all__ = [
    "BRIDGE", "RUNTIME",
    "NameGen", "bridge_call", "runtime_arg", "const", "name_load", "name_store",
    "assign", "expr_stmt", "bound_names", "BindingCollector", "ControlFlowChecker",
    "rename_variable",
]

BRIDGE = "__repro_omp__"
RUNTIME = "__repro_omp_rt__"

#: Python 3.12+ adds ``type_params`` to FunctionDef; constructing nodes
#: without it breaks ast.unparse there.  Splat this into every FunctionDef.
FUNCDEF_EXTRAS: dict = (
    {"type_params": []} if "type_params" in ast.FunctionDef._fields else {}
)


class NameGen:
    """Unique generated-name factory (``TargetRegion_<n>`` spirit)."""

    def __init__(self) -> None:
        self._counters: dict[str, itertools.count] = {}

    def fresh(self, stem: str) -> str:
        counter = self._counters.setdefault(stem, itertools.count())
        return f"__omp_{stem}_{next(counter)}"


def const(value) -> ast.Constant:
    return ast.Constant(value=value)


def name_load(name: str) -> ast.Name:
    return ast.Name(id=name, ctx=ast.Load())


def name_store(name: str) -> ast.Name:
    return ast.Name(id=name, ctx=ast.Store())


def bridge_call(func: str, args: list[ast.expr] | None = None,
                keywords: dict[str, ast.expr] | None = None) -> ast.Call:
    """``__repro_omp__.<func>(args..., kw=...)``."""
    return ast.Call(
        func=ast.Attribute(value=name_load(BRIDGE), attr=func, ctx=ast.Load()),
        args=args or [],
        keywords=[ast.keyword(arg=k, value=v) for k, v in (keywords or {}).items()],
    )


def runtime_arg() -> ast.expr:
    return name_load(RUNTIME)


def assign(target: str, value: ast.expr) -> ast.Assign:
    return ast.Assign(targets=[name_store(target)], value=value)


def expr_stmt(value: ast.expr) -> ast.Expr:
    return ast.Expr(value=value)


class BindingCollector(ast.NodeVisitor):
    """Names bound by a statement list, at that scope level.

    Does not descend into nested function/class scopes (their bindings are
    their own), but does record the nested def/class *names* themselves.
    Tracks ``global``/``nonlocal`` declarations separately so the transform
    can mirror them.
    """

    def __init__(self) -> None:
        self.bound: set[str] = set()
        self.declared_global: set[str] = set()
        self.declared_nonlocal: set[str] = set()

    # -- scope fences ------------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self.bound.add(node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self.bound.add(node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.bound.add(node.name)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass  # own scope

    def visit_ListComp(self, node: ast.ListComp) -> None:
        pass  # comprehensions have their own scope in py3

    visit_SetComp = visit_DictComp = visit_GeneratorExp = visit_ListComp

    # -- binding constructs ------------------------------------------------
    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, (ast.Store, ast.Del)):
            self.bound.add(node.id)

    def visit_Global(self, node: ast.Global) -> None:
        self.declared_global.update(node.names)

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.declared_nonlocal.update(node.names)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.bound.add((alias.asname or alias.name).split(".")[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self.bound.add(alias.asname or alias.name)

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.name:
            self.bound.add(node.name)
        self.generic_visit(node)


def bound_names(stmts: Iterable[ast.stmt]) -> set[str]:
    """Names bound at the scope level of *stmts* (nested scopes excluded)."""
    collector = BindingCollector()
    for s in stmts:
        collector.visit(s)
    return collector.bound


class ControlFlowChecker(ast.NodeVisitor):
    """Detects control flow that cannot cross a lifted-region boundary.

    ``return``/``yield`` at the region's own function level, and
    ``break``/``continue`` that would target a loop *outside* the region,
    make region lifting semantically invalid — exactly the "no branching out
    of a structured block" rule of OpenMP.
    """

    def __init__(self) -> None:
        self.loop_depth = 0
        self.offenders: list[str] = []

    def check(self, stmts: Iterable[ast.stmt]) -> list[str]:
        for s in stmts:
            self.visit(s)
        return self.offenders

    def visit_FunctionDef(self, node) -> None:  # nested scopes are fine
        pass

    visit_AsyncFunctionDef = visit_Lambda = visit_FunctionDef

    def _visit_loop(self, node) -> None:
        self.loop_depth += 1
        for child in ast.iter_child_nodes(node):
            self.visit(child)
        self.loop_depth -= 1

    visit_For = visit_While = visit_AsyncFor = _visit_loop

    def visit_Return(self, node: ast.Return) -> None:
        self.offenders.append("return")

    def visit_Yield(self, node: ast.Yield) -> None:
        self.offenders.append("yield")

    def visit_YieldFrom(self, node: ast.YieldFrom) -> None:
        self.offenders.append("yield from")

    def visit_Await(self, node: ast.Await) -> None:
        # A lifted region is a plain nested function; Python's `await`
        # cannot cross that boundary (and the encounter semantics would be
        # wrong anyway — use the asyncio adapter's as_future instead).
        self.offenders.append("await")

    def visit_Break(self, node: ast.Break) -> None:
        if self.loop_depth == 0:
            self.offenders.append("break")

    def visit_Continue(self, node: ast.Continue) -> None:
        if self.loop_depth == 0:
            self.offenders.append("continue")


class _Renamer(ast.NodeTransformer):
    def __init__(self, old: str, new: str) -> None:
        self.old = old
        self.new = new

    def visit_Name(self, node: ast.Name) -> ast.Name:
        if node.id == self.old:
            return ast.copy_location(ast.Name(id=self.new, ctx=node.ctx), node)
        return node

    def visit_FunctionDef(self, node):  # do not rename across scope fences
        return node

    visit_AsyncFunctionDef = visit_Lambda = visit_ClassDef = visit_FunctionDef


def rename_variable(stmts: list[ast.stmt], old: str, new: str) -> list[ast.stmt]:
    """Rename every ``Name`` occurrence of *old* to *new* within *stmts*
    (shallow scope only; nested defs keep their own view)."""
    renamer = _Renamer(old, new)
    return [renamer.visit(s) for s in stmts]
