"""Runtime bridge: the single namespace generated code calls into.

Compiled source references exactly two reserved names:

* ``__repro_omp__`` — this module;
* ``__repro_omp_rt__`` — the :class:`~repro.core.runtime.PjRuntime` instance
  (or ``None`` for the process default), injected by
  :func:`repro.compiler.api.compile_function`.

Keeping the surface to one module makes the generated code auditable: every
semantic effect of a pragma is one visible ``__repro_omp__.<fn>(...)`` call,
mirroring Pyjama's generated ``PjRuntime.invokeTargetBlock`` calls.
"""

from __future__ import annotations

from typing import Any, Callable

from ..core.api import run_on as _run_on
from ..core.api import wait_for as _wait_for
from ..core.runtime import PjRuntime
from ..openmp import (
    REDUCTIONS,
    barrier,
    critical,
    flush,
    for_loop,
    identity_for,
    master,
    omp_get_thread_num,
    ordered,
    parallel,
    sections,
    single,
    task,
    taskwait,
)

__all__ = [
    "run_on", "wait_for", "parallel", "for_loop", "sections", "single",
    "master", "critical", "barrier", "REDUCTIONS", "identity_for",
    "omp_get_thread_num", "task", "taskwait", "ordered", "flush",
]


def run_on(
    target: str | None,
    body: Callable[[], Any],
    *,
    mode: str = "default",
    tag: str | None = None,
    condition: bool = True,
    runtime: PjRuntime | None = None,
    timeout: float | None = None,
    source: str | None = None,
):
    """Target-block dispatch used by compiled ``#omp target`` pragmas.

    *source* is the pragma's ``file:line``, stamped by the compiler so trace
    spans name the user's code location rather than a generated closure.
    """
    return _run_on(
        target, body, mode=mode, tag=tag, condition=condition, runtime=runtime,
        timeout=timeout, source=source,
    )


def wait_for(tag: str, *, runtime: PjRuntime | None = None) -> None:
    """Join used by compiled ``#omp wait(tag)`` pragmas."""
    _wait_for(tag, runtime=runtime)


def collapse_product(*iterables) -> list:
    """The flattened iteration space of a ``collapse(n)`` loop nest.

    Materialised eagerly (worksharing needs ``len``); OpenMP requires the
    collapsed bounds to be loop-invariant, so this is exactly the product
    the spec defines.
    """
    import itertools

    return list(itertools.product(*iterables))
