"""Tokenizer for ``#omp`` directive text.

A directive comment looks like::

    #omp target virtual(worker) nowait if(n > 10) firstprivate(a, b)

The lexer splits the text after ``#omp`` into names, punctuation, operator
symbols (reduction identifiers like ``+`` or ``&&``), and — because ``if`` and
``num_threads`` carry arbitrary Python expressions — supports *balanced-paren
raw capture* driven by the parser.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import DirectiveSyntaxError

__all__ = ["Token", "DirectiveLexer", "PRAGMA_PREFIX"]

PRAGMA_PREFIX = "#omp"

_PUNCT = {"(": "LPAREN", ")": "RPAREN", ",": "COMMA", ":": "COLON"}
_OPERATORS = ("&&", "||", "+", "*", "&", "|", "^", "-")


@dataclass(frozen=True)
class Token:
    kind: str  # NAME | LPAREN | RPAREN | COMMA | COLON | OP | END
    text: str
    pos: int


class DirectiveLexer:
    """Tokenizes one directive's text (the part after ``#omp``)."""

    def __init__(self, text: str, line: int | None = None) -> None:
        self.text = text
        self.line = line
        self.pos = 0
        self._peeked: Token | None = None

    def error(self, message: str) -> DirectiveSyntaxError:
        return DirectiveSyntaxError(f"{message} (in directive {self.text!r})", line=self.line)

    # ------------------------------------------------------------- scanning

    def _skip_ws(self) -> None:
        while self.pos < len(self.text) and self.text[self.pos].isspace():
            self.pos += 1

    def next(self) -> Token:
        if self._peeked is not None:
            tok, self._peeked = self._peeked, None
            return tok
        self._skip_ws()
        if self.pos >= len(self.text):
            return Token("END", "", self.pos)
        ch = self.text[self.pos]
        start = self.pos
        if ch in _PUNCT:
            self.pos += 1
            return Token(_PUNCT[ch], ch, start)
        for op in _OPERATORS:
            if self.text.startswith(op, self.pos):
                self.pos += len(op)
                return Token("OP", op, start)
        if ch.isalpha() or ch == "_":
            while self.pos < len(self.text) and (
                self.text[self.pos].isalnum() or self.text[self.pos] == "_"
            ):
                self.pos += 1
            return Token("NAME", self.text[start : self.pos], start)
        if ch.isdigit():
            while self.pos < len(self.text) and self.text[self.pos].isdigit():
                self.pos += 1
            return Token("NAME", self.text[start : self.pos], start)
        raise self.error(f"unexpected character {ch!r} at offset {start}")

    def peek(self) -> Token:
        if self._peeked is None:
            self._peeked = self.next()
        return self._peeked

    # --------------------------------------------------------- parser hooks

    def expect(self, kind: str, what: str | None = None) -> Token:
        tok = self.next()
        if tok.kind != kind:
            raise self.error(f"expected {what or kind}, found {tok.text or 'end of directive'!r}")
        return tok

    def accept(self, kind: str, text: str | None = None) -> Token | None:
        tok = self.peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self.next()
        return None

    def raw_parenthesized(self) -> str:
        """Capture everything inside a balanced ``( ... )`` as raw text.

        Used for clauses whose argument is a Python expression (``if``,
        ``num_threads``).  The opening paren must be the next token.
        """
        self._peeked = None  # raw scan invalidates lookahead
        self._skip_ws()
        if self.pos >= len(self.text) or self.text[self.pos] != "(":
            raise self.error("expected '('")
        depth = 0
        start = self.pos + 1
        i = self.pos
        while i < len(self.text):
            c = self.text[i]
            if c == "(":
                depth += 1
            elif c == ")":
                depth -= 1
                if depth == 0:
                    self.pos = i + 1
                    return self.text[start:i].strip()
            i += 1
        raise self.error("unbalanced parentheses")

    def at_end(self) -> bool:
        return self.peek().kind == "END"
