"""Scanner: find ``#omp`` comment pragmas in Python source.

Comments are invisible to :mod:`ast`, so the scanner runs :mod:`tokenize`
over the source and records each pragma's position.  The transformer then
matches each pragma to the statement that *immediately follows it at the same
indentation* — the Python analogue of a pragma annotating the next statement.

A pragma must occupy its own line (Pyjama's ``//#omp`` lines do too); trailing
``#omp`` comments after code are rejected to avoid silent mis-association.
"""

from __future__ import annotations

import io
import tokenize
from dataclasses import dataclass

from ..core.errors import DirectiveSyntaxError
from .directive_lexer import PRAGMA_PREFIX
from .directive_parser import ParsedDirective, parse_directive

__all__ = ["PragmaComment", "scan_pragmas"]


@dataclass
class PragmaComment:
    """One ``#omp`` comment with its location and parsed directive."""

    line: int          # 1-based line of the comment
    col: int           # 0-based column (indentation) of the comment
    text: str          # directive text after '#omp'
    directive: ParsedDirective
    consumed: bool = False


def scan_pragmas(source: str) -> list[PragmaComment]:
    """All ``#omp`` pragmas in *source*, in line order.

    Raises :class:`DirectiveSyntaxError` for malformed directives or pragmas
    sharing a line with code.
    """
    pragmas: list[PragmaComment] = []
    tokens = tokenize.generate_tokens(io.StringIO(source).readline)
    line_has_code: dict[int, bool] = {}
    comment_tokens: list[tokenize.TokenInfo] = []
    for tok in tokens:
        if tok.type == tokenize.COMMENT:
            comment_tokens.append(tok)
        elif tok.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENCODING,
            tokenize.ENDMARKER,
        ):
            for ln in range(tok.start[0], tok.end[0] + 1):
                line_has_code[ln] = True

    for tok in comment_tokens:
        comment = tok.string
        if not _is_pragma(comment):
            continue
        line, col = tok.start
        if line_has_code.get(line):
            raise DirectiveSyntaxError(
                "#omp pragma must be on its own line, not trailing code",
                line=line,
            )
        text = comment[len(PRAGMA_PREFIX):].strip()
        directive = parse_directive(text, line=line)
        pragmas.append(PragmaComment(line=line, col=col, text=text, directive=directive))
    pragmas.sort(key=lambda p: p.line)
    return pragmas


def _is_pragma(comment: str) -> bool:
    if not comment.startswith(PRAGMA_PREFIX):
        return False
    rest = comment[len(PRAGMA_PREFIX):]
    # '#omp' must be a whole word: '#ompx' is an ordinary comment.
    return rest == "" or rest[0] in (" ", "\t")
