"""The region-lifting AST transformer.

Mirrors Pyjama's compilation strategy (paper §IV-A): every pragma-annotated
block is restructured into a generated function (our ``TargetRegion`` class
analogue) and replaced by a runtime call.  Example::

    #omp target virtual(worker) await
    if True:
        r = compute()

becomes::

    def __omp_region_0():
        nonlocal r
        r = compute()
    __repro_omp__.run_on('worker', __omp_region_0, mode='await',
                         tag=None, condition=True, runtime=__repro_omp_rt__)

Binding rules: names assigned inside a lifted region are declared
``nonlocal`` (or ``global`` at module level) so the region writes through to
the enclosing data context — the paper's *data-context sharing* property.
Names with no binding elsewhere in the enclosing function are pre-initialised
to ``None`` right before the region so the ``nonlocal`` is valid.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from ..core.directives import DataSharing, SchedulingMode, TargetKind
from ..core.errors import DirectiveSyntaxError
from .codegen import (
    FUNCDEF_EXTRAS,
    BindingCollector,
    ControlFlowChecker,
    NameGen,
    assign,
    bound_names,
    bridge_call,
    const,
    expr_stmt,
    name_load,
    name_store,
    rename_variable,
    runtime_arg,
)
from .directive_parser import (
    BarrierDir,
    CriticalDir,
    FlushDir,
    ForDir,
    MasterDir,
    OrderedDir,
    ParallelDir,
    ParallelForDir,
    ParallelSectionsDir,
    ParsedDirective,
    SectionDir,
    SectionsDir,
    SingleDir,
    TargetDir,
    TaskDir,
    TaskwaitDir,
    WaitDir,
)
from .scanner import PragmaComment, scan_pragmas

__all__ = ["transform_source", "OmpTransformer"]

_SECTION_MARKER = "__omp_section__"


@dataclass
class _Scope:
    """Binding context of the innermost function (or module) scope."""

    kind: str  # 'module' | 'function' | 'class'
    bound_so_far: set[str] = field(default_factory=set)
    global_names: set[str] = field(default_factory=set)

    def note(self, stmts: list[ast.stmt]) -> None:
        self.bound_so_far |= bound_names(stmts)


class OmpTransformer:
    """One-shot transformer for a module's source text."""

    def __init__(self, source: str, filename: str = "<omp>") -> None:
        self.source = source
        self.filename = filename
        self.names = NameGen()
        self.pragmas: list[PragmaComment] = scan_pragmas(source)

    # -------------------------------------------------------------- driving

    def transform_module(self) -> ast.Module:
        tree = ast.parse(self.source, filename=self.filename)
        self._associate(tree)
        scope = _Scope(kind="module")
        tree.body = self._process_body(tree.body, scope)
        unclaimed = [p for p in self.pragmas if not p.consumed]
        if unclaimed:
            p = unclaimed[0]
            raise DirectiveSyntaxError(
                f"pragma '#omp {p.text}' is not followed by a statement at its "
                "indentation level",
                line=p.line,
            )
        self._check_no_stray_sections(tree)
        ast.fix_missing_locations(tree)
        return tree

    def transformed_source(self) -> str:
        return ast.unparse(self.transform_module())

    # ----------------------------------------------------------- association

    def _associate(self, tree: ast.Module) -> None:
        """Attach each pragma to the statement it governs."""
        stmts: list[ast.stmt] = [
            node for node in ast.walk(tree) if isinstance(node, ast.stmt)
        ]
        stmts.sort(key=lambda s: (s.lineno, s.col_offset))
        self._before: dict[int, list[ParsedDirective]] = {}
        self._after: dict[int, list[ParsedDirective]] = {}

        for pragma in self.pragmas:
            following = next((s for s in stmts if s.lineno > pragma.line), None)
            if following is not None and following.col_offset == pragma.col:
                self._before.setdefault(id(following), []).append(pragma.directive)
                pragma.consumed = True
                continue
            if pragma.directive.standalone:
                # Trailing standalone: attach after the last statement at the
                # pragma's indentation that precedes it.
                candidates = [
                    s
                    for s in stmts
                    if s.col_offset == pragma.col
                    and (s.end_lineno or s.lineno) < pragma.line
                ]
                if candidates:
                    anchor = max(candidates, key=lambda s: (s.end_lineno or s.lineno))
                    self._after.setdefault(id(anchor), []).append(pragma.directive)
                    pragma.consumed = True
                    continue
            raise DirectiveSyntaxError(
                f"cannot associate pragma '#omp {pragma.text}' with a statement; "
                "block pragmas must immediately precede a statement at the same "
                "indentation",
                line=pragma.line,
            )

    # -------------------------------------------------------------- recursion

    def _process_body(self, stmts: list[ast.stmt], scope: _Scope) -> list[ast.stmt]:
        out: list[ast.stmt] = []
        for stmt in stmts:
            directives = self._before.get(id(stmt), [])
            for d in directives:
                if d.standalone:
                    standalone = self._make_standalone(d)
                    out.append(standalone)
                    scope.note([standalone])
            block_dirs = [d for d in directives if not d.standalone]

            # Children may contain their own pragmas; bindings they note are
            # provisional — if this statement gets lifted, its internal
            # bindings move into the region function and must not count as
            # bound in the enclosing scope.
            snapshot = set(scope.bound_so_far)
            self._process_children(stmt, scope)
            scope.bound_so_far = snapshot

            block = [stmt]
            for d in reversed(block_dirs):  # last pragma is innermost
                block = self._apply(d, block, scope)
            out.extend(block)
            scope.note(block)

            for d in self._after.get(id(stmt), []):
                standalone = self._make_standalone(d)
                out.append(standalone)
                scope.note([standalone])
        return out

    def _process_children(self, stmt: ast.stmt, scope: _Scope) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = _Scope(kind="function", bound_so_far=_param_names(stmt))
            inner.global_names = _collect_globals(stmt.body)
            stmt.body = self._process_body(stmt.body, inner)
            return
        if isinstance(stmt, ast.ClassDef):
            inner = _Scope(kind="class")
            stmt.body = self._process_body(stmt.body, inner)
            return
        for attr in ("body", "orelse", "finalbody"):
            body = getattr(stmt, attr, None)
            if body:
                setattr(stmt, attr, self._process_body(body, scope))
        for handler in getattr(stmt, "handlers", []) or []:
            handler.body = self._process_body(handler.body, scope)

    # ------------------------------------------------------------ dispatch

    def _apply(
        self, d: ParsedDirective, block: list[ast.stmt], scope: _Scope
    ) -> list[ast.stmt]:
        if scope.kind == "class":
            raise DirectiveSyntaxError(
                "pragmas directly inside a class body are not supported; put "
                "them inside a method",
                line=d.line,
            )
        if isinstance(d, TargetDir):
            return self._apply_target(d, block, scope)
        if isinstance(d, ParallelDir):
            return self._apply_parallel(d, block, scope)
        if isinstance(d, ForDir):
            return self._apply_for(d, block, scope, in_combined=False)
        if isinstance(d, ParallelForDir):
            inner = self._apply_for(d.loop, block, scope, in_combined=True)
            return self._apply_parallel(d.parallel, inner, scope)
        if isinstance(d, ParallelSectionsDir):
            inner = self._apply_sections(SectionsDir(line=d.line), block, scope)
            return self._apply_parallel(d.parallel, inner, scope)
        if isinstance(d, TaskDir):
            return self._apply_task(d, block, scope)
        if isinstance(d, CriticalDir):
            return self._apply_critical(d, block)
        if isinstance(d, SingleDir):
            return self._lift_simple(d, block, scope, "single", {"nowait": const(d.nowait)})
        if isinstance(d, MasterDir):
            return self._lift_simple(d, block, scope, "master", {})
        if isinstance(d, OrderedDir):
            return self._lift_simple(d, block, scope, "ordered", {})
        if isinstance(d, SectionsDir):
            return self._apply_sections(d, block, scope)
        if isinstance(d, SectionDir):
            # Marker node; unwrapped by the enclosing sections directive.
            marker = ast.If(test=const(_SECTION_MARKER), body=block, orelse=[])
            return [marker]
        raise DirectiveSyntaxError(f"unhandled directive {d!r}", line=d.line)

    # -------------------------------------------------------------- helpers

    def _make_standalone(self, d: ParsedDirective) -> ast.stmt:
        if isinstance(d, BarrierDir):
            return expr_stmt(bridge_call("barrier"))
        if isinstance(d, TaskwaitDir):
            return expr_stmt(bridge_call("taskwait"))
        if isinstance(d, FlushDir):
            return expr_stmt(bridge_call("flush"))
        if isinstance(d, WaitDir):
            return expr_stmt(
                bridge_call("wait_for", [const(d.tag)], {"runtime": runtime_arg()})
            )
        raise DirectiveSyntaxError(f"unknown standalone directive {d!r}", line=d.line)

    @staticmethod
    def _unwrap_sugar(block: list[ast.stmt]) -> list[ast.stmt]:
        """``if True:`` groups several statements into one region block."""
        if (
            len(block) == 1
            and isinstance(block[0], ast.If)
            and isinstance(block[0].test, ast.Constant)
            and block[0].test.value is True
            and not block[0].orelse
        ):
            return block[0].body
        return block

    def _check_liftable(self, body: list[ast.stmt], line: int, construct: str) -> None:
        offenders = ControlFlowChecker().check(body)
        if offenders:
            raise DirectiveSyntaxError(
                f"{construct} block contains {offenders[0]!r}, which would "
                "branch out of the lifted region (OpenMP structured-block rule)",
                line=line,
            )

    def _parse_expr(self, text: str, line: int) -> ast.expr:
        try:
            return ast.parse(text, mode="eval").body
        except SyntaxError as exc:
            raise DirectiveSyntaxError(
                f"invalid expression {text!r} in clause: {exc.msg}", line=line
            ) from exc

    def _binding_decls(
        self,
        body: list[ast.stmt],
        scope: _Scope,
        *,
        exclude: set[str] = frozenset(),
    ) -> tuple[list[ast.stmt], list[ast.stmt]]:
        """(declarations for the lifted function, pre-inits for the caller).

        Implements data-context sharing: assigned names write through.
        """
        collector = BindingCollector()
        for s in body:
            collector.visit(s)
        assigned = {
            n
            for n in collector.bound
            if not n.startswith("__omp_")  # generated helpers stay region-local
        } - exclude - collector.declared_global - collector.declared_nonlocal
        if not assigned:
            return [], []
        if scope.kind == "module":
            return [ast.Global(names=sorted(assigned))], []
        global_ones = assigned & scope.global_names
        local_ones = assigned - global_ones
        decls: list[ast.stmt] = []
        if global_ones:
            decls.append(ast.Global(names=sorted(global_ones)))
        pre_inits: list[ast.stmt] = []
        if local_ones:
            decls.append(ast.Nonlocal(names=sorted(local_ones)))
            for n in sorted(local_ones - scope.bound_so_far):
                pre_inits.append(assign(n, const(None)))
        return decls, pre_inits

    def _split_data_clauses(self, data_clauses) -> tuple[list[str], list[str]]:
        firstprivate: list[str] = []
        private: list[str] = []
        for clause in data_clauses:
            if clause.sharing is DataSharing.FIRSTPRIVATE:
                firstprivate.extend(clause.variables)
            elif clause.sharing is DataSharing.PRIVATE:
                private.extend(clause.variables)
            # SHARED is the default; nothing to do.
        return firstprivate, private

    def _region_funcdef(
        self,
        name: str,
        body: list[ast.stmt],
        decls: list[ast.stmt],
        firstprivate: list[str],
        private: list[str],
    ) -> ast.FunctionDef:
        args = ast.arguments(
            posonlyargs=[],
            args=[ast.arg(arg=n) for n in firstprivate],
            vararg=None,
            kwonlyargs=[],
            kw_defaults=[],
            kwarg=None,
            defaults=[name_load(n) for n in firstprivate],
        )
        fn_body: list[ast.stmt] = list(decls)
        fn_body.extend(assign(p, const(None)) for p in private)
        fn_body.extend(body)
        if not fn_body:
            fn_body = [ast.Pass()]
        return ast.FunctionDef(
            name=name, args=args, body=fn_body, decorator_list=[], returns=None,
            **FUNCDEF_EXTRAS,
        )

    # --------------------------------------------------------------- target

    def _apply_target(
        self, d: TargetDir, block: list[ast.stmt], scope: _Scope
    ) -> list[ast.stmt]:
        directive = d.directive
        if directive.target.kind is TargetKind.DEVICE:
            raise DirectiveSyntaxError(
                "device(...) targets require a physical accelerator; this "
                "runtime implements virtual targets only (paper §III-A)",
                line=d.line,
            )
        body = self._unwrap_sugar(block)
        self._check_liftable(body, d.line, "target")
        firstprivate, private = self._split_data_clauses(directive.data_clauses)
        decls, pre_inits = self._binding_decls(
            body, scope, exclude=set(firstprivate) | set(private)
        )
        fname = self.names.fresh("region")
        funcdef = self._region_funcdef(fname, body, decls, firstprivate, private)
        condition: ast.expr = (
            self._parse_expr(directive.if_condition, d.line)
            if directive.if_condition
            else const(True)
        )
        keywords: dict[str, ast.expr] = {
            "mode": const(directive.mode.value),
            "tag": const(directive.tag),
            "condition": condition,
            "runtime": runtime_arg(),
            # Provenance stamp: trace spans (repro.obs) name the pragma's
            # source location instead of the generated closure.
            "source": const(f"{self.filename}:{d.line}"),
        }
        if directive.timeout is not None:
            keywords["timeout"] = const(directive.timeout)
        call = bridge_call(
            "run_on",
            [const(directive.target.name), name_load(fname)],
            keywords,
        )
        return [*pre_inits, funcdef, expr_stmt(call)]

    # ----------------------------------------------------------------- task

    def _apply_task(
        self, d: TaskDir, block: list[ast.stmt], scope: _Scope
    ) -> list[ast.stmt]:
        body = self._unwrap_sugar(block)
        self._check_liftable(body, d.line, "task")
        firstprivate, private = self._split_data_clauses(d.data_clauses)
        decls, pre_inits = self._binding_decls(
            body, scope, exclude=set(firstprivate) | set(private)
        )
        fname = self.names.fresh("task")
        funcdef = self._region_funcdef(fname, body, decls, firstprivate, private)
        keywords: dict[str, ast.expr] = {}
        if d.if_condition is not None:
            keywords["if_clause"] = self._parse_expr(d.if_condition, d.line)
        call = bridge_call("task", [name_load(fname)], keywords)
        return [*pre_inits, funcdef, expr_stmt(call)]

    # ------------------------------------------------------------- parallel

    def _apply_parallel(
        self, d: ParallelDir, block: list[ast.stmt], scope: _Scope
    ) -> list[ast.stmt]:
        body = self._unwrap_sugar(block)
        self._check_liftable(body, d.line, "parallel")
        firstprivate, private = self._split_data_clauses(d.data_clauses)
        if d.default_sharing == "none":
            self._check_default_none(d, body, firstprivate, private)
        decls, pre_inits = self._binding_decls(
            body, scope, exclude=set(firstprivate) | set(private)
        )
        fname = self.names.fresh("parallel")
        funcdef = self._region_funcdef(fname, body, decls, firstprivate, private)
        keywords: dict[str, ast.expr] = {}
        if d.num_threads is not None:
            keywords["num_threads"] = self._parse_expr(d.num_threads, d.line)
        if d.if_condition is not None:
            keywords["if_clause"] = self._parse_expr(d.if_condition, d.line)
        call = bridge_call("parallel", [name_load(fname)], keywords)
        return [*pre_inits, funcdef, expr_stmt(call)]

    def _check_default_none(
        self,
        d: ParallelDir,
        body: list[ast.stmt],
        firstprivate: list[str],
        private: list[str],
    ) -> None:
        """``default(none)``: every name the region *writes* must have an
        explicit data-sharing clause.  (Reads cannot be checked soundly in
        Python — builtins and module globals are indistinguishable from
        shared locals — so enforcement covers bindings, the racy half.)"""
        collector = BindingCollector()
        for s in body:
            collector.visit(s)
        declared = set(firstprivate) | set(private) | {
            v for c in d.data_clauses for v in c.variables
        }
        undeclared = {
            n for n in collector.bound if not n.startswith("__omp_")
        } - declared - collector.declared_global - collector.declared_nonlocal
        if undeclared:
            raise DirectiveSyntaxError(
                f"default(none) requires explicit data-sharing for assigned "
                f"name(s): {', '.join(sorted(undeclared))}",
                line=d.line,
            )

    # ------------------------------------------------------------------ for

    def _apply_for(
        self, d: ForDir, block: list[ast.stmt], scope: _Scope, *, in_combined: bool
    ) -> list[ast.stmt]:
        if len(block) != 1 or not isinstance(block[0], ast.For):
            raise DirectiveSyntaxError(
                "'#omp for' (or 'parallel for') must annotate a for loop",
                line=d.line,
            )
        loop = block[0]
        if d.collapse > 1:
            loop = self._collapse_nest(loop, d.collapse, d.line)
        offenders = [o for o in ControlFlowChecker().check(loop.body) if o != "continue"]
        if offenders:
            raise DirectiveSyntaxError(
                f"worksharing loop body contains {offenders[0]!r}; OpenMP forbids "
                "branching out of the loop",
                line=d.line,
            )

        body = list(loop.body)
        red_local: str | None = None
        if d.reduction_op is not None:
            red_local = self.names.fresh("red")
            body = rename_variable(body, d.reduction_var, red_local)
        body = _RewriteContinues(red_local).rewrite(body)

        # Loop variable handling: simple name becomes the body parameter;
        # anything else unpacks from a fresh parameter.
        if isinstance(loop.target, ast.Name):
            param = loop.target.id
            unpack: list[ast.stmt] = []
        else:
            param = self.names.fresh("item")
            unpack = [ast.Assign(targets=[loop.target], value=name_load(param))]

        exclude = {param} | _target_names(loop.target)
        if red_local:
            exclude.add(red_local)
        decls, pre_inits = self._binding_decls(body, scope, exclude=exclude)

        fn_body: list[ast.stmt] = list(decls) + unpack
        if red_local:
            fn_body.append(
                assign(red_local, bridge_call("identity_for", [const(d.reduction_op)]))
            )
        fn_body.extend(body)
        if red_local:
            fn_body.append(ast.Return(value=name_load(red_local)))

        fname = self.names.fresh("loop_body")
        args = ast.arguments(
            posonlyargs=[], args=[ast.arg(arg=param)], vararg=None,
            kwonlyargs=[], kw_defaults=[], kwarg=None, defaults=[],
        )
        funcdef = ast.FunctionDef(
            name=fname, args=args, body=fn_body or [ast.Pass()],
            decorator_list=[], returns=None, **FUNCDEF_EXTRAS,
        )

        keywords: dict[str, ast.expr] = {
            "schedule": const(d.schedule),
            "chunk": const(d.chunk),
            "nowait": const(d.nowait),
        }
        if d.ordered:
            keywords["ordered"] = const(True)
        if d.reduction_op is not None:
            keywords["reduction"] = const(d.reduction_op)
        call = bridge_call("for_loop", [loop.iter, name_load(fname)], keywords)

        out: list[ast.stmt] = [*pre_inits, funcdef]
        if d.reduction_op is None:
            out.append(expr_stmt(call))
        else:
            result = self.names.fresh("for_result")
            out.append(assign(result, call))
            fold = ast.Assign(
                targets=[name_store(d.reduction_var)],
                value=ast.Call(
                    func=ast.Subscript(
                        value=ast.Attribute(
                            value=name_load("__repro_omp__"), attr="REDUCTIONS",
                            ctx=ast.Load(),
                        ),
                        slice=const(d.reduction_op),
                        ctx=ast.Load(),
                    ),
                    args=[name_load(d.reduction_var), name_load(result)],
                    keywords=[],
                ),
            )
            # Only one team member folds into the shared variable; the
            # barrier publishes it before anyone reads past the construct.
            guard = ast.If(
                test=ast.Compare(
                    left=bridge_call("omp_get_thread_num"),
                    ops=[ast.Eq()],
                    comparators=[const(0)],
                ),
                body=[fold],
                orelse=[],
            )
            out.append(guard)
            out.append(expr_stmt(bridge_call("barrier")))
        out.extend(loop.orelse)  # break is forbidden, so else always ran
        return out

    def _collapse_nest(self, loop: ast.For, depth: int, line: int) -> ast.For:
        """Flatten a perfectly nested ``depth``-deep loop nest into one loop
        over the cross product of the iteration spaces (``collapse(n)``).

        OpenMP's rules apply: the nest must be perfect (each outer body is
        exactly the next loop) and inner bounds must not depend on outer
        loop variables (rectangular iteration space).
        """
        targets: list[ast.expr] = []
        iters: list[ast.expr] = []
        outer_names: set[str] = set()
        current: ast.For = loop
        for level in range(depth):
            if current.orelse:
                raise DirectiveSyntaxError(
                    "collapse: loops in the nest cannot have else clauses",
                    line=line,
                )
            used = {
                n.id
                for n in ast.walk(current.iter)
                if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
            }
            if used & outer_names:
                raise DirectiveSyntaxError(
                    "collapse: inner loop bounds must not depend on outer "
                    f"loop variables ({', '.join(sorted(used & outer_names))})",
                    line=line,
                )
            targets.append(current.target)
            iters.append(current.iter)
            outer_names |= _target_names(current.target)
            if level == depth - 1:
                body = current.body
            else:
                if len(current.body) != 1 or not isinstance(current.body[0], ast.For):
                    raise DirectiveSyntaxError(
                        f"collapse({depth}) needs a perfectly nested loop "
                        f"nest; level {level + 1} has extra statements",
                        line=line,
                    )
                current = current.body[0]
        flattened_target = ast.Tuple(elts=targets, ctx=ast.Store())
        flattened_iter = bridge_call("collapse_product", iters)
        return ast.For(
            target=flattened_target, iter=flattened_iter, body=body, orelse=[]
        )

    # ------------------------------------------------------ small constructs

    def _apply_critical(self, d: CriticalDir, block: list[ast.stmt]) -> list[ast.stmt]:
        body = self._unwrap_sugar(block)
        with_stmt = ast.With(
            items=[
                ast.withitem(
                    context_expr=bridge_call("critical", [const(d.name)]),
                    optional_vars=None,
                )
            ],
            body=body,
        )
        return [with_stmt]

    def _lift_simple(
        self,
        d: ParsedDirective,
        block: list[ast.stmt],
        scope: _Scope,
        func: str,
        keywords: dict[str, ast.expr],
    ) -> list[ast.stmt]:
        body = self._unwrap_sugar(block)
        self._check_liftable(body, d.line, func)
        decls, pre_inits = self._binding_decls(body, scope)
        fname = self.names.fresh(func)
        funcdef = self._region_funcdef(fname, body, decls, [], [])
        call = bridge_call(func, [name_load(fname)], keywords)
        return [*pre_inits, funcdef, expr_stmt(call)]

    # -------------------------------------------------------------- sections

    def _apply_sections(
        self, d: SectionsDir, block: list[ast.stmt], scope: _Scope
    ) -> list[ast.stmt]:
        body = self._unwrap_sugar(block)
        groups: list[list[ast.stmt]] = [[]]
        for stmt in body:
            if _is_section_marker(stmt):
                if groups[-1] or len(groups) > 1:
                    groups.append([])
                groups[-1].extend(stmt.body)  # type: ignore[attr-defined]
            else:
                groups[-1].append(stmt)
        groups = [g for g in groups if g]
        if not groups:
            raise DirectiveSyntaxError("empty sections construct", line=d.line)

        pre_all: list[ast.stmt] = []
        funcdefs: list[ast.stmt] = []
        names: list[str] = []
        for g in groups:
            self._check_liftable(g, d.line, "section")
            decls, pre_inits = self._binding_decls(g, scope)
            fname = self.names.fresh("section")
            funcdefs.append(self._region_funcdef(fname, g, decls, [], []))
            pre_all.extend(pre_inits)
            names.append(fname)
            scope.note(pre_inits)  # later sections see earlier pre-inits
        call = bridge_call(
            "sections",
            [ast.List(elts=[name_load(n) for n in names], ctx=ast.Load())],
            {"nowait": const(d.nowait)},
        )
        return [*pre_all, *funcdefs, expr_stmt(call)]

    def _check_no_stray_sections(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.If) and _is_marker_test(node.test):
                raise DirectiveSyntaxError(
                    "'#omp section' used outside an '#omp sections' block"
                )


def _is_section_marker(stmt: ast.stmt) -> bool:
    return isinstance(stmt, ast.If) and _is_marker_test(stmt.test)


def _is_marker_test(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and test.value == _SECTION_MARKER


def _param_names(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    a = fn.args
    names = {p.arg for p in a.posonlyargs + a.args + a.kwonlyargs}
    if a.vararg:
        names.add(a.vararg.arg)
    if a.kwarg:
        names.add(a.kwarg.arg)
    return names


def _collect_globals(stmts: list[ast.stmt]) -> set[str]:
    collector = BindingCollector()
    for s in stmts:
        collector.visit(s)
    return collector.declared_global


def _target_names(target: ast.expr) -> set[str]:
    return {n.id for n in ast.walk(target) if isinstance(n, ast.Name)}


class _RewriteContinues(ast.NodeTransformer):
    """Top-level ``continue`` in a worksharing loop body becomes ``return``
    (returning the reduction accumulator when there is one)."""

    def __init__(self, red_local: str | None) -> None:
        self.red_local = red_local
        self.loop_depth = 0

    def rewrite(self, body: list[ast.stmt]) -> list[ast.stmt]:
        return [self.visit(s) for s in body]

    def visit_FunctionDef(self, node):
        return node

    visit_AsyncFunctionDef = visit_Lambda = visit_FunctionDef

    def _visit_loop(self, node):
        self.loop_depth += 1
        self.generic_visit(node)
        self.loop_depth -= 1
        return node

    visit_For = visit_While = _visit_loop

    def visit_Continue(self, node: ast.Continue):
        if self.loop_depth:
            return node
        value = name_load(self.red_local) if self.red_local else None
        return ast.copy_location(ast.Return(value=value), node)


def transform_source(source: str, filename: str = "<omp>") -> str:
    """Compile ``#omp`` pragmas in *source* to runtime calls; returns the new
    source text."""
    return OmpTransformer(source, filename).transformed_source()
