"""Deterministic cooperative scheduler: exactly one runnable thread at a time.

The stress harness (:mod:`repro.check`) *samples* interleavings by sleeping
random amounts at the injection seam points; this module *serializes* them.
Every workload thread is an enrolled **actor**; whenever it crosses a seam
point (via :meth:`DeterministicScheduler.decision`, installed as the
``InjectionHooks.decision`` hook) or an explicit :meth:`checkpoint`, it
parks until the single driver thread grants it the turn.  Between grants no
actor runs, so the interleaving of seam crossings is exactly the sequence of
grants — an explicit, replayable schedule instead of a probability.

This is the CHESS model (Musuvathi et al.): real runtime code on real
threads, but with scheduling authority confiscated.  The driver's loop is::

    enabled = sched.wait_quiescent()   # everyone parked; who could run?
    sched.grant(choice.label)          # exactly one proceeds to its next park

Virtual time rides :class:`repro.sim.des.Simulator`: each grant advances the
clock one tick, and :meth:`vsleep` parks an actor until a virtual instant —
so "slow body" workloads explore in microseconds of wall time, and when no
actor is enabled the driver warps the clock to the earliest sleeper instead
of idling.  One virtual tick == one scheduling decision.

Teardown safety: :meth:`release_all` flips the scheduler into *free-run*
mode — every park becomes a pass-through and every parked actor is released
— so a run being abandoned (violation found, branch pruned, deadlock
detected) can always join its threads.  A real-time watchdog
(:attr:`step_timeout`) converts a wedged actor into a diagnosable
:class:`ExplorationError` naming the culprit instead of a hung explorer.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..sim.des import Simulator

__all__ = [
    "DeterministicScheduler",
    "ExplorationError",
    "ExplorationDeadlock",
    "ParkedActor",
]


class ExplorationError(RuntimeError):
    """The exploration machinery itself failed (stuck actor, bad grant...)."""


class ExplorationDeadlock(ExplorationError):
    """Every live actor is parked, none is enabled, and no virtual-time
    wakeup remains: the workload deadlocked under the schedule so far."""

    def __init__(self, parked: list[tuple[str, str, str | None]]) -> None:
        self.parked = parked
        detail = ", ".join(
            f"{label}@{point}" + (f"({target})" if target else "")
            for label, point, target in parked
        )
        super().__init__(f"all actors parked and none enabled: {detail}")


class ParkedActor:
    """Where one enabled actor is parked (what its next step would be)."""

    __slots__ = ("label", "point", "target")

    def __init__(self, label: str, point: str, target: str | None) -> None:
        self.label = label
        self.point = point
        self.target = target

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<ParkedActor {self.label}@{self.point}({self.target})>"


class _Actor:
    __slots__ = (
        "label", "fn", "thread", "status", "point", "target",
        "enabled_when", "wake_at", "turn", "error",
    )

    def __init__(self, label: str, fn: Callable[[], None]) -> None:
        self.label = label
        self.fn = fn
        self.thread: threading.Thread | None = None
        self.status = "new"  # new -> (parked <-> running)* -> done
        self.point: str | None = None
        self.target: str | None = None
        self.enabled_when: Callable[[], bool] | None = None
        self.wake_at: float | None = None
        self.turn = False
        self.error: BaseException | None = None


class DeterministicScheduler:
    """Serializes enrolled actor threads under explicit driver control."""

    def __init__(self, *, step_timeout: float = 20.0) -> None:
        #: Virtual clock shared with the workload; one tick per grant.
        self.sim = Simulator()
        #: Real-time watchdog: how long :meth:`wait_quiescent` tolerates an
        #: actor staying between parks before declaring it wedged.
        self.step_timeout = step_timeout
        self._cond = threading.Condition()
        self._actors: dict[str, _Actor] = {}
        self._by_ident: dict[int, _Actor] = {}
        self._free_run = False
        self._started = False

    # ------------------------------------------------------------- enrolment

    def actor(self, label: str, fn: Callable[[], None]) -> None:
        """Enroll *fn* as actor *label* (before :meth:`start`)."""
        if self._started:
            raise ExplorationError("cannot enroll actors after start()")
        if label in self._actors:
            raise ExplorationError(f"duplicate actor label {label!r}")
        self._actors[label] = _Actor(label, fn)

    def start(self) -> None:
        """Spawn every actor thread; each parks at its ``spawn`` point."""
        if self._started:
            raise ExplorationError("scheduler already started")
        if not self._actors:
            raise ExplorationError("no actors enrolled")
        self._started = True
        for a in self._actors.values():
            t = threading.Thread(
                target=self._actor_main, args=(a,),
                name=f"explore-{a.label}", daemon=True,
            )
            a.thread = t
            t.start()

    def _actor_main(self, actor: _Actor) -> None:
        self._by_ident[threading.get_ident()] = actor
        try:
            # The initial park: an actor's first step is released by the
            # driver like every other, so spawn order is schedule-controlled.
            self._park(actor, "spawn", None, None, None)
            actor.fn()
        except BaseException as exc:  # noqa: BLE001 - surfaced via errors()
            actor.error = exc
        finally:
            self._by_ident.pop(threading.get_ident(), None)
            with self._cond:
                actor.status = "done"
                self._cond.notify_all()

    # ----------------------------------------------------------- actor side

    def decision(self, point: str, target_name: str) -> None:
        """The ``InjectionHooks.decision`` hook: park at a runtime seam.

        Unenrolled threads (the driver, foreign pools) pass straight
        through, so driver-side setup can use the runtime normally.
        """
        if self._free_run:
            return
        actor = self._by_ident.get(threading.get_ident())
        if actor is None:
            return
        self._park(actor, point, target_name, None, None)

    def checkpoint(
        self,
        point: str,
        target: str | None = None,
        *,
        enabled_when: Callable[[], bool] | None = None,
    ) -> bool:
        """Explicit workload decision point (e.g. before a cancel, a pump).

        *enabled_when* is evaluated by the driver while everyone is parked;
        a False predicate means granting this actor now would be a wasted
        step (nothing to pump), so the branch is never offered.  Returns
        False once the scheduler is in free-run teardown, letting workload
        loops exit instead of spinning.
        """
        if self._free_run:
            return False
        actor = self._by_ident.get(threading.get_ident())
        if actor is None:
            return True
        self._park(actor, point, target, enabled_when, None)
        return not self._free_run

    def vsleep(self, delay: float) -> None:
        """Park until virtual time advances *delay* ticks (one tick/grant).

        The virtual-speed replacement for ``time.sleep`` in workload bodies:
        the driver warps :attr:`sim` forward when only sleepers remain, so a
        "3 second" body costs three scheduling decisions, not three seconds.
        """
        if delay < 0:
            raise ExplorationError("cannot vsleep a negative delay")
        if self._free_run:
            return
        actor = self._by_ident.get(threading.get_ident())
        if actor is None:
            return
        self._park(actor, "sleep", None, None, float(delay))

    def _park(
        self,
        actor: _Actor,
        point: str,
        target: str | None,
        enabled_when: Callable[[], bool] | None,
        sleep_delay: float | None,
    ) -> None:
        with self._cond:
            if self._free_run:
                return
            actor.point = point
            actor.target = target
            actor.enabled_when = enabled_when
            actor.wake_at = (
                None if sleep_delay is None else self.sim.now + sleep_delay
            )
            actor.turn = False
            actor.status = "parked"
            self._cond.notify_all()
            while not actor.turn and not self._free_run:
                self._cond.wait()
            actor.status = "running"
            actor.turn = False
            actor.point = actor.target = None
            actor.enabled_when = None
            actor.wake_at = None

    # ----------------------------------------------------------- driver side

    def _is_enabled(self, actor: _Actor) -> bool:
        # Caller holds self._cond.
        if actor.wake_at is not None:
            return actor.wake_at <= self.sim.now
        pred = actor.enabled_when
        if pred is not None:
            try:
                return bool(pred())
            except Exception as exc:
                raise ExplorationError(
                    f"enabled predicate of actor {actor.label!r} raised "
                    f"{type(exc).__name__}: {exc}"
                ) from exc
        return True

    def wait_quiescent(self) -> list[ParkedActor]:
        """Block until every actor is parked or done; return who could run.

        Advances virtual time to the earliest sleeper when nobody else is
        enabled.  Returns an empty list when all actors finished; raises
        :class:`ExplorationDeadlock` when parked actors remain but none can
        ever be granted, and :class:`ExplorationError` when an actor stays
        between parks longer than :attr:`step_timeout` (a wedged workload).
        """
        deadline = time.monotonic() + self.step_timeout
        with self._cond:
            while True:
                # A granted actor keeps status "parked" until its thread
                # actually wakes; its turn flag marks it in-flight (busy),
                # or the driver would re-offer the same park as a new step.
                busy = sorted(
                    a.label for a in self._actors.values()
                    if a.status in ("new", "running")
                    or (a.status == "parked" and a.turn)
                )
                if not busy:
                    parked = [
                        a for a in self._actors.values() if a.status == "parked"
                    ]
                    if not parked:
                        return []
                    enabled = [a for a in parked if self._is_enabled(a)]
                    if enabled:
                        return [
                            ParkedActor(a.label, a.point or "", a.target)
                            for a in sorted(enabled, key=lambda a: a.label)
                        ]
                    sleepers = [
                        a.wake_at for a in parked
                        if a.wake_at is not None and a.wake_at > self.sim.now
                    ]
                    if sleepers:
                        # Nothing runnable now: warp to the earliest wakeup
                        # (fires any simulator callbacks due on the way).
                        self.sim.run(until=min(sleepers))
                        continue
                    raise ExplorationDeadlock(sorted(
                        (a.label, a.point or "", a.target) for a in parked
                    ))
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._cond.wait(timeout=remaining):
                    raise ExplorationError(
                        f"actor(s) {', '.join(busy)} did not reach a decision "
                        f"point within {self.step_timeout}s — workload blocked "
                        "outside the instrumented seams?"
                    )

    def grant(self, label: str) -> None:
        """Release exactly one parked, enabled actor for its next step."""
        with self._cond:
            actor = self._actors.get(label)
            if actor is None:
                raise ExplorationError(f"unknown actor {label!r}")
            if actor.status != "parked":
                raise ExplorationError(
                    f"cannot grant {label!r}: status is {actor.status!r}"
                )
            if not self._is_enabled(actor):
                raise ExplorationError(f"cannot grant {label!r}: not enabled")
            # One scheduling decision == one virtual tick; due simulator
            # callbacks fire before the actor moves.
            self.sim.run(until=self.sim.now + 1.0)
            actor.turn = True
            self._cond.notify_all()

    # -------------------------------------------------------------- teardown

    def release_all(self) -> None:
        """Enter free-run mode: all parks pass through, parked actors resume.

        After this the run is no longer deterministic — it is teardown, not
        exploration; workload loops observe it via :meth:`checkpoint`
        returning False and exit.
        """
        with self._cond:
            self._free_run = True
            for a in self._actors.values():
                a.turn = True
            self._cond.notify_all()

    def join(self, timeout: float = 10.0) -> None:
        """Join every actor thread; raise naming any that survive *timeout*."""
        deadline = time.monotonic() + timeout
        for a in self._actors.values():
            if a.thread is not None:
                a.thread.join(max(0.0, deadline - time.monotonic()))
        stuck = sorted(
            a.label for a in self._actors.values()
            if a.thread is not None and a.thread.is_alive()
        )
        if stuck:
            raise ExplorationError(
                f"actor(s) {', '.join(stuck)} did not exit during teardown"
            )

    def errors(self) -> dict[str, BaseException]:
        """Exceptions escaped from actor bodies, by label (sorted)."""
        return {
            a.label: a.error
            for a in sorted(self._actors.values(), key=lambda a: a.label)
            if a.error is not None
        }
