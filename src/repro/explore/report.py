"""Deterministic plain-text reports for exploration and replay runs.

Like :mod:`repro.check.report`, every line is built from schedule content
and harness-assigned labels — never timestamps, thread names or absolute
paths — so the same exploration produces byte-identical output anywhere,
and CI diffs of two reports mean something.
"""

from __future__ import annotations

from pathlib import Path

from .explorer import ExploreResult, ReplayResult

__all__ = ["render_explore_report", "render_replay_report"]


def render_explore_report(
    result: ExploreResult, schedule_path: Path | None = None
) -> str:
    bound = (
        "unbounded"
        if result.preemption_bound is None
        else str(result.preemption_bound)
    )
    lines = [
        f"repro explore: workload={result.workload} "
        f"preemptions={bound} budget={result.max_schedules}"
        + (f" inject={result.inject}" if result.inject else "")
        + (f" seed={result.seed}" if result.seed is not None else ""),
        f"schedules: {result.schedules} explored, "
        f"{result.abandoned} abandoned, "
        f"{result.pruned_sleep} sleep-set pruned, "
        f"{result.pruned_preempt} preemption-bound pruned",
    ]
    if result.exhausted:
        lines.append(
            f"coverage: exhaustive (schedule tree drained; "
            f"max {result.max_steps} steps/run, {result.total_steps} total)"
        )
    else:
        lines.append(
            f"coverage: budget reached with branches left unexplored "
            f"(max {result.max_steps} steps/run, {result.total_steps} total)"
        )
    rec = result.violating
    if rec is None:
        lines.append("result: OK — no invariant violations in any schedule")
    else:
        lines.append(
            f"result: VIOLATION in a {len(rec.choices)}-step schedule "
            f"({result.violation_runs} violating run(s) found)"
        )
        lines.append("schedule:")
        for i, step in enumerate(rec.choices):
            lines.append(f"  {i:3d}  {step.describe()}")
        lines.append("violations:")
        for v in rec.violations:
            lines.append(f"  {v.render()}")
        if schedule_path is not None:
            lines.append(f"schedule file: {schedule_path}")
            lines.append(
                f"replay with: python -m repro explore --replay {schedule_path}"
            )
    return "\n".join(lines)


def render_replay_report(result: ReplayResult, path: str) -> str:
    sf = result.schedule
    lines = [
        f"repro explore --replay: workload={sf.workload} "
        f"steps={len(sf.steps)}"
        + (f" inject={sf.inject}" if sf.inject else ""),
    ]
    if result.record.diverged is not None:
        lines.append("result: DIVERGED — the runtime no longer follows this schedule")
        lines.append(f"  {result.record.diverged}")
    elif result.identical:
        if result.expected:
            lines.append(
                f"result: REPRODUCED — {len(result.actual)} recorded "
                "violation(s) reproduced identically"
            )
        else:
            lines.append("result: REPRODUCED — clean schedule, still clean")
        for v in result.actual:
            lines.append(f"  {v}")
    else:
        lines.append("result: MISMATCH — violations differ from the recording")
        lines.append(f"  recorded ({len(result.expected)}):")
        for v in result.expected:
            lines.append(f"    {v}")
        lines.append(f"  replayed ({len(result.actual)}):")
        for v in result.actual:
            lines.append(f"    {v}")
    return "\n".join(lines)
