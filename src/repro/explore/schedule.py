"""Schedule files: an interleaving as a replayable artifact.

A schedule is the complete sequence of ``(thread, point, target)`` choices
the driver granted during one run.  When exploration finds an invariant
violation, the schedule — not a seed — is what gets written to disk: it
pins the exact interleaving, survives unrelated workload changes that would
re-shuffle a seeded sampler, and diffs meaningfully in a bug report.

Format (``repro.explore/v1``, JSON)::

    {
      "format": "repro.explore/v1",
      "workload": "caller-runs-cancel",
      "inject": null,
      "steps": [
        {"thread": "post-a", "point": "spawn", "target": null},
        {"thread": "post-a", "point": "post",  "target": "t0"},
        ...
      ],
      "violations": ["[exec-after-cancel] ..."],
      "meta": {"preemption_bound": null, "seed": null}
    }

``violations`` records what the run produced when the file was written;
``python -m repro explore --replay FILE`` re-executes the steps and
compares — identical output proves the schedule still reproduces the bug,
a divergence report proves the underlying code changed.  Filenames embed a
digest of (workload, inject, steps) so distinct interleavings never
overwrite each other.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "SCHEDULE_FORMAT",
    "ScheduleStep",
    "ScheduleFile",
    "schedule_digest",
    "save_schedule",
    "load_schedule",
]

SCHEDULE_FORMAT = "repro.explore/v1"


@dataclass(frozen=True)
class ScheduleStep:
    """One scheduling decision: which thread crossed which seam point."""

    thread: str
    point: str
    target: str | None = None

    def describe(self) -> str:
        loc = f"{self.point}({self.target})" if self.target else self.point
        return f"{self.thread}@{loc}"


@dataclass
class ScheduleFile:
    """An on-disk schedule plus the violations it produced when recorded."""

    workload: str
    steps: list[ScheduleStep]
    inject: str | None = None
    violations: list[str] | None = None
    meta: dict | None = None

    def digest(self) -> str:
        return schedule_digest(self.workload, self.steps, self.inject)


def _canonical(workload: str, steps: list[ScheduleStep], inject: str | None) -> str:
    return json.dumps(
        {
            "workload": workload,
            "inject": inject,
            "steps": [[s.thread, s.point, s.target] for s in steps],
        },
        sort_keys=True, separators=(",", ":"),
    )


def schedule_digest(
    workload: str, steps: list[ScheduleStep], inject: str | None = None
) -> str:
    """Stable 12-hex-digit identity of one interleaving."""
    return hashlib.sha256(
        _canonical(workload, steps, inject).encode("utf-8")
    ).hexdigest()[:12]


def save_schedule(directory: str | Path, schedule: ScheduleFile) -> Path:
    """Write *schedule* under *directory*; returns the path written.

    The filename is derived from the workload and the schedule digest, so
    repeated runs that find the same interleaving overwrite one file and
    distinct interleavings coexist.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"explore-{schedule.workload}-{schedule.digest()}.json"
    document = {
        "format": SCHEDULE_FORMAT,
        "workload": schedule.workload,
        "inject": schedule.inject,
        "steps": [
            {"thread": s.thread, "point": s.point, "target": s.target}
            for s in schedule.steps
        ],
        "violations": list(schedule.violations or []),
        "meta": dict(schedule.meta or {}),
    }
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def load_schedule(path: str | Path) -> ScheduleFile:
    """Parse a schedule file; raises ``ValueError`` on a foreign format."""
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or raw.get("format") != SCHEDULE_FORMAT:
        raise ValueError(
            f"{path}: not a {SCHEDULE_FORMAT} schedule file "
            f"(format={raw.get('format') if isinstance(raw, dict) else None!r})"
        )
    steps = [
        ScheduleStep(s["thread"], s["point"], s.get("target"))
        for s in raw.get("steps", [])
    ]
    return ScheduleFile(
        workload=raw["workload"],
        steps=steps,
        inject=raw.get("inject"),
        violations=list(raw.get("violations", [])),
        meta=dict(raw.get("meta", {})),
    )
