"""Systematic interleaving exploration: DFS over schedules with pruning.

Where ``repro check`` samples interleavings (random jitter, many seeds),
``repro explore`` *enumerates* them.  One **run** executes a workload model
(:mod:`repro.explore.workloads`) under the deterministic scheduler
(:mod:`repro.explore.scheduler`): a schedule prefix is replayed verbatim,
then a default continuation finishes the run; the driver records, at every
depth, which actors were enabled and which it chose.  The DFS then revisits
each depth and pushes one child node per unexplored alternative, so the
whole schedule tree is walked without ever storing states — classic
stateless model checking (Godefroot's VeriSoft / Microsoft's CHESS shape).

Two prunings keep the tree tractable:

* **Sleep sets** (DPOR): after exploring choice *c* at a state, *c* joins
  the sleep set handed to its sibling subtrees; a sleeping choice is only
  woken by a later step *dependent* on it.  Dependence is coarse — two
  steps commute iff both name a target and the targets differ — which is
  conservative (never unsound), and exact enough to collapse the
  cross-target interleavings of independent queues.
* **Preemption bounding** (CHESS): a context switch away from a
  still-enabled actor is a *preemption*; schedules exceeding the budget are
  cut.  Most races need 0–2 preemptions, so small bounds find the same bugs
  orders of magnitude sooner.  ``None`` means unbounded (exhaustive).

Every complete run is verified with the same trace invariants as the stress
harness (:mod:`repro.check.invariants`) plus the workload's own checks;
a violating run's exact schedule is saved as a ``repro.explore/v1`` file
(:mod:`repro.explore.schedule`) and :func:`replay` re-executes such a file
step for step, comparing the violations it reproduces against the recorded
ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..core import injection as _inj
from ..obs import recorder as _obs
from ..obs.events import EventKind, TraceEvent
from ..check.invariants import (
    Violation,
    crosscheck_outcomes,
    verify_events,
    verify_quiescence,
)
from .schedule import ScheduleFile, ScheduleStep, load_schedule
from .scheduler import (
    DeterministicScheduler,
    ExplorationDeadlock,
    ExplorationError,
)
from .workloads import WORKLOADS, ExploreContext, Workload

__all__ = [
    "RunRecord",
    "ExploreResult",
    "ReplayResult",
    "TAMPERS",
    "execute",
    "explore",
    "replay",
]

#: Ring-buffer size for one run's trace: models are tiny, this never drops.
_BUFFER_SIZE = 1 << 16

#: Hard per-run step cap.  Workload models are required to quiesce in a
#: bounded number of decisions under *every* schedule (their loops park on
#: enabled-when predicates); blowing this cap means a model is unsound.
_MAX_STEPS = 1000


# ---------------------------------------------------------------- run records


@dataclass
class RunRecord:
    """Everything one executed schedule produced, for DFS and for reports."""

    #: The full executed schedule (prefix + default continuation).
    choices: list[ScheduleStep] = field(default_factory=list)
    #: Per depth: the enabled actors ``(label, point, target)``, label-sorted.
    enabled: list[tuple[tuple[str, str, str | None], ...]] = field(
        default_factory=list
    )
    #: Per depth: the active sleep set *before* the step was taken.
    sleeps: list[frozenset[str]] = field(default_factory=list)
    #: Per depth: cumulative preemptions including this step.
    preempts: list[int] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)
    #: "sleep" / "preempt" when the continuation was abandoned by pruning.
    pruned: str | None = None
    #: Replay mismatch description (prefix did not match reality).
    diverged: str | None = None
    #: True when the run drove every actor to completion.
    complete: bool = False
    virtual_time: float = 0.0


def _preemption_cost(
    last: str | None,
    label: str,
    enabled_labels: frozenset[str],
) -> int:
    """1 when granting *label* preempts a still-enabled previous actor."""
    return 1 if (last is not None and last != label and last in enabled_labels) else 0


def execute(
    workload_factory: type[Workload],
    prefix: tuple[ScheduleStep, ...] = (),
    *,
    sleep_at_branch: frozenset[str] = frozenset(),
    preemption_bound: int | None = None,
    inject: str | None = None,
    chooser_rng: random.Random | None = None,
    step_timeout: float = 20.0,
) -> RunRecord:
    """Execute one run: replay *prefix*, then a default continuation.

    The continuation prefers staying on the previously-granted actor (zero
    preemption cost), skips actors in the evolving sleep set, and respects
    *preemption_bound*; *sleep_at_branch* seeds the sleep set at the first
    free depth (``len(prefix)``).  *chooser_rng*, when given, randomizes the
    continuation's tie-breaks — useful for sampling diverse schedules out of
    a space too large to exhaust; leave it None for canonical DFS order.
    """
    rec = RunRecord()
    sched = DeterministicScheduler(step_timeout=step_timeout)
    wl = workload_factory()
    ctx = ExploreContext(sched)

    # Recording and hooks go live *before* setup: workloads may pre-post
    # from the driver thread (which passes through the decision hook
    # unenrolled), and those enqueues must be on the verified timeline.
    session = _obs.session()
    session.start(buffer_size=_BUFFER_SIZE)
    _inj.install(_inj.InjectionHooks(decision=sched.decision))
    deadlock: ExplorationDeadlock | None = None
    try:
        wl.setup(ctx)
        sched.start()
        branch = len(prefix)
        sleep: frozenset[str] = frozenset()
        last: str | None = None
        cum_preempts = 0
        while True:
            if len(rec.choices) > _MAX_STEPS:
                raise ExplorationError(
                    f"run exceeded {_MAX_STEPS} steps: workload "
                    f"{wl.name!r} does not quiesce under this schedule"
                )
            try:
                parked = sched.wait_quiescent()
            except ExplorationDeadlock as dl:
                deadlock = dl
                break
            if not parked:
                rec.complete = True
                break
            depth = len(rec.choices)
            if depth == branch:
                sleep = sleep_at_branch
            info = {p.label: (p.point, p.target) for p in parked}
            enabled_labels = frozenset(info)
            snapshot = tuple((p.label, p.point, p.target) for p in parked)

            if depth < branch:
                want = prefix[depth]
                got = info.get(want.thread)
                if got is None:
                    rec.diverged = (
                        f"step {depth}: schedule grants {want.describe()} but "
                        f"actor {want.thread!r} is not enabled (enabled: "
                        f"{', '.join(sorted(info)) or 'none'})"
                    )
                    break
                if got != (want.point, want.target):
                    point, target = got
                    rec.diverged = (
                        f"step {depth}: schedule expects {want.describe()} but "
                        f"the actor is parked at "
                        f"{ScheduleStep(want.thread, point, target).describe()}"
                    )
                    break
                choice = want.thread
            else:
                candidates = []
                blocked_by_bound = False
                for p in parked:
                    if p.label in sleep:
                        continue
                    cost = _preemption_cost(last, p.label, enabled_labels)
                    if (
                        preemption_bound is not None
                        and cum_preempts + cost > preemption_bound
                    ):
                        blocked_by_bound = True
                        continue
                    candidates.append(p.label)
                if not candidates:
                    # Every enabled actor is asleep (this continuation is
                    # provably redundant) or over the preemption budget.
                    rec.pruned = "preempt" if blocked_by_bound else "sleep"
                    break
                if last in candidates:
                    choice = last  # stay on-thread: costs no preemption
                elif chooser_rng is not None:
                    choice = chooser_rng.choice(candidates)
                else:
                    choice = candidates[0]

            point, target = info[choice]
            cum_preempts += _preemption_cost(last, choice, enabled_labels)
            rec.choices.append(ScheduleStep(choice, point, target))
            rec.enabled.append(snapshot)
            rec.sleeps.append(sleep if depth >= branch else frozenset())
            rec.preempts.append(cum_preempts)

            if depth >= branch:
                # Sleep-set propagation: the chosen step wakes every sleeper
                # it depends on; unknown pending actions wake conservatively.
                kept = set()
                for s in sleep:
                    if s == choice or s not in info:
                        continue
                    s_target = info[s][1]
                    if target is not None and s_target is not None \
                            and target != s_target:
                        kept.add(s)  # independent: stays asleep
                sleep = frozenset(kept)
            last = choice
            sched.grant(choice)
    finally:
        sched.release_all()
        try:
            sched.join()
        except ExplorationError as exc:
            rec.violations.append(Violation("explore-stuck", str(exc)))
        _inj.uninstall()
        try:
            wl.quiesce()
        except Exception as exc:  # noqa: BLE001 - teardown must not mask runs
            rec.violations.append(Violation(
                "explore-teardown",
                f"workload quiesce raised {type(exc).__name__}: {exc}",
            ))
        session.stop()

    rec.virtual_time = sched.sim.now
    if deadlock is not None:
        rec.violations.append(Violation("explore-deadlock", str(deadlock)))
    for label, err in sched.errors().items():
        rec.violations.append(Violation(
            "actor-crash",
            f"actor {label!r} raised {type(err).__name__}: {err}",
            name=label,
        ))

    stats = session.stats()
    events = session.events()
    if rec.complete and rec.diverged is None:
        if stats["dropped"]:
            rec.violations.append(Violation(
                "trace-overflow",
                f"ring buffers dropped {stats['dropped']} event(s)",
            ))
        else:
            if inject is not None:
                events = TAMPERS[inject](events)
            rec.violations.extend(verify_events(events))
            rec.violations.extend(
                crosscheck_outcomes(events, regions=wl.regions())
            )
            rec.violations.extend(verify_quiescence(wl.targets()))
            rec.violations.extend(wl.verify(events))
    rec.violations = _dedup(rec.violations)
    session.clear()
    return rec


def _dedup(violations: list[Violation]) -> list[Violation]:
    seen: set[tuple[str, str]] = set()
    out: list[Violation] = []
    for v in sorted(violations, key=Violation.key):
        if v.key() not in seen:
            seen.add(v.key())
            out.append(v)
    return out


# -------------------------------------------------------------------- tampers


def _tamper_lying_outcome(events: list[TraceEvent]) -> list[TraceEvent]:
    """Flip the first ``EXEC_END``'s recorded outcome."""
    for e in events:
        if e.kind is EventKind.EXEC_END and e.arg in ("completed", "failed"):
            e.arg = "failed" if e.arg == "completed" else "completed"
            break
    return events


def _tamper_lost_dequeue(events: list[TraceEvent]) -> list[TraceEvent]:
    """Delete the first ``DEQUEUE``, simulating a queue that lost track."""
    for i, e in enumerate(events):
        if e.kind is EventKind.DEQUEUE:
            del events[i]
            break
    return events


def _tamper_negative_depth(events: list[TraceEvent]) -> list[TraceEvent]:
    """Append a ``QUEUE_DEPTH`` sample that went below zero."""
    ts = events[-1].ts + 1 if events else 1
    events.append(
        TraceEvent(EventKind.QUEUE_DEPTH, ts, "tamper", target="t0", arg=-1)
    )
    return events


#: ``--inject`` modes: transforms applied to every run's recorded events
#: before verification.  Deliberately corrupting the trace proves the
#: exploration verifier actually fails, and that the violating schedule file
#: it emits replays to the identical report (the acceptance path that needs
#: no real runtime bug to exist).
TAMPERS = {
    "lying-exec-outcome": _tamper_lying_outcome,
    "lost-dequeue": _tamper_lost_dequeue,
    "negative-depth": _tamper_negative_depth,
}


# ------------------------------------------------------------------------ DFS


@dataclass
class ExploreResult:
    """Aggregate outcome of one exploration."""

    workload: str
    preemption_bound: int | None
    max_schedules: int
    inject: str | None = None
    seed: int | None = None
    #: Runs that executed to completion (and were verified).
    schedules: int = 0
    #: Runs abandoned mid-flight by a pruning rule.
    abandoned: int = 0
    #: Individual branch alternatives skipped by each pruning rule.
    pruned_sleep: int = 0
    pruned_preempt: int = 0
    max_steps: int = 0
    total_steps: int = 0
    #: True when the schedule tree was drained within ``max_schedules``.
    exhausted: bool = False
    #: Completed runs that produced violations.
    violation_runs: int = 0
    #: The first violating run (its schedule is what gets saved).
    violating: RunRecord | None = None

    @property
    def ok(self) -> bool:
        return self.violation_runs == 0


@dataclass(frozen=True)
class _Node:
    prefix: tuple[ScheduleStep, ...]
    sleep: frozenset[str]


def explore(
    workload_name: str,
    *,
    preemption_bound: int | None = None,
    max_schedules: int = 2000,
    inject: str | None = None,
    seed: int | None = None,
    stop_on_violation: bool = True,
    step_timeout: float = 20.0,
) -> ExploreResult:
    """Enumerate the interleavings of one workload model.

    Runs a DFS over schedule prefixes: each executed run contributes one
    child node per unexplored enabled alternative at every depth, with sleep
    sets inherited along sibling order and the preemption budget enforced at
    generation time.  Stops when the tree is drained (``exhausted=True``) or
    ``max_schedules`` runs have executed.
    """
    if workload_name not in WORKLOADS:
        raise ValueError(
            f"unknown workload {workload_name!r} "
            f"(have: {', '.join(sorted(WORKLOADS))})"
        )
    if inject is not None and inject not in TAMPERS:
        raise ValueError(
            f"unknown inject mode {inject!r} "
            f"(have: {', '.join(sorted(TAMPERS))})"
        )
    factory = WORKLOADS[workload_name]
    result = ExploreResult(
        workload=workload_name,
        preemption_bound=preemption_bound,
        max_schedules=max_schedules,
        inject=inject,
        seed=seed,
    )
    rng = random.Random(seed) if seed is not None else None
    stack: list[_Node] = [_Node((), frozenset())]
    runs = 0
    while stack:
        if runs >= max_schedules:
            return result  # budget reached with work remaining: not exhausted
        node = stack.pop()
        runs += 1
        rec = execute(
            factory,
            node.prefix,
            sleep_at_branch=node.sleep,
            preemption_bound=preemption_bound,
            inject=inject,
            chooser_rng=rng,
            step_timeout=step_timeout,
        )
        if rec.diverged is not None:
            raise ExplorationError(
                f"workload {workload_name!r} is nondeterministic: "
                f"{rec.diverged}"
            )
        result.total_steps += len(rec.choices)
        result.max_steps = max(result.max_steps, len(rec.choices))
        if rec.pruned is not None:
            result.abandoned += 1
            if rec.pruned == "sleep":
                result.pruned_sleep += 1
            else:
                result.pruned_preempt += 1
        else:
            result.schedules += 1
            if rec.violations:
                result.violation_runs += 1
                if result.violating is None:
                    result.violating = rec
                if stop_on_violation:
                    return result

        # Sibling generation: one node per unexplored alternative at every
        # depth this run chose freely.
        for d in range(len(node.prefix), len(rec.choices)):
            snap = rec.sleeps[d]
            chosen = rec.choices[d].thread
            last = rec.choices[d - 1].thread if d > 0 else None
            cum_before = rec.preempts[d - 1] if d > 0 else 0
            enabled_here = rec.enabled[d]
            enabled_labels = frozenset(lbl for lbl, _, _ in enabled_here)
            acc = set(snap) | {chosen}
            alt_nodes: list[_Node] = []
            for lbl, _point, _target in enabled_here:
                if lbl == chosen:
                    continue
                if lbl in snap:
                    result.pruned_sleep += 1
                    continue
                cost = _preemption_cost(last, lbl, enabled_labels)
                if (
                    preemption_bound is not None
                    and cum_before + cost > preemption_bound
                ):
                    result.pruned_preempt += 1
                    continue
                alt_nodes.append(
                    _Node(tuple(rec.choices[:d]), frozenset(acc))
                )
                acc.add(lbl)
            # Reversed push: LIFO pop order then matches the sleep-set
            # accumulation order, so each child takes the alternative its
            # sleep set was built for.
            stack.extend(reversed(alt_nodes))
    result.exhausted = True
    return result


# --------------------------------------------------------------------- replay


@dataclass
class ReplayResult:
    """Outcome of replaying a saved schedule against the current code."""

    schedule: ScheduleFile
    record: RunRecord
    #: Violations the replay actually produced, rendered.
    actual: list[str] = field(default_factory=list)
    #: Violations recorded in the file when it was written, rendered.
    expected: list[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        return self.record.diverged is None and self.actual == self.expected


def replay(path: str, *, step_timeout: float = 20.0) -> ReplayResult:
    """Re-execute a saved schedule file step for step.

    An ``identical`` result proves the schedule still pins the recorded
    violations (or, for a clean file, still passes); a divergence or a
    different violation list proves the runtime's behaviour under that
    interleaving changed.
    """
    sf = load_schedule(path)
    if sf.workload not in WORKLOADS:
        raise ValueError(
            f"{path}: schedule is for unknown workload {sf.workload!r}"
        )
    if sf.inject is not None and sf.inject not in TAMPERS:
        raise ValueError(
            f"{path}: schedule uses unknown inject mode {sf.inject!r}"
        )
    rec = execute(
        WORKLOADS[sf.workload],
        tuple(sf.steps),
        preemption_bound=None,
        inject=sf.inject,
        step_timeout=step_timeout,
    )
    return ReplayResult(
        schedule=sf,
        record=rec,
        actual=[v.render() for v in rec.violations],
        expected=list(sf.violations or []),
    )
