"""Exploration workload models: small, fully-controllable race nurseries.

Each workload is a handful of actors driving *real* runtime objects
(:class:`~repro.core.targets.EdtTarget` queues, real ``post``/``cancel``/
``shutdown`` calls) through the deterministic scheduler.  Targets are
deliberately **unbound** EDT targets pumped by an enrolled actor — a free
-running pool thread cannot be scheduled deterministically, a pumping actor
can.  Region bodies come from :func:`repro.check.stress.region_body`, and
verification is the same invariant vocabulary as ``repro check``
(:mod:`repro.check.invariants`) plus per-workload checks for the specific
contract the model targets.

Design rules for a sound model:

* Every loop parks through ``ctx.checkpoint(..., enabled_when=...)`` — the
  predicate keeps no-op steps (pumping an empty queue) out of the schedule
  tree, which would otherwise be infinite, and a checkpoint returning False
  means teardown: exit.
* Goals are monotone (``region.done``, ``work_count() == 0``) so a model
  quiesces under *every* interleaving; a reachable stuck state is reported
  by the explorer as a deadlock violation, not a hang.
"""

from __future__ import annotations

from typing import Callable

from ..check.invariants import Violation
from ..check.stress import region_body
from ..core.region import TargetRegion
from ..core.targets import EdtTarget, VirtualTarget
from ..obs.events import EventKind, TraceEvent
from .scheduler import DeterministicScheduler

__all__ = ["ExploreContext", "Workload", "WORKLOADS", "SensorRegion"]


class ExploreContext:
    """The workload's handle on the scheduler: enrolment + cooperation."""

    def __init__(self, sched: DeterministicScheduler) -> None:
        self._sched = sched

    def actor(self, label: str, fn: Callable[[], None]) -> None:
        self._sched.actor(label, fn)

    def checkpoint(
        self,
        point: str,
        target: str | None = None,
        *,
        enabled_when: Callable[[], bool] | None = None,
    ) -> bool:
        return self._sched.checkpoint(point, target, enabled_when=enabled_when)

    def vsleep(self, delay: float) -> None:
        self._sched.vsleep(delay)


class SensorRegion(TargetRegion):
    """A region that records ``run()`` invocations arriving after it is
    already terminal — the exact contract the corpse-discard fix
    establishes: dispatch must not touch a withdrawn region at all."""

    __slots__ = ("late_runs",)

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.late_runs = 0

    def run(self) -> None:
        if self.done:
            self.late_runs += 1
        super().run()


class Workload:
    """One exploration model.  A fresh instance is built per run."""

    name = "abstract"
    description = ""

    def setup(self, ctx: ExploreContext) -> None:
        raise NotImplementedError

    def quiesce(self) -> None:
        """Driver-side teardown after all actors exited (or were released)."""
        for t in self.targets():
            t.shutdown(wait=False)

    def targets(self) -> list[VirtualTarget]:
        return []

    def regions(self) -> list[tuple[str, TargetRegion]]:
        return []

    def verify(self, events: list[TraceEvent]) -> list[Violation]:
        """Workload-specific checks beyond the generic invariants."""
        out: list[Violation] = []
        for label, region in self.regions():
            if isinstance(region, SensorRegion) and region.late_runs:
                out.append(Violation(
                    "exec-after-cancel",
                    f"run() was invoked on region {label!r} "
                    f"{region.late_runs}x after it reached a terminal state "
                    "(dispatch must discard corpses untouched)",
                    name=label,
                ))
        return out

    # ------------------------------------------------------------- helpers

    def _pump(self, ctx: ExploreContext, target: VirtualTarget,
              goal: Callable[[], bool]) -> Callable[[], None]:
        """A pumping actor body: drain *target* one item per granted step
        until *goal* holds.  Enabled only when there is work or the goal is
        already met (the final grant lets the loop observe it and exit)."""

        def enabled() -> bool:
            return target.work_count() > 0 or goal()

        def pump() -> None:
            while not goal():
                if not ctx.checkpoint("pump", target.name, enabled_when=enabled):
                    return  # free-run teardown
                if target.work_count() > 0:
                    target.process_one(timeout=0)

        return pump


class PostTwoOne(Workload):
    """Two posters race two regions into one manually-pumped target.

    The acceptance model: a 2-region/1-target workload small enough to
    enumerate exhaustively, exercising post/post/dispatch commutation."""

    name = "post-2x1"
    description = "two posters race two regions into one pumped target"

    def setup(self, ctx: ExploreContext) -> None:
        self.t0 = EdtTarget("t0")
        self.r1 = TargetRegion(region_body(0.0, False, "r1"), name="r1")
        self.r2 = TargetRegion(region_body(0.0, False, "r2"), name="r2")
        ctx.actor("post-a", lambda: self.t0.post(self.r1))
        ctx.actor("post-b", lambda: self.t0.post(self.r2))
        ctx.actor("pump", self._pump(
            ctx, self.t0, lambda: self.r1.done and self.r2.done
        ))

    def targets(self) -> list[VirtualTarget]:
        return [self.t0]

    def regions(self) -> list[tuple[str, TargetRegion]]:
        return [("r1", self.r1), ("r2", self.r2)]


class PostTwoTwo(Workload):
    """Two independent target/pumper pairs: the sleep-set pruning showcase.

    Steps on different targets commute, so DPOR-style sleep sets collapse
    the cross-products of independent orderings — compare its pruned count
    against ``post-2x1``, where everything conflicts on one target."""

    name = "post-2x2"
    description = "two posters on two independent targets (pruning showcase)"

    def setup(self, ctx: ExploreContext) -> None:
        self.t0 = EdtTarget("t0")
        self.t1 = EdtTarget("t1")
        self.r1 = TargetRegion(region_body(0.0, False, "r1"), name="r1")
        self.r2 = TargetRegion(region_body(0.0, False, "r2"), name="r2")
        ctx.actor("post-a", lambda: self.t0.post(self.r1))
        ctx.actor("post-b", lambda: self.t1.post(self.r2))
        ctx.actor("pump-a", self._pump(ctx, self.t0, lambda: self.r1.done))
        ctx.actor("pump-b", self._pump(ctx, self.t1, lambda: self.r2.done))

    def targets(self) -> list[VirtualTarget]:
        return [self.t0, self.t1]

    def regions(self) -> list[tuple[str, TargetRegion]]:
        return [("r1", self.r1), ("r2", self.r2)]


class CancelVsDispatch(Workload):
    """A cancel races a queued region's dequeue/dispatch.

    Orders explored: cancel before the post (never enqueued as live work),
    cancel while queued (corpse discarded at dequeue), cancel between the
    dispatch seam and execution (the PR-5 window), cancel after completion
    (no-op).  The SensorRegion pins that no order touches a corpse."""

    name = "cancel-vs-dispatch"
    description = "cancel races a queued region's dequeue and dispatch"

    def setup(self, ctx: ExploreContext) -> None:
        self.t0 = EdtTarget("t0")
        self.r1 = SensorRegion(region_body(0.0, False, "r1"), name="r1")
        ctx.actor("post-a", lambda: self.t0.post(self.r1))

        def canceller() -> None:
            ctx.checkpoint("cancel", "t0")
            self.r1.cancel()

        ctx.actor("cancel", canceller)
        ctx.actor("pump", self._pump(
            ctx, self.t0,
            lambda: self.r1.done and self.t0.work_count() == 0,
        ))

    def targets(self) -> list[VirtualTarget]:
        return [self.t0]

    def regions(self) -> list[tuple[str, TargetRegion]]:
        return [("r1", self.r1)]


class CallerRunsCancel(Workload):
    """Cancel races a ``caller_runs`` handoff on a full bounded queue.

    The queue (capacity 1) is pre-filled with a blocker, so the racing post
    always takes the caller-runs path; the cancel actor can land before the
    full-queue verdict, inside the handoff window (between the ``post`` and
    ``dispatch`` seams), or after execution.  Pre-fix, the first two orders
    emitted a ``caller_runs`` REJECT for — and invoked ``run()`` on — an
    already-cancelled region."""

    name = "caller-runs-cancel"
    description = "cancel races a caller_runs handoff on a full queue"

    def setup(self, ctx: ExploreContext) -> None:
        self.t0 = EdtTarget("t0", queue_capacity=1, rejection_policy="caller_runs")
        self.blocker = TargetRegion(region_body(0.0, False, "blocker"), name="blocker")
        # Driver-side (pass-through) post: the queue is deterministically
        # full before any actor is released.
        self.t0.post(self.blocker)
        self.r1 = SensorRegion(region_body(0.0, False, "r1"), name="r1")
        ctx.actor("post-a", lambda: self.t0.post(self.r1))

        def canceller() -> None:
            ctx.checkpoint("cancel", "t0")
            self.r1.cancel()

        ctx.actor("cancel", canceller)
        ctx.actor("pump", self._pump(
            ctx, self.t0,
            lambda: (
                self.blocker.done
                and self.r1.done
                and self.t0.work_count() == 0
            ),
        ))

    def targets(self) -> list[VirtualTarget]:
        return [self.t0]

    def regions(self) -> list[tuple[str, TargetRegion]]:
        return [("blocker", self.blocker), ("r1", self.r1)]

    def verify(self, events: list[TraceEvent]) -> list[Violation]:
        out = super().verify(events)
        # A caller_runs REJECT after the region's CANCEL claims a queue
        # bypass for work that never ran: the accounting half of the bug.
        cancelled_at: int | None = None
        for i, e in enumerate(events):
            if e.region != self.r1.seq:
                continue
            if e.kind is EventKind.CANCEL and cancelled_at is None:
                cancelled_at = i
            elif (
                e.kind is EventKind.REJECT
                and e.arg == "caller_runs"
                and cancelled_at is not None
            ):
                out.append(Violation(
                    "reject-after-cancel",
                    "caller_runs REJECT recorded for region 'r1' after its "
                    "CANCEL — a cancelled post must be discarded silently",
                    target="t0", name="r1",
                ))
                break
        return out


class ShutdownVsPost(Workload):
    """A shutdown races a poster through the post seam.

    Orders explored: post fully before shutdown (region runs or is
    cancelled with the backlog), shutdown before the poster's seam crossing
    (post raises on entry), and shutdown *inside* the window between the
    seam and the enqueue (the closed-queue put raises and the poster
    resolves its handle)."""

    name = "shutdown-vs-post"
    description = "shutdown(wait=False) races a poster's enqueue"

    def setup(self, ctx: ExploreContext) -> None:
        self.t0 = EdtTarget("t0")
        self.r1 = TargetRegion(region_body(0.0, False, "r1"), name="r1")

        def poster() -> None:
            try:
                self.t0.post(self.r1)
            except Exception as exc:  # TargetShutdownError: resolve the handle
                self.r1.request_cancel(exc)

        ctx.actor("post-a", poster)

        def shutter() -> None:
            ctx.checkpoint("shutdown", "t0")
            self.t0.shutdown(wait=False)

        ctx.actor("shutdown", shutter)
        ctx.actor("pump", self._pump(
            ctx, self.t0,
            lambda: self.r1.done and self.t0.work_count() == 0,
        ))

    def targets(self) -> list[VirtualTarget]:
        return [self.t0]

    def regions(self) -> list[tuple[str, TargetRegion]]:
        return [("r1", self.r1)]


class SlowBodyCancel(Workload):
    """A cooperative cancel races a long-running body — in virtual time.

    The body "runs" three virtual ticks then polls its cancel token; the
    canceller fires after two.  Exploration permutes whether the dispatch
    starts before, during, or after the cancel window, all at simulator
    speed (``ctx.vsleep``), demonstrating the ``repro.sim`` integration."""

    name = "slow-body-cancel"
    description = "cooperative cancel races a slow body (virtual time)"

    def setup(self, ctx: ExploreContext) -> None:
        self.t0 = EdtTarget("t0")

        def body() -> str:
            ctx.vsleep(3.0)
            if self.r1.cancel_token.cancelled:
                return "bailed"  # cooperative early exit
            return "r1"

        self.r1 = TargetRegion(body, name="r1")
        ctx.actor("post-a", lambda: self.t0.post(self.r1))

        def canceller() -> None:
            ctx.vsleep(2.0)
            self.r1.request_cancel()

        ctx.actor("cancel", canceller)
        ctx.actor("pump", self._pump(
            ctx, self.t0,
            lambda: self.r1.done and self.t0.work_count() == 0,
        ))

    def targets(self) -> list[VirtualTarget]:
        return [self.t0]

    def regions(self) -> list[tuple[str, TargetRegion]]:
        return [("r1", self.r1)]


#: Registry: workload name -> class (instantiated fresh per run).
WORKLOADS: dict[str, type[Workload]] = {
    w.name: w
    for w in (
        PostTwoOne,
        PostTwoTwo,
        CancelVsDispatch,
        CallerRunsCancel,
        ShutdownVsPost,
        SlowBodyCancel,
    )
}
