"""``repro.explore``: systematic (exhaustive) interleaving exploration.

The stress harness (:mod:`repro.check`) finds races by *sampling*
interleavings under random jitter; this package finds them by *enumerating*
interleavings.  A deterministic scheduler serializes workload threads at
the :mod:`repro.core.injection` seam points, a DFS walks the schedule tree
with DPOR-style sleep sets and CHESS-style preemption bounding, every
complete run is verified with the trace invariants, and a violating run is
emitted as an exact, replayable schedule file.

Entry points: :func:`explore` / :func:`replay` (library),
``python -m repro explore`` (CLI).
"""

from .explorer import (
    ExploreResult,
    ReplayResult,
    RunRecord,
    TAMPERS,
    execute,
    explore,
    replay,
)
from .report import render_explore_report, render_replay_report
from .schedule import (
    SCHEDULE_FORMAT,
    ScheduleFile,
    ScheduleStep,
    load_schedule,
    save_schedule,
    schedule_digest,
)
from .scheduler import (
    DeterministicScheduler,
    ExplorationDeadlock,
    ExplorationError,
    ParkedActor,
)
from .workloads import WORKLOADS, ExploreContext, SensorRegion, Workload

__all__ = [
    "ExploreResult",
    "ReplayResult",
    "RunRecord",
    "TAMPERS",
    "execute",
    "explore",
    "replay",
    "render_explore_report",
    "render_replay_report",
    "SCHEDULE_FORMAT",
    "ScheduleFile",
    "ScheduleStep",
    "load_schedule",
    "save_schedule",
    "schedule_digest",
    "DeterministicScheduler",
    "ExplorationDeadlock",
    "ExplorationError",
    "ParkedActor",
    "WORKLOADS",
    "ExploreContext",
    "SensorRegion",
    "Workload",
]
