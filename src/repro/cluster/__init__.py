"""repro.cluster — socket-connected multi-host virtual targets.

The cluster layer extends :mod:`repro.dist` from child processes to
**remote hosts**: a :class:`ClusterTarget` registers under a name like any
other virtual target — ``virtual_target_create_cluster("grid",
endpoints=["hostA:9001", "hostB:9001"], shards=2)`` — and the directive
layer (``virtual(name)``, scheduling clauses, ``timeout=``, backpressure
policies, ``wait_tag``) works on it unchanged; region bodies execute on
**cluster worker agents** (``python -m repro cluster-worker``) reached over
TCP, with the dist machinery (shippers, supervisor, heartbeats, restart
budgets, clock-synced trace merge) running over a transport abstraction
instead of pipes.

Module map:

* :mod:`~repro.cluster.transport` — framed, versioned message transports:
  the :class:`~repro.cluster.transport.Transport` interface, TCP
  length-prefixed frames, in-process loopback pairs, the hello/version
  handshake;
* :mod:`~repro.cluster.agent` — the remote worker agent (accept loop, task
  and control threads per connection) and
  :func:`~repro.cluster.agent.spawn_agent_process`;
* :mod:`~repro.cluster.target` — the :class:`ClusterTarget` itself:
  endpoint×shard lanes, least-loaded routing off the shared queue,
  reconnect budgets, shard failover, cross-host tag notifications.

See the "Cluster targets" section of ``docs/DISTRIBUTION.md``.
"""

from .agent import AgentHandle, ClusterAgent, spawn_agent_process
from .target import ClusterTarget
from .transport import (
    LoopbackTransport,
    TcpTransport,
    Transport,
    TransportListener,
    connect,
    expect_hello,
    listen,
    loopback_pair,
    parse_endpoint,
    send_hello,
)

__all__ = [
    "AgentHandle",
    "ClusterAgent",
    "ClusterTarget",
    "LoopbackTransport",
    "TcpTransport",
    "Transport",
    "TransportListener",
    "connect",
    "expect_hello",
    "listen",
    "loopback_pair",
    "parse_endpoint",
    "send_hello",
    "spawn_agent_process",
]
