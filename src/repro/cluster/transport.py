"""Framed, versioned message transports for cluster targets.

``repro.dist`` ships messages over ``multiprocessing.Pipe`` connections; a
cluster target ships the *same* messages (:mod:`repro.dist.wire`) to worker
agents on other hosts.  This module defines the transport abstraction both
ride on, and the two concrete implementations the cluster layer uses:

* :class:`Transport` — the structural interface: ``send(msg)`` /
  ``recv()`` / ``poll(timeout)`` / ``close()`` plus the liveness flags
  ``closed`` and ``eof``.  It is deliberately the subset of
  ``multiprocessing.Connection`` the dist machinery already consumes, so
  the shipper/supervisor/heartbeat/restart logic generalises over pipes,
  loopback pairs and sockets without caring which it holds.
* :class:`LoopbackTransport` — an in-process pair
  (:func:`loopback_pair`) backed by deques and condition variables.
  Messages still make a full pickle round trip, so tests exercise the real
  serialization constraints without opening sockets.
* :class:`TcpTransport` — a TCP socket carrying length-prefixed frames:
  a 4-byte big-endian length header followed by the pickled message.
  ``TCP_NODELAY`` is set (one small frame per dispatch hop; Nagle would
  serialize the protocol's ping-pongs at 40 ms each).

Failure mapping mirrors pipes so existing error handling transfers: a send
on a closed/torn transport raises :class:`OSError`, a recv past the peer's
close raises :class:`EOFError`, and ``poll`` returns True when a recv
would not block (including when it would raise ``EOFError`` — the caller
finds the tear immediately instead of sleeping on a corpse).

Every cluster connection opens with a version handshake: both ends send a
:class:`~repro.dist.wire.HelloMsg` carrying
:data:`~repro.dist.wire.PROTOCOL_VERSION` and validate the peer's with
:func:`~repro.dist.wire.check_protocol_version`, so a client and a worker
agent started from different checkouts fail with a structured
:class:`~repro.core.errors.ProtocolVersionError` instead of misparsing
frames (:func:`send_hello` / :func:`expect_hello`).
"""

from __future__ import annotations

import collections
import os
import pickle
import select
import socket
import struct
import threading
from typing import Any, Protocol, runtime_checkable

from ..core.errors import RuntimeStateError
from ..dist import wire

__all__ = [
    "Transport",
    "LoopbackTransport",
    "TcpTransport",
    "TransportListener",
    "loopback_pair",
    "connect",
    "listen",
    "send_hello",
    "expect_hello",
    "parse_endpoint",
]

#: Length-prefix header: frame payload size as an unsigned 32-bit big-endian.
_HEADER = struct.Struct(">I")

#: Upper bound on a single frame (64 MiB).  A header above it means the
#: stream desynchronized (or a hostile peer); tearing the connection beats
#: allocating garbage.
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Budget for the peer's half of the hello handshake.
HELLO_TIMEOUT = 10.0


@runtime_checkable
class Transport(Protocol):
    """Structural interface of one message channel end.

    ``multiprocessing.Connection`` satisfies ``send``/``recv``/``poll``/
    ``close`` natively — this protocol just names the contract the dist
    machinery consumes, so pipe, loopback and TCP ends interchange.
    """

    def send(self, msg: Any) -> None: ...  # OSError when closed/torn

    def recv(self) -> Any: ...             # EOFError past the peer's close

    def poll(self, timeout: float = 0.0) -> bool: ...

    def close(self) -> None: ...

    @property
    def closed(self) -> bool: ...          # this end was close()d

    @property
    def eof(self) -> bool: ...             # the peer's end is known gone


# ------------------------------------------------------------------ loopback


class _LoopbackChannel:
    """One direction of a loopback pair: bounded only by memory."""

    def __init__(self) -> None:
        self.cond = threading.Condition()
        self.items: collections.deque[bytes] = collections.deque()
        self.closed = False

    def put(self, blob: bytes) -> None:
        with self.cond:
            if self.closed:
                raise OSError("loopback transport is closed")
            self.items.append(blob)
            self.cond.notify_all()

    def close(self) -> None:
        with self.cond:
            self.closed = True
            self.cond.notify_all()


class LoopbackTransport:
    """In-process :class:`Transport` end; create pairs with
    :func:`loopback_pair`.

    Messages pickle on send and unpickle on recv — the full serialization
    constraint of the real wire, minus the socket — so a payload that
    cannot cross a TCP transport cannot sneak through tests either.
    """

    def __init__(self, tx: _LoopbackChannel, rx: _LoopbackChannel, label: str) -> None:
        self._tx = tx
        self._rx = rx
        self._label = label
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def eof(self) -> bool:
        with self._rx.cond:
            return self._rx.closed and not self._rx.items

    def send(self, msg: Any) -> None:
        if self._closed:
            raise OSError("transport is closed")
        self._tx.put(pickle.dumps(msg))

    def recv(self) -> Any:
        with self._rx.cond:
            while not self._rx.items:
                if self._rx.closed or self._closed:
                    raise EOFError("loopback peer closed")
                self._rx.cond.wait()
            blob = self._rx.items.popleft()
        return pickle.loads(blob)

    def poll(self, timeout: float = 0.0) -> bool:
        with self._rx.cond:
            if self._rx.items or self._rx.closed or self._closed:
                return True
            if timeout <= 0:
                return False
            self._rx.cond.wait(timeout)
            return bool(self._rx.items) or self._rx.closed or self._closed

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Close both directions: the peer's recv drains then EOFs, and its
        # sends fail fast instead of queueing into the void.
        self._tx.close()
        self._rx.close()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<LoopbackTransport {self._label} closed={self._closed}>"


def loopback_pair() -> tuple[LoopbackTransport, LoopbackTransport]:
    """Two connected in-process transport ends (client-ish, server-ish)."""
    a2b = _LoopbackChannel()
    b2a = _LoopbackChannel()
    return (
        LoopbackTransport(a2b, b2a, "a"),
        LoopbackTransport(b2a, a2b, "b"),
    )


# ----------------------------------------------------------------------- TCP


class TcpTransport:
    """A :class:`Transport` end over a connected TCP socket.

    Sends are serialized under a lock (frames must not interleave); recv
    and poll are intended for one consuming thread, matching how the dist
    machinery already partitions pipe ends (one shipper or one control
    loop per end).
    """

    def __init__(self, sock: socket.socket) -> None:
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.setblocking(True)
        self._sock: socket.socket | None = sock
        self._send_lock = threading.Lock()
        self._buf = bytearray()
        self._eof = False
        self._closed = False
        try:
            self._peer = "%s:%d" % sock.getpeername()[:2]
        except OSError:  # pragma: no cover - already torn
            self._peer = "?"

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def eof(self) -> bool:
        return self._eof

    @property
    def peer(self) -> str:
        """``host:port`` of the remote end (diagnostics)."""
        return self._peer

    # -------------------------------------------------------------- framing

    def _frame_size(self) -> int | None:
        """Payload length of the buffered frame, or None if incomplete."""
        if len(self._buf) < _HEADER.size:
            return None
        (size,) = _HEADER.unpack_from(self._buf)
        if size > MAX_FRAME_BYTES:
            raise OSError(
                f"frame of {size} bytes from {self._peer} exceeds "
                f"MAX_FRAME_BYTES={MAX_FRAME_BYTES}; stream desynchronized"
            )
        if len(self._buf) < _HEADER.size + size:
            return None
        return size

    def _pop_frame(self) -> bytes:
        size = self._frame_size()
        assert size is not None
        frame = bytes(self._buf[_HEADER.size:_HEADER.size + size])
        del self._buf[:_HEADER.size + size]
        return frame

    def send(self, msg: Any) -> None:
        sock = self._sock
        if sock is None:
            raise OSError("transport is closed")
        blob = pickle.dumps(msg)
        with self._send_lock:
            # sendall under the lock: a ping racing a cancel must not
            # interleave header and payload bytes on the stream.
            sock.sendall(_HEADER.pack(len(blob)) + blob)

    def recv(self) -> Any:
        while True:
            if self._frame_size() is not None:
                return pickle.loads(self._pop_frame())
            sock = self._sock
            if sock is None:
                raise EOFError("transport is closed")
            if self._eof:
                raise EOFError(f"peer {self._peer} closed the connection")
            chunk = sock.recv(1 << 16)
            if not chunk:
                self._eof = True
                raise EOFError(f"peer {self._peer} closed the connection")
            self._buf += chunk

    def poll(self, timeout: float = 0.0) -> bool:
        """True when :meth:`recv` would not block (data *or* a tear)."""
        import time as _time

        deadline = None if timeout is None else _time.monotonic() + timeout
        while True:
            if self._frame_size() is not None or self._eof:
                return True
            sock = self._sock
            if sock is None:
                return True  # recv() raises EOFError immediately
            remaining = None if deadline is None else deadline - _time.monotonic()
            if remaining is not None and remaining < 0:
                return False
            try:
                readable, _, _ = select.select([sock], [], [], remaining)
            except (OSError, ValueError):
                # Socket closed under us (lane reclaim): recv() will EOF.
                self._eof = True
                return True
            if not readable:
                return False
            try:
                chunk = sock.recv(1 << 16)
            except (OSError, ValueError):
                self._eof = True
                return True
            if not chunk:
                self._eof = True
                return True
            self._buf += chunk

    def close(self) -> None:
        sock, self._sock = self._sock, None
        self._closed = True
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover - double close
                pass

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TcpTransport peer={self._peer} closed={self._closed}>"


class TransportListener:
    """A listening TCP socket that accepts :class:`TcpTransport` ends."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(64)
        self.host = host
        self.port = self._sock.getsockname()[1]
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    def accept(self, timeout: float | None = None) -> TcpTransport | None:
        """Accept one connection; None on timeout, OSError once closed."""
        if self._closed:
            raise OSError("listener is closed")
        self._sock.settimeout(timeout)
        try:
            conn, _addr = self._sock.accept()
        except socket.timeout:
            return None
        except OSError:
            if self._closed:
                raise OSError("listener is closed") from None
            raise
        return TcpTransport(conn)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass


def listen(host: str = "127.0.0.1", port: int = 0) -> TransportListener:
    """Open a listener; ``port=0`` lets the OS pick (tests, CI)."""
    return TransportListener(host, port)


def connect(host: str, port: int, *, timeout: float = 10.0) -> TcpTransport:
    """Connect to a cluster worker agent; raises OSError on refusal."""
    sock = socket.create_connection((host, port), timeout=timeout)
    sock.settimeout(None)
    return TcpTransport(sock)


def parse_endpoint(spec: "str | tuple[str, int]") -> tuple[str, int]:
    """``"host:port"`` (or an already-split tuple) → ``(host, port)``."""
    if isinstance(spec, tuple):
        host, port = spec
        return str(host), int(port)
    host, sep, port_text = spec.rpartition(":")
    if not sep or not host:
        raise ValueError(f"endpoint {spec!r} is not of the form host:port")
    try:
        return host, int(port_text)
    except ValueError:
        raise ValueError(f"endpoint {spec!r} has a non-numeric port") from None


# ------------------------------------------------------------ version hello


def send_hello(
    transport: Transport,
    role: str,
    *,
    target_name: str = "",
    slot: int = -1,
    meta: dict | None = None,
) -> None:
    """Send this end's versioned hello (first frame on the connection)."""
    payload = {"pid": os.getpid()}
    if meta:
        payload.update(meta)
    transport.send(
        wire.HelloMsg(wire.PROTOCOL_VERSION, role, target_name, slot, payload)
    )


def expect_hello(
    transport: Transport,
    *,
    timeout: float = HELLO_TIMEOUT,
    peer: str | None = None,
) -> wire.HelloMsg:
    """Read and validate the peer's hello; the version gate of the protocol.

    Raises :class:`~repro.core.errors.ProtocolVersionError` on a version
    mismatch and :class:`~repro.core.errors.RuntimeStateError` when the
    peer sent something other than a hello (or nothing within *timeout*) —
    both are structured verdicts, never a misparse further in.
    """
    if not transport.poll(timeout):
        raise RuntimeStateError(
            f"peer {peer or '?'} sent no hello within {timeout}s"
        )
    msg = transport.recv()
    if not isinstance(msg, wire.HelloMsg):
        raise RuntimeStateError(
            f"peer {peer or '?'} opened with {type(msg).__name__} instead of "
            "the hello frame; not a repro cluster endpoint?"
        )
    wire.check_protocol_version(msg.version, peer=peer)
    return msg
