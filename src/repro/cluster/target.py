"""`ClusterTarget`: a virtual target backed by socket-connected remote workers.

The multi-host counterpart of
:class:`~repro.dist.process_target.ProcessTarget` — same name-based
directive surface (``virtual(name)``, default/``nowait``/``name_as``+
``wait``/``await``, ``timeout=``), same bounded-queue backpressure, same
shutdown covenant — but the worker lanes are slots on **cluster worker
agents** (:mod:`repro.cluster.agent`), reached over TCP (or any
:class:`~repro.cluster.transport.Transport`) instead of pipes to child
processes.  That completes the arXiv:2207.05677 / 2205.10656 "remote
device" move: the same ``target`` program runs on threads, processes, or a
set of hosts, chosen per target name at configuration time.

Architecture (per target)::

    poster threads ──post()──▶ _TargetQueue (inherited: capacity, policies)
                                   │  (shared: pull = least-loaded routing)
                 ┌─────────────────┼──────────────────┐
        shipper thread 0   shipper thread 1    ...  (one per slot)
                 │ hello/SyncMsg/TaskMsg/ResultMsg over a TCP "task" channel
        agent A slot 0      agent B slot 0     ...  (repro.cluster.agent)
                 ▲ PingMsg/PongMsg + CancelMsg over a TCP "ctrl" channel
                 └──────────── Supervisor thread ─────┘

Slots interleave across endpoints (``shards`` lanes per endpoint, slot *i*
on endpoint ``i % len(endpoints)``), and all shippers pull from the one
shared queue, so routing is least-loaded by construction: a fast or idle
host's slots simply dequeue more regions, and round-robin falls out when
all hosts keep pace.  Every dist mechanism carries over verbatim because it
is written against the transport/slot interfaces, not ``multiprocessing``:

* the two-round clock handshake runs over the task channel at connect, so
  remote events merge onto the shared Chrome trace as ``<target>[w<i>]``
  tracks with per-lane offsets (:mod:`repro.dist.remote_obs`);
* the :class:`~repro.dist.supervisor.Supervisor` sweeps the same slot
  interface — heartbeats over the ctrl channel, idle-corpse reconnects,
  wedged-lane replacement;
* cooperative cancel (and ``timeout=``) forwards a
  :class:`~repro.dist.wire.CancelMsg`; a remote body that ignores it past
  ``cancel_grace`` has its *connection* torn — the lane is reclaimed and
  reconnected.  Unlike a process target we cannot kill the remote body
  itself (it lives in an agent we may not own); it runs to completion
  remotely unless it polls its cancel token, which the failure-semantics
  table in ``docs/DISTRIBUTION.md`` spells out;
* a connection that tears mid-region fails the waiter with
  :class:`~repro.core.errors.WorkerCrashedError` — never a hang — and the
  reconnect budget (``max_restarts`` per slot) decides whether the lane
  comes back.  When one endpoint dies, its slots burn their budgets and
  disable while the surviving endpoints' slots keep draining the shared
  queue: shard failover without any routing logic.

Cross-host ``wait_tag`` needs no new authority: tagged regions ship as
:class:`~repro.dist.wire.ClusterTaskMsg`, the result flows back through
:meth:`~repro.core.region.TargetRegion.fulfill`, and the
:class:`~repro.core.tags.TagRegistry` done-callback fires parent-side
exactly as for local targets.  The :class:`~repro.dist.wire.TagDoneMsg`
the agent sends at body completion is a *progress* signal (counted in
``stats["tag_notifications"]``, observable via :meth:`tag_progress`), not
the completion path.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Any, Callable, Sequence

from ..core.errors import (
    RuntimeStateError,
    SerializationError,
    TargetShutdownError,
    WorkerCrashedError,
)
from ..core.region import TargetRegion
from ..core.targets import _SHUTDOWN, _WAKEUP, VirtualTarget, _item_identity
from ..dist import wire
from ..dist.remote_obs import estimate_offset_ns, merge_worker_events, worker_track
from ..dist.supervisor import Supervisor
from ..obs import EventKind
from ..obs import recorder as _obs
from ..obs.events import now_ns
from . import transport as _transport

__all__ = ["ClusterTarget"]

_logger = logging.getLogger(__name__)

#: Poll tick of the result-wait loop (crash/cancel/stop reaction bound).
_POLL_TICK = 0.05


class _ClusterSlot:
    """One lane of a cluster target: two transports + accounting.

    Implements the same slot interface as
    :class:`~repro.dist.process_target._WorkerSlot` (it feeds the same
    :class:`~repro.dist.supervisor.Supervisor`), with the process replaced
    by a ``task``/``ctrl`` transport pair to one agent slot.
    """

    __slots__ = (
        "index", "host", "port", "lock", "ctrl_lock", "task", "ctrl",
        "pid", "clock_offset", "spawns", "disabled", "busy", "last_pong",
        "thread", "tag_sink",
    )

    def __init__(self, index: int, host: str, port: int) -> None:
        self.index = index
        self.host = host
        self.port = port
        self.lock = threading.RLock()
        self.ctrl_lock = threading.Lock()
        self.task: Any = None          # the "task" Transport, or None
        self.ctrl: Any = None          # the "ctrl" Transport, or None
        self.pid: int | None = None    # agent pid (from the clock handshake)
        self.clock_offset = 0
        self.spawns = 0                # total connect attempts
        self.disabled = False
        self.busy = False
        self.last_pong = 0.0
        self.thread: threading.Thread | None = None
        #: Target-level TagDoneMsg handler (set once at construction).
        self.tag_sink: Callable[[wire.TagDoneMsg], None] | None = None

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def restarts(self) -> int:
        """Reconnect attempts beyond the slot's first connect."""
        return max(0, self.spawns - 1)

    # --------------------------------------------- supervisor slot interface

    @property
    def connected(self) -> bool:
        return self.task is not None

    def is_alive(self) -> bool:
        """The lane is believed live: both channels open, no EOF seen.

        A remote tear is only *observed* on IO, so this also drives a quick
        zero-timeout poll on the ctrl channel — sufficient for the
        supervisor's idle-corpse sweep, while mid-region tears are caught
        by the shipper's result-wait loop.
        """
        task, ctrl = self.task, self.ctrl
        if task is None or ctrl is None:
            return False
        if task.closed or task.eof or ctrl.closed:
            return False
        if not ctrl.eof:
            try:
                ctrl.poll(0)  # latches eof if the peer vanished
            except (OSError, ValueError):
                return False
        return not ctrl.eof

    def exit_label(self) -> str:
        return f"connection to {self.endpoint} lost"

    def drain_control(self) -> None:
        """Absorb ctrl-channel traffic: pongs refresh liveness, tag-done
        notifications (if an agent ever routes them here) hit the sink."""
        ctrl = self.ctrl
        if ctrl is None:
            return
        try:
            while ctrl.poll(0) and not ctrl.eof:
                msg = ctrl.recv()
                if isinstance(msg, wire.PongMsg):
                    self.last_pong = time.monotonic()
                elif isinstance(msg, wire.TagDoneMsg) and self.tag_sink is not None:
                    self.tag_sink(msg)
        except (EOFError, OSError):
            pass  # torn: the liveness checks handle the corpse

    # ------------------------------------------------------------ ctrl sends

    def send_ping(self) -> None:
        with self.ctrl_lock:
            ctrl = self.ctrl
            if ctrl is None:
                return
            try:
                ctrl.send(wire.PingMsg(now_ns()))
            except (OSError, ValueError):
                pass  # dead lane: liveness checks will catch it

    def send_cancel(self, seq: int) -> None:
        with self.ctrl_lock:
            ctrl = self.ctrl
            if ctrl is None:
                return
            try:
                ctrl.send(wire.CancelMsg(seq))
            except (OSError, ValueError):
                pass

    # ------------------------------------------------------------- teardown

    def terminate(self) -> None:
        """Reclaim the lane by tearing both connections.

        The remote agent (if still alive) sees EOF and drops the slot's
        loops; a body already executing there runs to completion remotely
        unless it polls its cancel token — the honest semantics of killing
        a connection rather than a process.
        """
        self.close_transports()

    def close_transports(self) -> None:
        for tr in (self.task, self.ctrl):
            if tr is not None:
                try:
                    tr.close()
                except OSError:  # pragma: no cover - already torn
                    pass
        self.task = self.ctrl = None

    def reap(self) -> None:
        """Drop the dead lane's transports; exit codes do not exist here."""
        self.close_transports()
        self.busy = False
        return None


class ClusterTarget(VirtualTarget):
    """A worker virtual target whose pool members are remote agent slots.

    Created by ``virtual_target_create_cluster(tname, endpoints)`` /
    :meth:`PjRuntime.create_cluster`.  Parameters beyond the common target
    options:

    endpoints:
        ``"host:port"`` strings (or ``(host, port)`` tuples) of running
        cluster worker agents (``python -m repro cluster-worker``).
    shards:
        Lanes **per endpoint** — the pool is ``len(endpoints) * shards``
        slots, interleaved across endpoints.  All slots pull one shared
        queue, so dispatch is least-loaded across hosts by construction.
    max_restarts:
        Reconnect budget per slot; a slot that cannot (re)connect within it
        is disabled.  When every slot disables, the backlog is failed (the
        no-lost-work covenant).  Slots of a surviving endpoint are
        unaffected by a dead one — that is the shard-failover path.
    heartbeat_interval / heartbeat_misses:
        Supervisor probe cadence over the ctrl channel.
    cancel_grace:
        Seconds a remote body may ignore a forwarded cancellation before
        the lane is reclaimed (connections torn + reconnect); effectively
        the ``timeout=`` enforcement bound.
    connect_timeout:
        Budget per connection attempt (TCP connect + hello + clock probe 1).
    """

    kind = "cluster"
    supports_inline = False   # different host, let alone address space
    supports_pumping = False  # no parent thread is ever a member

    def __init__(
        self,
        name: str,
        endpoints: Sequence[str | tuple[str, int]],
        *,
        shards: int = 1,
        queue_capacity: int | None = None,
        rejection_policy: str = "block",
        max_restarts: int = 3,
        heartbeat_interval: float = 1.0,
        heartbeat_misses: int = 3,
        cancel_grace: float = 5.0,
        connect_timeout: float = 10.0,
    ) -> None:
        if not endpoints:
            raise ValueError("cluster target needs at least one endpoint")
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if cancel_grace <= 0:
            raise ValueError(f"cancel_grace must be > 0, got {cancel_grace}")
        super().__init__(
            name, queue_capacity=queue_capacity, rejection_policy=rejection_policy
        )
        parsed = [_transport.parse_endpoint(e) for e in endpoints]
        self.endpoints = [f"{h}:{p}" for h, p in parsed]
        self.shards = shards
        self.max_restarts = max_restarts
        self.cancel_grace = cancel_grace
        self.connect_timeout = connect_timeout
        self._hard_stop = threading.Event()
        with self._stats_lock:
            self._stats.update({
                "worker_crashes": 0,
                "worker_restarts": 0,
                "tag_notifications": 0,
            })
        # Interleave: slot i lives on endpoint i % len(endpoints), so the
        # first len(endpoints) slots already span every host.
        total = len(parsed) * shards
        self._slots = []
        for i in range(total):
            host, port = parsed[i % len(parsed)]
            slot = _ClusterSlot(i, host, port)
            slot.tag_sink = self._on_tag_done
            self._slots.append(slot)
        self._tag_lock = threading.Lock()
        self._tag_counts: dict[str, int] = {}
        #: Optional hook fired on every remote tag-done notification with
        #: ``(tag, seq, outcome)`` — progress wiring for dashboards/tests.
        self.on_tag_done: Callable[[str, int, str], None] | None = None
        self._supervisor = Supervisor(
            self, interval=heartbeat_interval, misses=heartbeat_misses
        )
        for slot in self._slots:
            slot.thread = threading.Thread(
                target=self._shipper_loop,
                args=(slot,),
                name=f"repro-cluster-{name}-ship-{slot.index}",
                daemon=True,
            )
            slot.thread.start()
        self._supervisor.start()

    # ------------------------------------------------------------ taxonomy

    @property
    def pool_size(self) -> int:
        return len(self._slots)

    @property
    def restart_count(self) -> int:
        return sum(slot.restarts for slot in self._slots)

    @property
    def connected_count(self) -> int:
        """Slots with a live lane right now — diagnostics."""
        return sum(1 for slot in self._slots if slot.is_alive())

    @property
    def worker_pids(self) -> list[int | None]:
        """Agent pid behind each slot (None while disconnected)."""
        return [slot.pid if slot.connected else None for slot in self._slots]

    def tag_progress(self) -> dict[str, int]:
        """Remote body-completion counts per tag (TagDoneMsg sightings)."""
        with self._tag_lock:
            return dict(self._tag_counts)

    def _describe_extra(self) -> str:
        return (
            f" endpoints={self.endpoints} shards={self.shards} "
            f"connected={self.connected_count}/{len(self._slots)}"
        )

    def process_one(self, timeout: float | None = None) -> bool:
        """Cluster targets cannot run queued regions in the calling thread —
        the queue feeds *remote* workers, and executing a region here would
        silently move it back onto this host."""
        raise RuntimeStateError(
            f"cluster target {self.name!r} cannot be pumped: its queue is "
            "drained by shipper threads feeding remote worker agents"
        )

    def drain(self) -> int:
        """See :meth:`process_one` — draining in the caller is not allowed."""
        raise RuntimeStateError(
            f"cluster target {self.name!r} cannot be drained in the calling "
            "thread; use shutdown(wait=True) to run the backlog down"
        )

    # ------------------------------------------------------------- lifecycle

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool; same covenant as :class:`ProcessTarget`.

        ``wait=True`` drains the backlog through the remote lanes, then
        stops each agent slot with a :class:`~repro.dist.wire.StopMsg` and
        closes the connections (the agent *process* keeps running — it is
        shared infrastructure other targets may be using).  ``wait=False``
        withdraws the backlog, cancels in-flight regions across the wire
        and tears the lanes.
        """
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        self._supervisor.stop()
        if not wait:
            self._hard_stop.set()
            self._queue.close()
            self._cancel_pending()
            for slot in self._slots:
                if slot.busy:
                    slot.send_cancel(-1)  # wakes the agent ctrl loop; benign
        for _ in self._slots:
            self._queue.put_internal(_SHUTDOWN)
        if wait:
            for slot in self._slots:
                if slot.thread is not None and slot.thread is not threading.current_thread():
                    slot.thread.join()
            self._supervisor.join()

    def _on_all_slots_disabled(self, cause: WorkerCrashedError) -> None:
        """Every lane exhausted its reconnect budget: fail the backlog."""
        if self._shutdown.is_set():
            return
        _logger.error(
            "cluster target %r lost all %d lanes (%d endpoint(s)) beyond "
            "their reconnect budgets; failing the backlog",
            self.name, len(self._slots), len(self.endpoints),
        )
        self._shutdown.set()
        self._supervisor.stop()
        self._queue.close()
        cancelled = 0
        for item in self._queue.drain_items():
            if item is _SHUTDOWN or item is _WAKEUP:
                continue
            if isinstance(item, TargetRegion):
                if item.cancel(cause):
                    cancelled += 1
                    self._bump("cancelled_on_shutdown")
        if cancelled:
            _logger.error(
                "cancelled %d queued region(s) on dead cluster target %r",
                cancelled, self.name,
            )

    # ------------------------------------------------------------ lane pool

    def _connect_slot(self, slot: _ClusterSlot) -> None:
        """Open one lane: task + ctrl connections, hello, clock handshake.

        Called under ``slot.lock``.  Raises on any failure (refused
        connect, version mismatch, handshake timeout); the caller owns
        reconnect accounting.
        """
        task = _transport.connect(slot.host, slot.port, timeout=self.connect_timeout)
        ctrl = None
        try:
            _transport.send_hello(
                task, "task", target_name=self.name, slot=slot.index
            )
            _transport.expect_hello(
                task, timeout=self.connect_timeout, peer=slot.endpoint
            )
            ctrl = _transport.connect(
                slot.host, slot.port, timeout=self.connect_timeout
            )
            _transport.send_hello(
                ctrl, "ctrl", target_name=self.name, slot=slot.index
            )
            _transport.expect_hello(
                ctrl, timeout=self.connect_timeout, peer=slot.endpoint
            )
            # Two-round clock handshake, identical to process workers:
            # round 1 absorbs connection/thread warm-up, round 2 measures a
            # quiet round trip and sets the offset — so this lane's events
            # land correctly on the merged trace.
            ack = None
            for probe, budget in ((1, self.connect_timeout), (2, 5.0)):
                t0 = now_ns()
                task.send(wire.SyncMsg(t0))
                if not task.poll(budget):
                    raise RuntimeStateError(
                        f"lane {slot.index} of cluster target {self.name!r} "
                        f"({slot.endpoint}) did not answer clock probe "
                        f"{probe} within {budget}s"
                    )
                ack = task.recv()
                t1 = now_ns()
                if not isinstance(ack, wire.SyncAck):
                    raise RuntimeStateError(
                        f"lane {slot.index} of cluster target {self.name!r} "
                        f"sent {type(ack).__name__} instead of the handshake ack"
                    )
        except BaseException:
            task.close()
            if ctrl is not None:
                ctrl.close()
            raise
        slot.task = task
        slot.ctrl = ctrl
        slot.pid = ack.pid
        slot.clock_offset = estimate_offset_ns(t0, t1, ack.worker_ns)
        slot.last_pong = time.monotonic()
        self._emit_worker_event(slot, EventKind.WORKER_CONNECT, arg=slot.pid)

    def _ensure_worker(self, slot: _ClusterSlot) -> bool:
        """Make sure the slot has a live lane; (re)connect within budget."""
        disabled_now = False
        with slot.lock:
            while True:
                if slot.disabled:
                    return False
                if self._hard_stop.is_set():
                    return False
                if slot.connected and slot.is_alive():
                    return True
                if slot.connected:
                    # Lane died between regions (idle tear found by us, not
                    # the supervisor) — account and clean up.
                    slot.reap()
                    self._bump("worker_crashes")
                    self._emit_worker_event(
                        slot, EventKind.WORKER_DISCONNECT, arg="connection lost"
                    )
                if slot.spawns > self.max_restarts:
                    slot.disabled = True
                    disabled_now = True
                    break
                slot.spawns += 1
                if slot.spawns > 1:
                    self._bump("worker_restarts")
                try:
                    self._connect_slot(slot)
                except Exception as exc:  # noqa: BLE001 - connect is best-effort
                    _logger.warning(
                        "connect attempt %d for lane %d of cluster target %r "
                        "(%s) failed: %r",
                        slot.spawns, slot.index, self.name, slot.endpoint, exc,
                    )
                    continue
                return True
        if disabled_now:
            _logger.error(
                "lane %d of cluster target %r (%s) exceeded its reconnect "
                "budget (%d); disabling",
                slot.index, self.name, slot.endpoint, self.max_restarts,
            )
            if all(s.disabled for s in self._slots):
                self._on_all_slots_disabled(
                    WorkerCrashedError(
                        self.name, slot.index,
                        detail=f"all {len(self._slots)} cluster lanes across "
                               f"{len(self.endpoints)} endpoint(s) exceeded "
                               f"max_restarts={self.max_restarts}",
                    )
                )
        return False

    def _respawn_slot(self, slot: _ClusterSlot) -> None:
        """Supervisor entry point: replace a dead/wedged idle lane."""
        self._ensure_worker(slot)

    def _emit_worker_event(
        self, slot: _ClusterSlot, kind: EventKind, arg: object = None
    ) -> None:
        session = _obs.session()
        if session.enabled:
            session.emit(
                kind, target=worker_track(self.name, slot.index),
                name=f"worker {slot.index} ({slot.endpoint})", arg=arg,
            )

    def _on_tag_done(self, msg: wire.TagDoneMsg) -> None:
        self._bump("tag_notifications")
        with self._tag_lock:
            self._tag_counts[msg.tag] = self._tag_counts.get(msg.tag, 0) + 1
        hook = self.on_tag_done
        if hook is not None:
            try:
                hook(msg.tag, msg.seq, msg.outcome)
            except Exception:  # noqa: BLE001 - observer must not break shipping
                _logger.exception("on_tag_done hook failed for tag %r", msg.tag)

    # -------------------------------------------------------------- shipping

    def _shipper_loop(self, slot: _ClusterSlot) -> None:
        try:
            while True:
                if not self._ensure_worker(slot):
                    return
                item = self._queue.get()
                if item is _SHUTDOWN:
                    return
                if item is _WAKEUP:
                    continue
                self._execute_remote(slot, item)
        finally:
            self._retire_slot(slot)

    def _retire_slot(self, slot: _ClusterSlot) -> None:
        """Stop the slot's agent lane on shipper exit (drain or hard stop)."""
        with slot.lock:
            if not slot.connected:
                return
            if not self._hard_stop.is_set():
                # Graceful stop: drain sentinel on both channels so the
                # agent's loops exit instead of seeing an abrupt EOF.
                try:
                    slot.task.send(wire.StopMsg())
                except (OSError, ValueError):
                    pass
                with slot.ctrl_lock:
                    try:
                        slot.ctrl.send(wire.StopMsg())
                    except (OSError, ValueError):
                        pass
            slot.reap()
            self._emit_worker_event(slot, EventKind.WORKER_DISCONNECT, arg="stop")

    def _wrap_item(self, item: TargetRegion | Callable[[], Any]) -> TargetRegion:
        if isinstance(item, TargetRegion):
            return item
        _rid, label = _item_identity(item)
        return TargetRegion(item, name=label)

    def _execute_remote(self, slot: _ClusterSlot, item: Any) -> None:
        session = _obs.session()
        region = self._wrap_item(item)
        if session.enabled:
            session.emit(
                EventKind.DEQUEUE, target=self.name, region=region.seq,
                name=region.label,
            )
            self._trace_depth(session)
        if region.done:
            return  # withdrawn (cancelled) while queued: nothing to ship
        try:
            blob = wire.dumps(
                (region.body, region.args, region.kwargs),
                what=f"payload of region {region.name!r}",
            )
        except SerializationError as exc:
            region.fulfill(exception=exc)
            self._log_plain_failure(item, region)
            return
        if not region.mark_running():
            return  # cancelled between dequeue and ship
        with slot.lock:
            if not slot.is_alive():
                self._handle_worker_failure(slot, region, detail="lane died before dispatch")
                return
            task = slot.task
            slot.busy = True
        try:
            try:
                task.send(
                    wire.ClusterTaskMsg(
                        region.seq, region.name, region.source, blob,
                        session.enabled, region.tag,
                    )
                )
            except (OSError, ValueError) as exc:
                self._handle_worker_failure(
                    slot, region, detail=f"task send failed: {exc!r}"
                )
                return
            self._await_result(slot, region)
        finally:
            with slot.lock:
                slot.busy = False
            self._log_plain_failure(item, region)

    def _await_result(self, slot: _ClusterSlot, region: TargetRegion) -> None:
        """Wait for the remote verdict while watching for tear/cancel/stop."""
        task = slot.task
        cancel_sent_at: float | None = None
        while True:
            try:
                if task.poll(_POLL_TICK):
                    msg = task.recv()
                    if isinstance(msg, wire.ResultMsg) and msg.seq == region.seq:
                        self._deliver(slot, region, msg)
                        return
                    if isinstance(msg, wire.TagDoneMsg):
                        self._on_tag_done(msg)
                    continue  # stale or unknown: keep waiting for ours
            except (EOFError, OSError):
                self._handle_worker_failure(
                    slot, region, detail="connection closed mid-region"
                )
                return
            if self._hard_stop.is_set():
                # shutdown(wait=False): fail the in-flight region fast.
                slot.send_cancel(region.seq)
                slot.terminate()
                region.fulfill(exception=TargetShutdownError(self.name))
                with slot.lock:
                    slot.reap()
                return
            if not slot.is_alive():
                self._handle_worker_failure(slot, region)
                return
            if region.cancel_token.cancelled:
                now = time.monotonic()
                if cancel_sent_at is None:
                    # Parent-side cancellation (deadline watchdog, explicit
                    # request): forward so the *remote* token — the one the
                    # body polls — flips too.
                    slot.send_cancel(region.seq)
                    cancel_sent_at = now
                elif now - cancel_sent_at > self.cancel_grace:
                    # The body ignored cooperative cancellation; reclaim the
                    # lane by tearing the connections.  The next iteration
                    # takes the crash path; note the remote body itself may
                    # run to completion on the agent — we own the lane, not
                    # the remote process.
                    _logger.warning(
                        "lane %d of cluster target %r ignored cancellation "
                        "of region %r for %.1fs; reclaiming the lane",
                        slot.index, self.name, region.name, self.cancel_grace,
                    )
                    slot.terminate()

    def _deliver(self, slot: _ClusterSlot, region: TargetRegion, msg: wire.ResultMsg) -> None:
        session = _obs.session()
        if session.enabled and msg.events:
            merge_worker_events(
                session, msg.events,
                offset_ns=slot.clock_offset,
                track=worker_track(self.name, slot.index),
                thread=f"{slot.endpoint} pid {slot.pid}",
            )
        if msg.ok:
            try:
                value = wire.loads(msg.blob, what=f"result of region {region.name!r}")
            except SerializationError as exc:
                region.fulfill(exception=exc)
                return
            region.fulfill(result=value)
        else:
            region.fulfill(
                exception=wire.unpack_exception(msg.exc_blob, msg.exc_text, msg.exc_tb)
            )

    def _handle_worker_failure(
        self, slot: _ClusterSlot, region: TargetRegion, detail: str | None = None
    ) -> None:
        """A lane died with *region* in flight: fail the waiter, account."""
        with slot.lock:
            slot.reap()
            self._bump("worker_crashes")
            self._emit_worker_event(
                slot, EventKind.WORKER_DISCONNECT,
                arg=detail or "connection lost",
            )
        if self._hard_stop.is_set():
            exc: Exception = TargetShutdownError(self.name)
        else:
            exc = WorkerCrashedError(
                self.name, slot.index,
                pid=slot.pid,
                region_name=region.name,
                detail=detail or f"connection to {slot.endpoint} lost",
            )
        region.fulfill(exception=exc)
        _logger.error(
            "lane %d of cluster target %r (%s, pid %s) failed%s running "
            "region %r",
            slot.index, self.name, slot.endpoint, slot.pid,
            f" [{detail}]" if detail else "", region.name,
        )

    def _log_plain_failure(self, item: Any, region: TargetRegion) -> None:
        """Plain callables have no waiter; surface their failures in the log."""
        if isinstance(item, TargetRegion) or region.exception is None:
            return
        _logger.error(
            "unhandled exception in %r posted to %s: %r",
            item, self.name, region.exception,
        )
