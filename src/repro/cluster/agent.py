"""The remote end of a cluster target: a socket-serving worker agent.

``python -m repro cluster-worker --listen HOST:PORT`` runs a
:class:`ClusterAgent` — the cluster counterpart of
:func:`repro.dist.worker.worker_main`, with the ``multiprocessing`` pipes
replaced by accepted TCP connections.  One agent process hosts any number
of worker *slots*: a parent-side :class:`~repro.cluster.target.ClusterTarget`
opens **two** connections per slot (a ``task`` channel and a ``ctrl``
channel, mirroring the two pipes of a process target) and the agent pairs
them by the ``(target_name, slot)`` identity carried in the hello frames.

Per connection, after the version handshake
(:func:`~repro.cluster.transport.expect_hello` — a checkout mismatch dies
there with :class:`~repro.core.errors.ProtocolVersionError`, never inside
message dispatch):

* a ``task`` connection gets a thread running the worker task loop —
  answer :class:`~repro.dist.wire.SyncMsg` clock probes, execute
  :class:`~repro.dist.wire.TaskMsg`/:class:`~repro.dist.wire.ClusterTaskMsg`
  via the *same* :func:`repro.dist.worker._run_task` a process worker uses
  (regions run as real ``TargetRegion`` instances with working cancel
  tokens), ship :class:`~repro.dist.wire.ResultMsg` back — with a
  :class:`~repro.dist.wire.TagDoneMsg` first when the task carries a tag;
* a ``ctrl`` connection gets a thread answering heartbeat pings and
  applying cooperative cancellation to the slot's currently executing
  region, exactly like a process worker's control thread.

Because slots are threads in one agent process, an agent is a *locality*
unit, not an isolation unit — one agent dying takes all its slots with it,
which is precisely the failure the parent-side supervisor/restart budget
machinery (and ``repro check --cluster``) exercises.

:func:`spawn_agent_process` launches an agent as a subprocess on a
kernel-assigned port and parses the announce line — the shared bring-up
path of tests, the check harness and the benchmarks.
"""

from __future__ import annotations

import collections
import logging
import os
import re
import subprocess
import sys
import threading
from typing import Any

from ..core.errors import ProtocolVersionError, RuntimeStateError
from ..dist import wire
from ..dist.worker import WorkerConfig, _Current, _run_task
from ..obs.events import now_ns
from . import transport as _transport

__all__ = ["ClusterAgent", "AgentHandle", "spawn_agent_process", "announce_line"]

_logger = logging.getLogger(__name__)

#: Printed (flushed) by the CLI once the agent listens; parents parse the
#: port out of it, so the format is part of the tooling contract.
_ANNOUNCE_RE = re.compile(r"listening on ([^\s:]+):(\d+)")


def announce_line(host: str, port: int) -> str:
    """The one-line banner a freshly started agent prints."""
    return (
        f"repro cluster-worker listening on {host}:{port} "
        f"(pid {os.getpid()}, protocol {wire.PROTOCOL_VERSION})"
    )


class ClusterAgent:
    """Accepts task/ctrl connections and serves worker slots over them.

    ``start()`` binds the listener (``port=0`` → kernel-assigned, see
    :attr:`port`) and runs the accept loop on a daemon thread, so tests and
    benchmarks can embed an in-process agent; the CLI calls
    :meth:`serve_forever` instead, which blocks until :meth:`stop`.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_slots: int | None = None,
    ) -> None:
        if max_slots is not None and max_slots < 1:
            raise ValueError(f"max_slots must be >= 1, got {max_slots}")
        self._host = host
        self._requested_port = port
        self.max_slots = max_slots
        self._listener: _transport.TransportListener | None = None
        self._accept_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._currents: dict[tuple[str, int], _Current] = {}
        self._transports: list[Any] = []
        self._threads: list[threading.Thread] = []
        self.connections_served = 0
        self.tasks_executed = 0

    # ------------------------------------------------------------- lifecycle

    @property
    def port(self) -> int:
        if self._listener is None:
            raise RuntimeStateError("cluster agent is not started")
        return self._listener.port

    @property
    def host(self) -> str:
        return self._host

    @property
    def running(self) -> bool:
        return self._listener is not None and not self._stop.is_set()

    def start(self) -> "ClusterAgent":
        if self._listener is not None:
            raise RuntimeStateError("cluster agent is already started")
        self._listener = _transport.listen(self._host, self._requested_port)
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"repro-cluster-agent-{self._listener.port}",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking variant for the CLI: start (if needed) and wait."""
        if self._listener is None:
            self.start()
        self._stop.wait()

    def stop(self, *, join_timeout: float = 5.0) -> None:
        """Close the listener and every live connection; join threads."""
        self._stop.set()
        if self._listener is not None:
            self._listener.close()
        with self._lock:
            transports = list(self._transports)
        for tr in transports:
            try:
                tr.close()
            except OSError:  # pragma: no cover - already torn
                pass
        if self._accept_thread is not None and self._accept_thread.is_alive():
            self._accept_thread.join(join_timeout)
        with self._lock:
            threads = list(self._threads)
        for th in threads:
            if th.is_alive() and th is not threading.current_thread():
                th.join(join_timeout)

    def __enter__(self) -> "ClusterAgent":
        return self.start() if self._listener is None else self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------ accepting

    def _accept_loop(self) -> None:
        assert self._listener is not None
        while not self._stop.is_set():
            try:
                tr = self._listener.accept(timeout=0.5)
            except OSError:
                return  # listener closed: shutting down
            if tr is None:
                continue
            with self._lock:
                self._transports.append(tr)
            th = threading.Thread(
                target=self._serve_connection,
                args=(tr,),
                name=f"repro-cluster-conn-{self.connections_served}",
                daemon=True,
            )
            with self._lock:
                self._threads.append(th)
                self.connections_served += 1
            th.start()

    def _serve_connection(self, tr: Any) -> None:
        try:
            try:
                hello = _transport.expect_hello(tr, peer=getattr(tr, "peer", None))
            except ProtocolVersionError as exc:
                # Reply with *our* hello before closing so the mismatched
                # client raises the same structured error on its side.
                _logger.warning("rejecting cluster connection: %s", exc)
                try:
                    _transport.send_hello(tr, "agent")
                except OSError:
                    pass
                return
            except (RuntimeStateError, EOFError, OSError) as exc:
                _logger.warning("malformed cluster handshake: %r", exc)
                return
            if hello.role == "task" and self.max_slots is not None:
                with self._lock:
                    task_count = sum(
                        1 for th in self._threads
                        if th.is_alive() and th.name.startswith("repro-cluster-task")
                    )
                if task_count >= self.max_slots:
                    _logger.warning(
                        "refusing task connection for %r slot %d: agent is "
                        "capped at %d slots", hello.target_name, hello.slot,
                        self.max_slots,
                    )
                    return
            try:
                _transport.send_hello(
                    tr, "agent", target_name=hello.target_name, slot=hello.slot
                )
            except OSError:
                return
            current = self._current_for(hello.target_name, hello.slot)
            threading.current_thread().name = (
                f"repro-cluster-{hello.role}-{hello.target_name}-{hello.slot}"
            )
            if hello.role == "task":
                self._task_loop(tr, hello, current)
            elif hello.role == "ctrl":
                self._ctrl_loop(tr, current)
            else:
                _logger.warning("unknown connection role %r; closing", hello.role)
        finally:
            try:
                tr.close()
            except OSError:  # pragma: no cover
                pass
            with self._lock:
                if tr in self._transports:
                    self._transports.remove(tr)

    def _current_for(self, target_name: str, slot: int) -> _Current:
        # task and ctrl connections of one lane meet here: the ctrl loop
        # cancels whatever region the task loop registered.
        with self._lock:
            return self._currents.setdefault((target_name, slot), _Current())

    # ----------------------------------------------------------- task / ctrl

    def _task_loop(self, tr: Any, hello: wire.HelloMsg, current: _Current) -> None:
        """The socket twin of ``worker_main``'s main loop."""
        config = WorkerConfig(hello.target_name, hello.slot)
        while not self._stop.is_set():
            try:
                msg = tr.recv()
            except (EOFError, OSError):
                return  # parent went away (or reclaimed the lane)
            if isinstance(msg, wire.SyncMsg):
                try:
                    tr.send(wire.SyncAck(now_ns(), os.getpid()))
                except (OSError, ValueError):
                    return
                continue
            if isinstance(msg, wire.StopMsg):
                return
            if not isinstance(msg, (wire.TaskMsg, wire.ClusterTaskMsg)):
                continue  # unknown message from a newer parent: skip, stay alive
            tag = getattr(msg, "tag", None)
            notify = None
            if tag is not None:
                def notify(region, _seq=msg.seq, _tag=tag):
                    outcome = (
                        "failed" if region.exception is not None else "completed"
                    )
                    try:
                        tr.send(wire.TagDoneMsg(_seq, _tag, outcome))
                    except (OSError, ValueError):
                        pass  # the ResultMsg send below will surface the tear
            result = _run_task(msg, config, current, on_body_done=notify)
            with self._lock:
                self.tasks_executed += 1
            try:
                tr.send(result)
            except (OSError, ValueError, EOFError):
                return  # parent tore the connection mid-result

    def _ctrl_loop(self, tr: Any, current: _Current) -> None:
        """The socket twin of ``worker._control_loop``."""
        while not self._stop.is_set():
            try:
                msg = tr.recv()
            except (EOFError, OSError):
                return
            if isinstance(msg, wire.PingMsg):
                try:
                    tr.send(wire.PongMsg(msg.sent_ns, os.getpid()))
                except (OSError, ValueError):
                    return
            elif isinstance(msg, wire.CancelMsg):
                current.cancel(msg.seq)
            elif isinstance(msg, wire.StopMsg):
                return


# ------------------------------------------------------------- subprocess


class AgentHandle:
    """A spawned agent subprocess: endpoint + lifecycle control.

    ``endpoint`` is the ``host:port`` string to hand to
    ``virtual_target_create_cluster``; :meth:`terminate` is the fault
    injection of choice (kills every slot the agent hosts at once).
    """

    def __init__(self, process: subprocess.Popen, host: str, port: int) -> None:
        self.process = process
        self.host = host
        self.port = port
        self.output: collections.deque[str] = collections.deque(maxlen=200)
        self._drain = threading.Thread(
            target=self._drain_output, name=f"repro-agent-drain-{port}", daemon=True
        )
        self._drain.start()

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def endpoint(self) -> str:
        return f"{self.host}:{self.port}"

    def alive(self) -> bool:
        return self.process.poll() is None

    def terminate(self) -> None:
        """SIGTERM the agent process (all its slots die with it)."""
        if self.alive():
            self.process.terminate()

    def kill(self) -> None:
        if self.alive():
            self.process.kill()

    def wait(self, timeout: float | None = 10.0) -> int | None:
        try:
            return self.process.wait(timeout)
        except subprocess.TimeoutExpired:
            return None

    def close(self, timeout: float = 10.0) -> None:
        """Terminate (escalating to kill) and reap; always safe to call."""
        self.terminate()
        if self.wait(timeout) is None:  # pragma: no cover - stuck agent
            self.kill()
            self.wait(timeout)
        if self.process.stdout is not None:
            try:
                self.process.stdout.close()
            except OSError:  # pragma: no cover
                pass

    def __enter__(self) -> "AgentHandle":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def _drain_output(self) -> None:
        # Keep consuming stdout so the agent never blocks on a full pipe;
        # the bounded tail stays available for post-mortems.
        stream = self.process.stdout
        if stream is None:
            return
        try:
            for line in stream:
                self.output.append(line.rstrip("\n"))
        except (OSError, ValueError):
            pass


def spawn_agent_process(
    host: str = "127.0.0.1",
    *,
    startup_timeout: float = 30.0,
    max_slots: int | None = None,
) -> AgentHandle:
    """Start ``python -m repro cluster-worker`` on a kernel-assigned port.

    Blocks until the agent prints its announce line (parsing the port out
    of it) or *startup_timeout* elapses.  The child inherits this process's
    environment plus a ``PYTHONPATH`` entry for the directory this ``repro``
    package was imported from, so source checkouts work without installs.
    """
    import repro as _repro_pkg

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(_repro_pkg.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = (
        pkg_root + (os.pathsep + existing if existing else "")
    )
    cmd = [sys.executable, "-m", "repro", "cluster-worker", "--listen", f"{host}:0"]
    if max_slots is not None:
        cmd += ["--slots", str(max_slots)]
    process = subprocess.Popen(
        cmd,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    assert process.stdout is not None
    line = ""
    announced = threading.Event()

    def read_announce() -> None:
        nonlocal line
        line = process.stdout.readline()
        announced.set()

    reader = threading.Thread(target=read_announce, daemon=True)
    reader.start()
    if not announced.wait(startup_timeout) or not line:
        process.terminate()
        try:
            process.wait(5.0)
        except subprocess.TimeoutExpired:  # pragma: no cover
            process.kill()
        raise RuntimeStateError(
            f"cluster-worker agent did not announce within {startup_timeout}s"
        )
    match = _ANNOUNCE_RE.search(line)
    if match is None:
        process.terminate()
        process.wait(5.0)
        raise RuntimeStateError(
            f"cluster-worker agent printed {line!r} instead of an announce line"
        )
    return AgentHandle(process, match.group(1), int(match.group(2)))
