"""repro — reproduction of *Towards an Event-Driven Programming Model for
OpenMP* (Fan, Sinnen, Giacaman; ICPP 2016).

Subpackages
-----------
core
    The paper's contribution: virtual targets, scheduling clauses, Algorithm 1
    runtime, on real Python threads.
compiler
    Pyjama-style source-to-source compiler: rewrites ``#omp`` comment pragmas
    in Python functions into runtime calls.
openmp
    Classic fork-join OpenMP substrate (parallel regions, worksharing,
    reductions, synchronization) so the two models coexist as in the paper.
eventloop
    Swing-like event-driven substrate: event queue, EDT, SwingWorker and
    ExecutorService baselines, EDT-confined mock GUI widgets.
kernels
    Java Grande kernel ports: Crypt, Series, MonteCarlo, RayTracer.
sim
    Discrete-event simulator regenerating the paper's performance evaluation
    (Figures 7-9) on a virtual-time machine model, with execution tracing.
adapters
    Bindings to other event frameworks (asyncio), per the paper's future
    work, including async-I/O offloading.
dist
    Process-backed virtual targets: supervised worker processes behind the
    unchanged ``target`` surface (wire protocol, heartbeats, restarts).
cluster
    Socket-connected multi-host virtual targets: the dist machinery over
    TCP transports to remote worker agents (``repro cluster-worker``).
obs
    Structured event tracing and metrics: per-thread ring-buffer recorders,
    the REGION_SUBMIT→ENQUEUE→DEQUEUE→EXEC taxonomy, Chrome-trace/Perfetto
    export, latency histograms (see docs/OBSERVABILITY.md).
cli
    ``python -m repro`` — regenerate figures, render occupancy timelines,
    compile files, record traces (``trace`` subcommand).
"""

__version__ = "1.0.0"

from . import core, obs

__all__ = ["core", "obs", "__version__"]
