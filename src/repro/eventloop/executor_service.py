"""ExecutorService baseline: the manual thread-pool offloading approach.

Paper §V-A compares Pyjama against hand-written ``ExecutorService`` code
("using SwingUtilities when necessary").  This module reproduces the Java
API surface programmers use for that pattern — ``submit`` returning a
future, fixed/cached pools, ``shutdown``/``awaitTermination`` — built on the
same primitives as the rest of the library so overhead comparisons are
apples-to-apples.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Iterable

from ..core.errors import QueueFullError
from ..core.region import TargetRegion

__all__ = ["Future", "ExecutorService", "new_fixed_thread_pool", "ThreadPerRequestExecutor"]


class Future:
    """Java-style future over a :class:`TargetRegion`."""

    def __init__(self, region: TargetRegion) -> None:
        self._region = region

    def get(self, timeout: float | None = None) -> Any:
        return self._region.result(timeout)

    def is_done(self) -> bool:
        return self._region.done

    def cancel(self) -> bool:
        return self._region.cancel()

    def request_cancel(self) -> bool:
        """Cooperative cancel: withdraw if still queued, otherwise flag the
        region's cancel token for the running body to poll."""
        return self._region.request_cancel()

    def add_done_callback(self, cb: Callable[[TargetRegion], None]) -> None:
        self._region.add_done_callback(cb)


class ExecutorService:
    """A fixed thread pool with Java's ExecutorService API surface."""

    _pool_ids = itertools.count()

    def __init__(
        self,
        n_threads: int,
        name: str | None = None,
        *,
        queue_capacity: int | None = None,
        rejection_policy: str = "block",
    ) -> None:
        if n_threads < 1:
            raise ValueError("need at least one thread")
        if rejection_policy not in ("block", "reject", "caller_runs"):
            raise ValueError(f"unknown rejection policy {rejection_policy!r}")
        if queue_capacity is not None and queue_capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {queue_capacity}")
        self.name = name or f"executor-{next(self._pool_ids)}"
        self.queue_capacity = queue_capacity
        self.rejection_policy = rejection_policy
        self._queue: "list[TargetRegion]" = []
        self._cond = threading.Condition()
        self._shutdown = False
        self._active = 0
        self._threads = [
            threading.Thread(target=self._loop, name=f"{self.name}-{i}", daemon=True)
            for i in range(n_threads)
        ]
        for t in self._threads:
            t.start()

    def _loop(self) -> None:
        while True:
            with self._cond:
                while not self._queue and not self._shutdown:
                    self._cond.wait()
                if self._shutdown and not self._queue:
                    return
                region = self._queue.pop(0)
                self._active += 1
                # A queue slot just freed: wake submitters blocked on a
                # bounded queue without waiting for the region to finish.
                self._cond.notify_all()
            try:
                region.run()
            finally:
                with self._cond:
                    self._active -= 1
                    self._cond.notify_all()

    # ------------------------------------------------------------------- API

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        region = TargetRegion(fn, *args, **kwargs)
        run_in_caller = False
        with self._cond:
            if self._shutdown:
                raise RuntimeError(f"executor {self.name} is shut down")
            if self.queue_capacity is not None and len(self._queue) >= self.queue_capacity:
                # Same three policies as VirtualTarget.post (Java's
                # RejectedExecutionHandler family).
                if self.rejection_policy == "reject":
                    raise QueueFullError(self.name, self.queue_capacity)
                if self.rejection_policy == "caller_runs":
                    run_in_caller = True
                else:  # block
                    self._cond.wait_for(
                        lambda: self._shutdown
                        or len(self._queue) < self.queue_capacity
                    )
                    if self._shutdown:
                        raise RuntimeError(f"executor {self.name} is shut down")
            if not run_in_caller:
                self._queue.append(region)
                self._cond.notify()
        if run_in_caller:
            region.run()
        return Future(region)

    def invoke_all(
        self, tasks: Iterable[Callable[[], Any]], timeout: float | None = None
    ) -> list[Future]:
        futures = [self.submit(t) for t in tasks]
        deadline = None if timeout is None else time.monotonic() + timeout
        for f in futures:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            f._region.wait(remaining)
        return futures

    def execute(self, fn: Callable[[], Any]) -> None:
        """Fire-and-forget (Java's Executor.execute)."""
        self.submit(fn)

    def shutdown(self) -> None:
        with self._cond:
            self._shutdown = True
            self._cond.notify_all()

    def shutdown_now(self) -> list[TargetRegion]:
        with self._cond:
            self._shutdown = True
            dropped, self._queue = self._queue, []
            self._cond.notify_all()
        for r in dropped:
            r.cancel()
        return dropped

    def await_termination(self, timeout: float = 10.0) -> bool:
        deadline = time.monotonic() + timeout
        for t in self._threads:
            t.join(max(0.0, deadline - time.monotonic()))
        return not any(t.is_alive() for t in self._threads)

    @property
    def queue_length(self) -> int:
        with self._cond:
            return len(self._queue)

    @property
    def active_count(self) -> int:
        with self._cond:
            return self._active


def new_fixed_thread_pool(n: int, name: str | None = None) -> ExecutorService:
    """Java's ``Executors.newFixedThreadPool`` spelling."""
    return ExecutorService(n, name)


class ThreadPerRequestExecutor:
    """The traditional thread-per-request approach (paper §II-A).

    Spawns a fresh thread per task — the non-scalable baseline whose
    oversubscription collapse Figure 9 demonstrates.
    """

    def __init__(self, name: str = "thread-per-request") -> None:
        self.name = name
        self._spawned = 0
        self._lock = threading.Lock()

    def submit(self, fn: Callable[..., Any], *args: Any, **kwargs: Any) -> Future:
        region = TargetRegion(fn, *args, **kwargs)
        with self._lock:
            self._spawned += 1
            n = self._spawned
        threading.Thread(
            target=region.run, name=f"{self.name}-{n}", daemon=True
        ).start()
        return Future(region)

    @property
    def spawned(self) -> int:
        with self._lock:
            return self._spawned

    def shutdown(self) -> None:  # no pool to stop; API parity only
        pass
