"""Event-driven substrate: Swing-like event loop, baselines, and mock GUI.

Gives the reproduction the environment the paper evaluates in: an event
dispatch thread with a FIFO queue, the two manual offloading baselines
(SwingWorker, ExecutorService), and EDT-confined widgets.
"""

from .edt import EventLoop
from .events import Event, EventRecord
from .executor_service import (
    ExecutorService,
    Future,
    ThreadPerRequestExecutor,
    new_fixed_thread_pool,
)
from .gui import Button, EDTViolationError, Label, ModalDialog, Panel, ProgressBar, Widget
from .swing_worker import MAX_WORKER_THREADS, SwingWorker, swing_worker_pool, worker_from_callables
from .timer import Timer

__all__ = [
    "EventLoop",
    "Event",
    "EventRecord",
    "ExecutorService",
    "Future",
    "ThreadPerRequestExecutor",
    "new_fixed_thread_pool",
    "Button",
    "EDTViolationError",
    "Label",
    "ModalDialog",
    "Panel",
    "ProgressBar",
    "Widget",
    "SwingWorker",
    "MAX_WORKER_THREADS",
    "swing_worker_pool",
    "worker_from_callables",
    "Timer",
]
