"""SwingWorker baseline (paper Figure 3).

Reproduces the Java ``SwingWorker<T, V>`` contract the paper benchmarks
against:

* ``do_in_background`` runs on a shared worker pool — Java's implementation
  keeps a **10-thread-max** pool, which the paper calls out explicitly, so we
  default to the same bound;
* ``publish(chunk…)`` hands intermediate values to ``process(chunks)``,
  which runs **on the EDT**, with consecutive publishes coalesced into one
  ``process`` call exactly like Swing does;
* ``done()`` runs on the EDT after the background work finishes.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Generic, TypeVar

from .edt import EventLoop
from .executor_service import ExecutorService, Future

__all__ = ["SwingWorker", "swing_worker_pool"]

T = TypeVar("T")
V = TypeVar("V")

_shared_pools: dict[int, ExecutorService] = {}
_shared_lock = threading.Lock()

MAX_WORKER_THREADS = 10  # javax.swing.SwingWorker's hard-coded bound


def swing_worker_pool() -> ExecutorService:
    """The process-wide 10-thread pool shared by all SwingWorkers."""
    with _shared_lock:
        pool = _shared_pools.get(0)
        if pool is None or pool._shutdown:
            pool = ExecutorService(MAX_WORKER_THREADS, name="swingworker")
            _shared_pools[0] = pool
        return pool


class SwingWorker(Generic[T, V]):
    """Subclass and override ``do_in_background`` (+ optionally ``process``,
    ``done``), then call :meth:`execute` from the EDT."""

    def __init__(self, loop: EventLoop, pool: ExecutorService | None = None) -> None:
        self.loop = loop
        self._pool = pool or swing_worker_pool()
        self._pending_chunks: list[V] = []
        self._chunk_lock = threading.Lock()
        self._process_scheduled = False
        self._future: Future | None = None
        self._done_event = threading.Event()
        self._cancelled = threading.Event()

    # --------------------------------------------------- user-overridable API

    def do_in_background(self) -> T:  # pragma: no cover - abstract by convention
        raise NotImplementedError

    def process(self, chunks: list[V]) -> None:
        """Handle published intermediate values on the EDT.  Default: ignore."""

    def done(self) -> None:
        """Completion hook, runs on the EDT.  Default: nothing."""

    # ----------------------------------------------------------- machinery

    def publish(self, *chunks: V) -> None:
        """Queue intermediate values for :meth:`process` on the EDT.

        Multiple publishes before the EDT gets around to processing are
        delivered as one batched ``process`` call (Swing's coalescing rule).
        """
        with self._chunk_lock:
            self._pending_chunks.extend(chunks)
            if self._process_scheduled:
                return
            self._process_scheduled = True
        self.loop.invoke_later(self._drain_chunks)

    def _drain_chunks(self) -> None:
        with self._chunk_lock:
            chunks, self._pending_chunks = self._pending_chunks, []
            self._process_scheduled = False
        if chunks:
            self.process(chunks)

    def execute(self) -> Future:
        """Submit the background work; returns the future for ``get()``."""
        if self._future is not None:
            raise RuntimeError("a SwingWorker can be executed only once")

        def run() -> T:
            try:
                return self.do_in_background()
            finally:
                self.loop.invoke_later(self._finish)

        self._future = self._pool.submit(run)
        return self._future

    def _finish(self) -> None:
        try:
            self.done()
        finally:
            self._done_event.set()

    def get(self, timeout: float | None = None) -> T:
        """Result of ``do_in_background`` (blocking; Java semantics)."""
        if self._future is None:
            raise RuntimeError("execute() has not been called")
        return self._future.get(timeout)

    def wait_done(self, timeout: float | None = None) -> bool:
        """Wait until ``done()`` has run on the EDT (test convenience)."""
        return self._done_event.wait(timeout)

    @property
    def is_done(self) -> bool:
        return self._future is not None and self._future.is_done()

    # -------------------------------------------------------- cancellation

    def cancel(self) -> bool:
        """Java's ``cancel(true)``, cooperatively: a queued background task
        is withdrawn outright; a running one keeps running but
        :attr:`is_cancelled` flips so ``do_in_background`` can bail out
        early (Python threads cannot be interrupted forcibly).  ``done()``
        still runs on the EDT either way, matching SwingWorker."""
        self._cancelled.set()
        if self._future is None:
            return True
        withdrawn = self._future.cancel()
        if not withdrawn:
            # Already running: flag the region's cooperative cancel token too,
            # so bodies polling current_region() (not the worker) also see it.
            self._future.request_cancel()
        if withdrawn:
            # The background body never runs, so its finally-hook never
            # posts done(); do it here.
            self.loop.invoke_later(self._finish)
        return withdrawn

    @property
    def is_cancelled(self) -> bool:
        return self._cancelled.is_set()


def worker_from_callables(
    loop: EventLoop,
    background: Callable[["SwingWorker"], T],
    process: Callable[[list[V]], None] | None = None,
    done: Callable[[], None] | None = None,
    pool: ExecutorService | None = None,
) -> SwingWorker:
    """Build a SwingWorker without subclassing (keeps examples compact)."""

    class _Worker(SwingWorker):
        def do_in_background(self) -> T:
            return background(self)

        def process(self, chunks: list[V]) -> None:
            if process is not None:
                process(chunks)

        def done(self) -> None:
            if done is not None:
                done()

    return _Worker(loop, pool)
