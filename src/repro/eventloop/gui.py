"""Mock GUI widgets with EDT confinement.

"GUI components are not thread-safe and access is strictly confined to the
EDT … Disrespecting this rule could result in the user interface exhibiting
inconsistency or even errors" (paper §II-A).  These headless widgets *enforce*
that rule: every mutating call asserts it runs on the loop's EDT, so tests
and examples catch threading bugs the way a real GUI framework would corrupt
state.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from .edt import EventLoop
from .events import Event

__all__ = [
    "EDTViolationError",
    "Widget",
    "Label",
    "ProgressBar",
    "Button",
    "Panel",
    "ModalDialog",
]


class EDTViolationError(RuntimeError):
    """A widget was touched from a thread other than the EDT."""

    def __init__(self, widget: "Widget", operation: str):
        super().__init__(
            f"{operation} on {type(widget).__name__}({widget.name!r}) called from "
            f"{threading.current_thread().name!r}, not the EDT — wrap it in "
            "`#omp target virtual(edt)` or invoke_later()"
        )


class Widget:
    """Base widget: EDT-confined state plus a change journal for assertions."""

    def __init__(self, loop: EventLoop, name: str) -> None:
        self.loop = loop
        self.name = name
        self._journal: list[tuple[str, Any]] = []

    def _check_edt(self, operation: str) -> None:
        if not self.loop.is_edt():
            raise EDTViolationError(self, operation)

    def _record(self, operation: str, value: Any) -> None:
        self._check_edt(operation)
        self._journal.append((operation, value))

    @property
    def journal(self) -> list[tuple[str, Any]]:
        """All mutations applied, in EDT order (thread-safe to read after
        quiescence; tests read it once the loop has drained)."""
        return list(self._journal)


class Label(Widget):
    """A text label (``Label.setText`` in the paper's running example)."""

    def __init__(self, loop: EventLoop, name: str = "label", text: str = "") -> None:
        super().__init__(loop, name)
        self._text = text

    def set_text(self, text: str) -> None:
        self._record("set_text", text)
        self._text = text

    @property
    def text(self) -> str:
        return self._text


class ProgressBar(Widget):
    """Progress display for intermediate updates (S2 in paper Figure 2)."""

    def __init__(self, loop: EventLoop, name: str = "progress") -> None:
        super().__init__(loop, name)
        self._value = 0

    def set_value(self, value: int) -> None:
        if not 0 <= value <= 100:
            raise ValueError("progress must be within [0, 100]")
        self._record("set_value", value)
        self._value = value

    @property
    def value(self) -> int:
        return self._value


class Button(Widget):
    """A clickable button; ``click()`` fires its event through the loop
    (callable from any thread, like a real input source)."""

    def __init__(self, loop: EventLoop, name: str = "button") -> None:
        super().__init__(loop, name)
        self.event_name = f"{name}.click"

    def on_click(self, handler: Callable[[Event], Any]) -> None:
        self.loop.on(self.event_name, handler)

    def click(self, payload: Any = None):
        return self.loop.fire(self.event_name, payload)


class Panel(Widget):
    """The paper's Figure 6 surface: messages, input collection, images."""

    def __init__(self, loop: EventLoop, name: str = "panel") -> None:
        super().__init__(loop, name)
        self._messages: list[str] = []
        self._images: list[Any] = []
        self._input: Any = None

    def show_msg(self, msg: str) -> None:
        self._record("show_msg", msg)
        self._messages.append(msg)

    def display_img(self, img: Any) -> None:
        self._record("display_img", img)
        self._images.append(img)

    def set_input(self, value: Any) -> None:
        self._record("set_input", value)
        self._input = value

    def collect_input(self) -> Any:
        self._check_edt("collect_input")
        return self._input

    @property
    def messages(self) -> list[str]:
        return list(self._messages)

    @property
    def images(self) -> list[Any]:
        return list(self._images)


class ModalDialog(Widget):
    """A modal dialog: ``show_modal()`` blocks the calling handler while the
    EDT keeps dispatching events — by pumping its own queue, exactly the
    mechanism Algorithm 1's ``await`` uses (desktop toolkits run modal
    dialogs this way, with the same nested-loop semantics).

    ``close(result)`` may be called from any thread; ``show_modal`` returns
    that result on the EDT.
    """

    def __init__(self, loop: "EventLoop", name: str = "dialog") -> None:  # noqa: F821
        super().__init__(loop, name)
        self._open = False
        self._result: Any = None
        self._closed = threading.Event()

    def show_modal(self, timeout: float | None = None) -> Any:
        """Open the dialog and pump the EDT's queue until :meth:`close`.

        Must be called on the EDT (it is a GUI operation *and* needs the
        EDT's queue to pump).  Re-entrant: a handler dispatched while one
        dialog is open may itself open another — LIFO close order applies,
        as in real toolkits.
        """
        self._record("show_modal", None)
        self._open = True
        self._closed.clear()
        import time as _time

        deadline = None if timeout is None else _time.monotonic() + timeout
        target = self.loop.target
        while not self._closed.is_set():
            if deadline is not None and _time.monotonic() > deadline:
                self._open = False
                raise TimeoutError(f"modal dialog {self.name!r} never closed")
            target.process_one(timeout=0.02)
        self._open = False
        self._journal.append(("closed", self._result))
        return self._result

    def close(self, result: Any = None) -> None:
        """Close the dialog (any thread), delivering *result*."""
        self._result = result
        self._closed.set()
        self.loop.target.wakeup()

    @property
    def is_open(self) -> bool:
        return self._open
