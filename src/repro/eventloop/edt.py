"""The Swing-like event loop built on a core :class:`EdtTarget`.

Sharing the queue with the virtual-target runtime is deliberate and mirrors
the paper's proof-of-concept, which "slightly modif[ies] the event queue
dispatching mechanism in the Java AWT runtime library": events and
``target virtual(edt)`` regions interleave in one FIFO, and a handler that
``await``-s an offloaded block pumps this same queue, so other events are
processed during the logical barrier.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from ..core.runtime import PjRuntime
from ..core.targets import EdtTarget
from ..obs import EventKind
from ..obs import recorder as _obs
from .events import Event, EventRecord

__all__ = ["EventLoop"]


class EventLoop:
    """A GUI-style event loop with listener dispatch and response metrics.

    Parameters
    ----------
    runtime:
        The Pyjama runtime to register the EDT virtual target with.
    name:
        Virtual-target name of the EDT (directives say ``virtual(<name>)``).
    """

    def __init__(
        self,
        runtime: PjRuntime,
        name: str = "edt",
        *,
        queue_capacity: int | None = None,
        rejection_policy: str | None = None,
    ) -> None:
        self.runtime = runtime
        self.name = name
        self._listeners: dict[str, list[Callable[[Event], Any]]] = {}
        self._listeners_lock = threading.Lock()
        self._records: list[EventRecord] = []
        self._records_lock = threading.Lock()
        self.target: EdtTarget = runtime.start_edt(
            name, queue_capacity=queue_capacity, rejection_policy=rejection_policy
        )

    # ------------------------------------------------------------- listeners

    def on(self, event_name: str, handler: Callable[[Event], Any]) -> None:
        """Register *handler* for events named *event_name*."""
        with self._listeners_lock:
            self._listeners.setdefault(event_name, []).append(handler)

    def off(self, event_name: str, handler: Callable[[Event], Any]) -> None:
        with self._listeners_lock:
            handlers = self._listeners.get(event_name, [])
            if handler in handlers:
                handlers.remove(handler)

    def listeners(self, event_name: str) -> list[Callable[[Event], Any]]:
        with self._listeners_lock:
            return list(self._listeners.get(event_name, ()))

    # --------------------------------------------------------------- firing

    def fire(self, event: Event | str, payload: Any = None) -> EventRecord:
        """Queue *event* for dispatch on the EDT; returns its record.

        The record's ``finished_at`` is stamped when the handler logically
        completes.  Synchronous handlers complete when they return; handlers
        that offload may call ``record.mark_finished()`` themselves from
        their completion continuation — the dispatcher only auto-stamps
        records the handler left untouched, and does so *at handler return*,
        so an async handler must take ownership by calling
        :meth:`EventRecord.mark_started`-style explicit completion (see
        ``defer_completion``).
        """
        if isinstance(event, str):
            event = Event(event, payload)
        record = EventRecord(event)
        event.record = record
        with self._records_lock:
            self._records.append(record)

        def dispatch() -> None:
            record.mark_started()
            deferred = False
            for handler in self.listeners(event.name):
                if getattr(handler, "_defers_completion", False):
                    deferred = True
                handler(event)
            if not deferred:
                record.mark_finished()

        # Trace identity: GUI events ride the same queue as target regions;
        # stamping the closure makes them named, correlated spans in the
        # trace (ENQUEUE -> DEQUEUE -> EXEC on the EDT track) rather than
        # anonymous callables.  The negative id space keeps synthetic GUI
        # event ids disjoint from TargetRegion.seq.
        dispatch._trace_name = f"event:{event.name}"  # type: ignore[attr-defined]
        dispatch._trace_id = -(event.event_id + 1)  # type: ignore[attr-defined]
        session = _obs.session()
        if session.enabled:
            session.emit(
                EventKind.REGION_SUBMIT, target=self.name,
                region=dispatch._trace_id,  # type: ignore[attr-defined]
                name=dispatch._trace_name,  # type: ignore[attr-defined]
                arg="event",
            )
        self.target.post(dispatch)
        return record

    @staticmethod
    def defer_completion(handler: Callable[[Event], Any]) -> Callable[[Event], Any]:
        """Mark *handler* as asynchronous: the dispatcher will not auto-stamp
        ``finished_at`` when it returns; the handler's continuation must call
        ``record.mark_finished()`` (records travel via the event payload or a
        closure)."""
        handler._defers_completion = True  # type: ignore[attr-defined]
        return handler

    # --------------------------------------------------------------- metrics

    @property
    def records(self) -> list[EventRecord]:
        with self._records_lock:
            return list(self._records)

    def clear_records(self) -> None:
        with self._records_lock:
            self._records.clear()

    def wait_all_finished(self, timeout: float = 10.0) -> bool:
        """Block (busy-poll) until every fired event's record is finished."""
        import time as _time

        deadline = _time.monotonic() + timeout
        while _time.monotonic() < deadline:
            if all(r.finished_at is not None for r in self.records):
                return True
            _time.sleep(0.002)
        return False

    # -------------------------------------------------------------- plumbing

    def invoke_later(self, fn: Callable[[], Any]) -> None:
        """SwingUtilities.invokeLater: run *fn* on the EDT, asynchronously."""
        self.target.post(fn)

    def invoke_and_wait(self, fn: Callable[[], Any], timeout: float | None = None) -> Any:
        """SwingUtilities.invokeAndWait: run *fn* on the EDT and return its
        value.  Runs inline if already on the EDT (Swing would deadlock here;
        we follow the virtual-target context-awareness rule instead)."""
        region = self.runtime.invoke_target_block(self.name, fn)
        return region.result(timeout)

    def is_edt(self) -> bool:
        return self.target.contains()

    def shutdown(self, wait: bool = False) -> None:
        """Stop the loop.  ``wait=True`` lets queued events dispatch first;
        the default cancels the backlog so pending handlers fail fast."""
        self.runtime.unregister_target(self.name, wait=wait)
