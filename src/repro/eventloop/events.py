"""Events and event records for the Swing-like substrate.

An :class:`Event` carries a name, an optional payload, and timestamps that
the benchmarks use to measure *response time*: "the time flow from the event
firing to the finish of its event handling" (paper §V-A).
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Event", "EventRecord"]

_event_ids = itertools.count()


@dataclass
class Event:
    """A fired event, timestamped at creation.

    ``record`` is filled in by the event loop when the event is fired, so
    asynchronous handlers can stamp completion on it from a continuation.
    """

    name: str
    payload: Any = None
    event_id: int = field(default_factory=lambda: next(_event_ids))
    fired_at: float = field(default_factory=time.perf_counter)
    record: "EventRecord | None" = field(default=None, repr=False, compare=False)

    def __hash__(self) -> int:
        return self.event_id


@dataclass
class EventRecord:
    """Measured lifecycle of one event's handling.

    * ``dispatch_latency`` — fire → handler start on the EDT (how long the
      event sat in the queue; the responsiveness signal).
    * ``response_time`` — fire → handling logically finished (the paper's
      response-time metric).  For asynchronous handlers "finished" means the
      completion continuation ran, not merely that the EDT returned.
    """

    event: Event
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def dispatch_latency(self) -> float | None:
        if self.started_at is None:
            return None
        return self.started_at - self.event.fired_at

    @property
    def response_time(self) -> float | None:
        if self.finished_at is None:
            return None
        return self.finished_at - self.event.fired_at

    def mark_started(self) -> None:
        if self.started_at is None:
            self.started_at = time.perf_counter()

    def mark_finished(self) -> None:
        if self.finished_at is None:
            self.finished_at = time.perf_counter()
