"""Swing-style Timer: periodic events dispatched on the EDT.

``javax.swing.Timer`` fires action events on the event-dispatch thread at a
fixed delay, coalescing pending events when the EDT falls behind.  GUI
applications drive animations and polling with it — and it is exactly the
event source that makes a blocked EDT visible (a frozen animation), so the
examples use it as the responsiveness probe.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from .edt import EventLoop

__all__ = ["Timer"]


class Timer:
    """Fires ``callback`` on the EDT every ``delay`` seconds.

    Parameters
    ----------
    loop:
        The event loop whose EDT dispatches the callback.
    delay:
        Seconds between firings.
    callback:
        Called on the EDT with no arguments.
    repeats:
        False = one-shot (fire once, then stop), like ``setRepeats(false)``.
    coalesce:
        If the EDT has not yet dispatched the previous firing, skip queueing
        another (Swing's default behaviour) — a slow EDT sees fewer events
        rather than a growing backlog.
    initial_delay:
        Delay before the first firing (defaults to ``delay``).
    """

    def __init__(
        self,
        loop: EventLoop,
        delay: float,
        callback: Callable[[], Any],
        *,
        repeats: bool = True,
        coalesce: bool = True,
        initial_delay: float | None = None,
    ) -> None:
        if delay <= 0:
            raise ValueError("delay must be positive")
        self.loop = loop
        self.delay = delay
        self.callback = callback
        self.repeats = repeats
        self.coalesce = coalesce
        self.initial_delay = delay if initial_delay is None else initial_delay
        self._lock = threading.Lock()
        self._timer: threading.Timer | None = None
        self._running = False
        self._pending_dispatch = False
        self.fired = 0        # timer expirations
        self.dispatched = 0   # callbacks actually run on the EDT
        self.coalesced = 0    # firings skipped because one was still queued

    # ------------------------------------------------------------- control

    @property
    def is_running(self) -> bool:
        with self._lock:
            return self._running

    def start(self) -> "Timer":
        with self._lock:
            if self._running:
                return self
            self._running = True
            self._schedule(self.initial_delay)
        return self

    def stop(self) -> None:
        with self._lock:
            self._running = False
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None

    def restart(self) -> None:
        """Cancel any pending firing and start over with the initial delay."""
        self.stop()
        self.start()

    # ------------------------------------------------------------ internals

    def _schedule(self, delay: float) -> None:
        # caller holds the lock
        t = threading.Timer(delay, self._expire)
        t.daemon = True
        self._timer = t
        t.start()

    def _expire(self) -> None:
        with self._lock:
            if not self._running:
                return
            self.fired += 1
            skip = self.coalesce and self._pending_dispatch
            if skip:
                self.coalesced += 1
            else:
                self._pending_dispatch = True
            if self.repeats:
                self._schedule(self.delay)
            else:
                self._running = False
                self._timer = None
        if not skip:
            self.loop.invoke_later(self._dispatch)

    def _dispatch(self) -> None:
        with self._lock:
            self._pending_dispatch = False
            self.dispatched += 1
        self.callback()
