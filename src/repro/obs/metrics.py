"""Latency aggregation over the trace-event stream.

Where the runtime's point-in-time counters (``PjRuntime.counters``,
``VirtualTarget.stats``) answer *how many*, this module answers *how long* —
the quantities the paper's evaluation plots:

* **queue wait** — ENQUEUE → DEQUEUE: how long a region sat in the target's
  FIFO (the dispatch-latency signal of Figures 1 and 7);
* **execution** — EXEC_BEGIN → EXEC_END: the body itself;
* **end-to-end** — REGION_SUBMIT → EXEC_END: what the caller experienced.

Each is reported overall and per virtual target with count / mean / p50 /
p95 / p99 / max, computed exactly from the recorded stream (no binning
error; the streams the ring buffers keep are small enough to sort).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .events import EventKind, TraceEvent

__all__ = ["LatencyStats", "TargetMetrics", "TraceMetrics", "compute_metrics", "format_metrics"]


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank-with-interpolation percentile of an ascending list."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return sorted_values[0]
    pos = (len(sorted_values) - 1) * q
    lo = int(pos)
    hi = min(lo + 1, len(sorted_values) - 1)
    frac = pos - lo
    return sorted_values[lo] * (1.0 - frac) + sorted_values[hi] * frac


@dataclass
class LatencyStats:
    """Summary statistics of one latency population (milliseconds)."""

    count: int = 0
    mean: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    max: float = 0.0

    @classmethod
    def from_ns(cls, samples_ns: Iterable[int]) -> "LatencyStats":
        ms = sorted(s / 1e6 for s in samples_ns)
        if not ms:
            return cls()
        return cls(
            count=len(ms),
            mean=sum(ms) / len(ms),
            p50=_percentile(ms, 0.50),
            p95=_percentile(ms, 0.95),
            p99=_percentile(ms, 0.99),
            max=ms[-1],
        )

    def row(self, label: str) -> str:
        return (
            f"{label:<14} {self.count:>6} {self.mean:>9.3f} {self.p50:>9.3f} "
            f"{self.p95:>9.3f} {self.p99:>9.3f} {self.max:>9.3f}"
        )


@dataclass
class TargetMetrics:
    """The three latency populations for one virtual target."""

    queue_wait: LatencyStats = field(default_factory=LatencyStats)
    execution: LatencyStats = field(default_factory=LatencyStats)
    end_to_end: LatencyStats = field(default_factory=LatencyStats)


@dataclass
class TraceMetrics:
    """Aggregate view of a recorded trace."""

    overall: TargetMetrics = field(default_factory=TargetMetrics)
    per_target: dict[str, TargetMetrics] = field(default_factory=dict)
    kind_counts: dict[str, int] = field(default_factory=dict)
    regions_seen: int = 0
    inline_elided: int = 0
    pump_steals: int = 0


@dataclass
class _RegionTrack:
    target: str | None = None
    submit: int | None = None
    enqueue: int | None = None
    dequeue: int | None = None
    exec_begin: int | None = None
    exec_end: int | None = None


def compute_metrics(events: Iterable[TraceEvent]) -> TraceMetrics:
    """Fold an event stream into :class:`TraceMetrics`.

    Regions with incomplete lifecycles (still running, cancelled, or with
    events lost to ring wraparound) contribute only the intervals whose two
    endpoints were both recorded.
    """
    # Barrier events carry the awaited region's id for correlation, but their
    # target is where the barrier pumps (e.g. the EDT), not where the region
    # runs — only lifecycle events attribute a region to a target.
    lifecycle = {
        EventKind.REGION_SUBMIT,
        EventKind.ENQUEUE,
        EventKind.DEQUEUE,
        EventKind.EXEC_BEGIN,
        EventKind.EXEC_END,
        EventKind.INLINE_ELIDE,
        EventKind.CANCEL,
        EventKind.REJECT,
    }
    regions: dict[int, _RegionTrack] = {}
    metrics = TraceMetrics()
    for e in sorted(events, key=lambda ev: (ev.ts, ev.seq)):
        metrics.kind_counts[e.kind.name] = metrics.kind_counts.get(e.kind.name, 0) + 1
        if e.kind is EventKind.INLINE_ELIDE:
            metrics.inline_elided += 1
        elif e.kind is EventKind.PUMP_STEAL:
            metrics.pump_steals += 1
        if e.region is None:
            continue
        track = regions.setdefault(e.region, _RegionTrack())
        if e.target is not None and e.kind in lifecycle:
            track.target = e.target
        if e.kind is EventKind.REGION_SUBMIT and track.submit is None:
            track.submit = e.ts
        elif e.kind is EventKind.ENQUEUE and track.enqueue is None:
            track.enqueue = e.ts
        elif e.kind is EventKind.DEQUEUE and track.dequeue is None:
            track.dequeue = e.ts
        elif e.kind is EventKind.EXEC_BEGIN and track.exec_begin is None:
            track.exec_begin = e.ts
        elif e.kind is EventKind.EXEC_END:
            track.exec_end = e.ts

    metrics.regions_seen = len(regions)
    waits: dict[str | None, list[int]] = {}
    execs: dict[str | None, list[int]] = {}
    e2es: dict[str | None, list[int]] = {}
    for track in regions.values():
        if track.enqueue is not None and track.dequeue is not None:
            waits.setdefault(track.target, []).append(track.dequeue - track.enqueue)
        if track.exec_begin is not None and track.exec_end is not None:
            execs.setdefault(track.target, []).append(track.exec_end - track.exec_begin)
        if track.submit is not None and track.exec_end is not None:
            e2es.setdefault(track.target, []).append(track.exec_end - track.submit)

    def _flatten(d: dict[str | None, list[int]]) -> list[int]:
        return [v for vs in d.values() for v in vs]

    metrics.overall = TargetMetrics(
        queue_wait=LatencyStats.from_ns(_flatten(waits)),
        execution=LatencyStats.from_ns(_flatten(execs)),
        end_to_end=LatencyStats.from_ns(_flatten(e2es)),
    )
    for target in sorted(
        {t for t in (*waits, *execs, *e2es) if t is not None}
    ):
        metrics.per_target[target] = TargetMetrics(
            queue_wait=LatencyStats.from_ns(waits.get(target, ())),
            execution=LatencyStats.from_ns(execs.get(target, ())),
            end_to_end=LatencyStats.from_ns(e2es.get(target, ())),
        )
    return metrics


def format_metrics(metrics: TraceMetrics) -> str:
    """Human-readable table (milliseconds)."""
    header = (
        f"{'latency (ms)':<14} {'count':>6} {'mean':>9} {'p50':>9} "
        f"{'p95':>9} {'p99':>9} {'max':>9}"
    )
    lines = [
        f"trace metrics: {metrics.regions_seen} region(s), "
        f"{metrics.inline_elided} inline-elided, {metrics.pump_steals} pump-steal(s)",
        header,
        "-" * len(header),
        metrics.overall.queue_wait.row("queue-wait"),
        metrics.overall.execution.row("execution"),
        metrics.overall.end_to_end.row("end-to-end"),
    ]
    for target, tm in metrics.per_target.items():
        lines.append(f"target {target!r}:")
        lines.append(tm.queue_wait.row("  queue-wait"))
        lines.append(tm.execution.row("  execution"))
        lines.append(tm.end_to_end.row("  end-to-end"))
    counts = ", ".join(f"{k}={v}" for k, v in sorted(metrics.kind_counts.items()))
    lines.append(f"event counts: {counts or '(none)'}")
    return "\n".join(lines)
