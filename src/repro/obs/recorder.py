"""Per-thread ring-buffer recorders behind a process-global trace session.

Design constraints (mirroring what production tracers like Extrae do):

* **No contention on the hot path.**  Each thread owns a private
  :class:`RingRecorder`; ``emit`` never takes a lock after the recorder is
  created, so tracing does not serialize the runtime it is observing.
* **Bounded memory.**  Recorders are fixed-capacity rings; when full they
  overwrite the *oldest* event and count it in :attr:`RingRecorder.dropped`,
  so a long-running system keeps the most recent window and the drop count
  is an explicit, queryable fact rather than silent truncation.
* **Zero allocation when disabled.**  The idiomatic call site is::

      if _trace.enabled:
          _trace.emit(EventKind.ENQUEUE, target=self.name, ...)

  With tracing off the cost is one attribute read and a branch; no event
  object, no argument tuple.  (``emit`` re-checks ``enabled`` itself, so
  un-guarded call sites stay correct, just marginally slower.)

The process-global :func:`session` is enabled either programmatically
(``repro.obs.enable()``), through the ``trace_enabled_var`` ICV on
:class:`~repro.core.runtime.PjRuntime`, or by the ``REPRO_TRACE=1``
environment variable at import time (``REPRO_TRACE_BUFFER`` sizes the
per-thread rings).
"""

from __future__ import annotations

import os
import threading

from .events import EventKind, TraceEvent, now_ns

__all__ = [
    "RingRecorder",
    "NullRecorder",
    "TraceSession",
    "session",
    "enable",
    "disable",
    "is_enabled",
    "emit",
    "DEFAULT_BUFFER_SIZE",
]

DEFAULT_BUFFER_SIZE = 65536


class RingRecorder:
    """A fixed-capacity per-thread event ring.

    Only its owning thread appends; any thread may snapshot via
    :meth:`events` (best-effort consistent — the GIL makes the list ops
    atomic, and collection normally happens after the workload quiesces).
    """

    __slots__ = ("thread_name", "capacity", "generation", "_buf", "_next", "recorded", "dropped")

    def __init__(self, capacity: int, generation: int, thread_name: str) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.thread_name = thread_name
        self.capacity = capacity
        self.generation = generation
        self._buf: list[TraceEvent | None] = [None] * capacity
        self._next = 0  # total appends; index = _next % capacity
        self.recorded = 0
        self.dropped = 0

    def append(self, event: TraceEvent) -> None:
        i = self._next
        event.seq = i
        slot = i % self.capacity
        if self._buf[slot] is not None:
            self.dropped += 1  # overwrote the oldest event: it is lost
        self._buf[slot] = event
        self._next = i + 1
        self.recorded += 1

    def __len__(self) -> int:
        return min(self._next, self.capacity)

    def events(self) -> list[TraceEvent]:
        """Events still in the ring, oldest first."""
        n = self._next
        if n <= self.capacity:
            return [e for e in self._buf[:n] if e is not None]
        start = n % self.capacity
        out = self._buf[start:] + self._buf[:start]
        return [e for e in out if e is not None]


class NullRecorder:
    """Accepts and discards events.

    Used by the ``null`` session mode so the overhead of event *construction*
    (the instrumented call sites firing) can be measured separately from the
    cost of *storing* events — the middle column of
    ``benchmarks/bench_trace_overhead.py``.
    """

    __slots__ = ("thread_name", "generation", "recorded", "dropped")

    capacity = 0

    def __init__(self, generation: int, thread_name: str) -> None:
        self.thread_name = thread_name
        self.generation = generation
        self.recorded = 0
        self.dropped = 0

    def append(self, event: TraceEvent) -> None:
        self.recorded += 1

    def __len__(self) -> int:
        return 0

    def events(self) -> list[TraceEvent]:
        return []


class TraceSession:
    """Process-global tracing state: an on/off switch plus the registry of
    per-thread recorders created while it was on.

    ``start()``/``stop()`` bracket one recording window; ``events()`` merges
    every thread's ring into a single timeline ordered by the shared
    ``perf_counter_ns`` clock.  Restarting bumps an internal generation so
    recorders cached in thread-locals from a previous window are abandoned,
    never written into retroactively.
    """

    def __init__(self, buffer_size: int = DEFAULT_BUFFER_SIZE) -> None:
        self.enabled = False
        self.buffer_size = buffer_size
        self.null = False
        self._generation = 0
        self._lock = threading.Lock()
        self._recorders: list[RingRecorder | NullRecorder] = []
        self._local = threading.local()

    # -------------------------------------------------------------- lifecycle

    def start(self, *, buffer_size: int | None = None, null: bool = False) -> None:
        """Begin a fresh recording window (clears prior events)."""
        with self._lock:
            if buffer_size is not None:
                if buffer_size < 1:
                    raise ValueError(f"buffer_size must be >= 1, got {buffer_size}")
                self.buffer_size = buffer_size
            self.null = null
            self._generation += 1
            self._recorders = []
            self.enabled = True

    def stop(self) -> None:
        """Stop recording; recorded events stay readable until the next start."""
        self.enabled = False

    @property
    def generation(self) -> int:
        """Bumped on every start()/clear(): identifies one recording window.

        Instrumentation that samples (e.g. the queue-depth stride in
        ``repro.core.targets``) keys its counters on this so a fresh window
        always begins with a sample instead of inheriting a mid-stride
        counter from the previous run.
        """
        return self._generation

    def clear(self) -> None:
        """Drop all recorded events (keeps the enabled/disabled state)."""
        with self._lock:
            self._generation += 1
            self._recorders = []

    # ----------------------------------------------------------------- emit

    def emit(
        self,
        kind: EventKind,
        *,
        target: str | None = None,
        region: int | None = None,
        name: str | None = None,
        arg: object = None,
        ts: int | None = None,
        thread: str | None = None,
    ) -> None:
        """Record one event on the calling thread's recorder.

        *ts* lets an instrumentation site stamp a time captured earlier (e.g.
        the instant *before* a blocking enqueue) so causal order survives
        even when the event object is built after the fact.  *thread*
        overrides the recorded thread label: process targets replay events
        that happened on a worker process through the parent-side shipper
        thread, and the trace must attribute them to the worker, not the
        shipper.
        """
        if not self.enabled:
            return
        rec = getattr(self._local, "rec", None)
        if rec is None or rec.generation != self._generation:
            rec = self._new_recorder()
        rec.append(
            TraceEvent(
                kind,
                now_ns() if ts is None else ts,
                thread if thread is not None else rec.thread_name,
                target,
                region,
                name,
                arg,
            )
        )

    def _new_recorder(self) -> RingRecorder | NullRecorder:
        tname = threading.current_thread().name
        with self._lock:
            gen = self._generation
            rec: RingRecorder | NullRecorder
            if self.null:
                rec = NullRecorder(gen, tname)
            else:
                rec = RingRecorder(self.buffer_size, gen, tname)
            self._recorders.append(rec)
        self._local.rec = rec
        return rec

    # ------------------------------------------------------------ collection

    def events(self) -> list[TraceEvent]:
        """Every recorded event, merged across threads and time-ordered."""
        with self._lock:
            recorders = list(self._recorders)
        merged: list[TraceEvent] = []
        for rec in recorders:
            merged.extend(rec.events())
        merged.sort(key=lambda e: (e.ts, e.seq))
        return merged

    def stats(self) -> dict[str, object]:
        """Recorder bookkeeping: per-thread and aggregate counts."""
        with self._lock:
            recorders = list(self._recorders)
        per_thread = {
            rec.thread_name: {
                "recorded": rec.recorded,
                "retained": len(rec),
                "dropped": rec.dropped,
                "capacity": rec.capacity,
            }
            for rec in recorders
        }
        return {
            "enabled": self.enabled,
            "null": self.null,
            "threads": len(recorders),
            "recorded": sum(r.recorded for r in recorders),
            "retained": sum(len(r) for r in recorders),
            "dropped": sum(r.dropped for r in recorders),
            "per_thread": per_thread,
        }

    def describe(self) -> str:
        """One-line summary for ``diagnostic_dump()``."""
        s = self.stats()
        mode = "off" if not s["enabled"] else ("null" if s["null"] else "on")
        return (
            f"trace: {mode} threads={s['threads']} recorded={s['recorded']} "
            f"retained={s['retained']} dropped={s['dropped']}"
        )


def _env_truthy(value: str | None) -> bool:
    return (value or "").strip().lower() in ("1", "true", "yes", "on")


def _session_from_env() -> TraceSession:
    size = DEFAULT_BUFFER_SIZE
    raw = os.environ.get("REPRO_TRACE_BUFFER")
    if raw:
        try:
            size = max(1, int(raw))
        except ValueError:
            pass
    s = TraceSession(buffer_size=size)
    if _env_truthy(os.environ.get("REPRO_TRACE")):
        s.start()
    return s


_SESSION = _session_from_env()


def session() -> TraceSession:
    """The process-global trace session."""
    return _SESSION


def enable(*, buffer_size: int | None = None, null: bool = False) -> TraceSession:
    """Start (or restart) process-wide tracing; returns the session."""
    _SESSION.start(buffer_size=buffer_size, null=null)
    return _SESSION


def disable() -> TraceSession:
    """Stop process-wide tracing (events stay readable)."""
    _SESSION.stop()
    return _SESSION


def is_enabled() -> bool:
    return _SESSION.enabled


def emit(kind: EventKind, **kwargs) -> None:
    """Module-level convenience for cold call sites; hot paths should hold a
    session reference and guard with ``session.enabled`` themselves."""
    _SESSION.emit(kind, **kwargs)
