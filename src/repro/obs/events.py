"""The trace-event taxonomy of the virtual-target runtime.

Every observable step of a target region's life emits one :class:`TraceEvent`
(cf. Extrae's ``new_openmp_events.h`` taxonomy for OpenMP runtimes).  The
kinds mirror the paper's lifecycle:

* dispatch — ``REGION_SUBMIT`` (Algorithm 1 entered), ``ENQUEUE``
  (``E.post(B)``), ``DEQUEUE`` (an executor thread picked the item up),
  ``EXEC_BEGIN``/``EXEC_END`` (the block body ran), ``CANCEL`` (withdrawn),
  ``REJECT`` (bounded-queue rejection), ``INLINE_ELIDE`` (thread-context
  awareness short-circuited the queue, Algorithm 1 lines 6-7);
* the ``await`` logical barrier — ``BARRIER_ENTER``, ``PUMP_STEAL`` (a
  thread executed queued work it did not own: a pumping barrier, or an idle
  sibling lane stealing), ``BARRIER_EXIT``;
* ``wait(tag)`` joins — ``TAG_WAIT_BEGIN``/``TAG_WAIT_END``;
* telemetry — ``QUEUE_DEPTH`` samples (one counter track per target);
* process-target supervision — ``WORKER_SPAWN``/``WORKER_EXIT``/
  ``WORKER_CRASH`` instants marking worker-process lifecycle transitions;
* cluster-target connectivity — ``WORKER_CONNECT``/``WORKER_DISCONNECT``
  instants marking a socket-connected remote worker lane coming up (clock
  handshake complete) or going away (connection closed or torn);
* adaptive-policy decisions — ``POOL_SCALE`` instants recording every
  autoscaler grow/shrink verdict (``name`` is the action, ``arg`` the
  ``{"from", "to", "depth"}`` evidence), and ``PUMP_STEAL`` doubling as the
  work-stealing marker: its dict ``arg`` attributes the steal to a victim
  target and thief lane (see docs/TUNING.md).

Events executed on a *worker process* of a process-backed target are
recorded worker-side against the worker's own ``perf_counter_ns``, shipped
back with each result, and re-stamped onto this process's clock using the
per-worker offset measured at spawn (see :mod:`repro.dist.remote_obs`), so
one merged timeline spans every process.

Clock convention
----------------
All trace timestamps come from :func:`now_ns` — ``time.perf_counter_ns()``,
the highest-resolution monotonic clock Python offers — so events recorded on
different threads interleave correctly in one timeline.  Deadline math in
the runtime (``pump_until``, barrier watchdogs, ``wait_tag``) uniformly uses
``time.monotonic()``; the two are never mixed in one computation, and no
wall-clock (``time.time``) timestamps exist anywhere in the runtime.
"""

from __future__ import annotations

import enum
import time

__all__ = ["EventKind", "TraceEvent", "now_ns"]

#: The single clock source for trace timestamps (nanoseconds, monotonic).
now_ns = time.perf_counter_ns


class EventKind(enum.IntEnum):
    """One observable step in a region's (or barrier's) lifecycle."""

    REGION_SUBMIT = 1   # invoke_target_block entered for this region
    ENQUEUE = 2         # E.post(B): region/callable appended to a target queue
    DEQUEUE = 3         # an executor thread pulled the item off the queue
    EXEC_BEGIN = 4      # body started executing
    EXEC_END = 5        # body finished (arg: "completed" | "failed" | "cancelled")
    CANCEL = 6          # region withdrawn (shutdown / deadline / explicit)
    REJECT = 7          # bounded queue refused the post (arg: rejection policy)
    INLINE_ELIDE = 8    # thread-context awareness ran the block inline
    BARRIER_ENTER = 9   # await logical barrier started pumping
    PUMP_STEAL = 10     # the barrier executed another queued item
    BARRIER_EXIT = 11   # logical barrier released
    TAG_WAIT_BEGIN = 12  # wait(tag) join started
    TAG_WAIT_END = 13    # wait(tag) join finished
    QUEUE_DEPTH = 14     # queue-depth sample (arg: depth) — counter track
    WORKER_SPAWN = 15    # process target started a worker (arg: pid)
    WORKER_EXIT = 16     # worker process stopped cleanly (arg: pid)
    WORKER_CRASH = 17    # worker process died unexpectedly (arg: exitcode)
    # Appended (never renumbered): these values cross process boundaries in
    # pickled worker event logs, so existing values are frozen.
    WORKER_CONNECT = 18     # cluster lane connected + clock-synced (arg: pid)
    WORKER_DISCONNECT = 19  # cluster lane lost its connection (arg: detail)
    POOL_SCALE = 20         # autoscaler grew/shrank a pool (name: action,
                            # arg: {"from", "to", "depth"})

    @property
    def is_span_begin(self) -> bool:
        return self in (
            EventKind.EXEC_BEGIN, EventKind.BARRIER_ENTER, EventKind.TAG_WAIT_BEGIN
        )

    @property
    def is_span_end(self) -> bool:
        return self in (
            EventKind.EXEC_END, EventKind.BARRIER_EXIT, EventKind.TAG_WAIT_END
        )


class TraceEvent:
    """One recorded event.  Deliberately a plain slotted object, not a
    dataclass: these are allocated on the runtime's hot paths.

    Attributes
    ----------
    kind:    the :class:`EventKind`.
    ts:      nanoseconds from :func:`now_ns` (one clock for every thread).
    thread:  name of the emitting thread (stamped by its recorder).
    target:  virtual-target name, when the event concerns one.
    region:  the region's process-unique sequence number (``TargetRegion.seq``),
             or a synthetic id for GUI events; correlates the SUBMIT →
             ENQUEUE → DEQUEUE → EXEC chain and draws the async arrows.
    name:    human label (region name, ``file:line`` source stamp, tag, ...).
    arg:     kind-specific payload (queue depth, exec outcome, mode, ...).
    seq:     per-recorder append counter — stable sort tiebreak for events
             whose coarse-clock timestamps collide.
    """

    __slots__ = ("kind", "ts", "thread", "target", "region", "name", "arg", "seq")

    def __init__(
        self,
        kind: EventKind,
        ts: int,
        thread: str,
        target: str | None = None,
        region: int | None = None,
        name: str | None = None,
        arg: object = None,
        seq: int = 0,
    ) -> None:
        self.kind = kind
        self.ts = ts
        self.thread = thread
        self.target = target
        self.region = region
        self.name = name
        self.arg = arg
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        bits = [self.kind.name, f"ts={self.ts}", f"thread={self.thread!r}"]
        if self.target is not None:
            bits.append(f"target={self.target!r}")
        if self.region is not None:
            bits.append(f"region={self.region}")
        if self.name is not None:
            bits.append(f"name={self.name!r}")
        if self.arg is not None:
            bits.append(f"arg={self.arg!r}")
        return f"<TraceEvent {' '.join(bits)}>"
