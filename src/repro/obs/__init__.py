"""``repro.obs`` — structured event tracing and metrics for the runtime.

The observability layer of the reproduction: a typed event taxonomy
(:mod:`~repro.obs.events`), lock-free per-thread ring-buffer recorders
behind one process-global session (:mod:`~repro.obs.recorder`), Chrome
trace-event / plain-text exporters (:mod:`~repro.obs.exporters`), and
latency histograms computed from the event stream
(:mod:`~repro.obs.metrics`).

Quick use::

    import repro.obs as obs

    obs.enable()
    ... run the workload ...
    obs.disable()
    obs.write_chrome_trace("trace.json", obs.session().events())
    print(obs.format_metrics(obs.compute_metrics(obs.session().events())))

Or from the command line::

    python -m repro trace examples/traced_gui_pipeline.py -o trace.json

Knobs: the ``trace_enabled_var`` ICV on :class:`~repro.core.runtime.PjRuntime`,
or environment variables ``REPRO_TRACE=1`` / ``REPRO_TRACE_BUFFER=<n>``.
See ``docs/OBSERVABILITY.md`` for the full taxonomy and Perfetto workflow.
"""

from .events import EventKind, TraceEvent, now_ns
from .exporters import to_chrome_trace, to_text_timeline, write_chrome_trace
from .metrics import (
    LatencyStats,
    TargetMetrics,
    TraceMetrics,
    compute_metrics,
    format_metrics,
)
from .recorder import (
    DEFAULT_BUFFER_SIZE,
    NullRecorder,
    RingRecorder,
    TraceSession,
    disable,
    emit,
    enable,
    is_enabled,
    session,
)

__all__ = [
    "EventKind",
    "TraceEvent",
    "now_ns",
    "RingRecorder",
    "NullRecorder",
    "TraceSession",
    "DEFAULT_BUFFER_SIZE",
    "session",
    "enable",
    "disable",
    "is_enabled",
    "emit",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_text_timeline",
    "LatencyStats",
    "TargetMetrics",
    "TraceMetrics",
    "compute_metrics",
    "format_metrics",
]
