"""Trace exporters: Chrome trace-event JSON and a plain-text timeline.

:func:`to_chrome_trace` produces the Trace Event Format consumed by
``chrome://tracing`` and https://ui.perfetto.dev:

* one *process* row per virtual target (plus an ``app`` row for threads that
  belong to no target), named via ``process_name`` metadata events;
* ``X`` (complete) slices for region execution, ``await``-barrier pumping
  and ``wait(tag)`` joins;
* flow arrows (``s``/``f``) from each region's submit slice to its
  execution slice — the visual of Algorithm 1's post → dequeue → run path;
* ``C`` counter tracks for queue-depth samples;
* ``i`` instants for cancellations, rejections and inline elisions.

:func:`to_text_timeline` renders the same stream as an aligned, greppable
log for terminals and test assertions.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from .events import EventKind, TraceEvent

__all__ = ["to_chrome_trace", "write_chrome_trace", "to_text_timeline"]

_APP_TRACK = "app"

#: Instant-style kinds and their display names.
_INSTANTS = {
    EventKind.CANCEL: "cancel",
    EventKind.REJECT: "reject",
    EventKind.INLINE_ELIDE: "inline",
    EventKind.ENQUEUE: "enqueue",
    EventKind.DEQUEUE: "dequeue",
    EventKind.PUMP_STEAL: "pump-steal",
    EventKind.POOL_SCALE: "pool-scale",
    EventKind.WORKER_SPAWN: "worker-spawn",
    EventKind.WORKER_EXIT: "worker-exit",
    EventKind.WORKER_CRASH: "worker-crash",
    EventKind.WORKER_CONNECT: "worker-connect",
    EventKind.WORKER_DISCONNECT: "worker-disconnect",
}


def _us(ts_ns: int, origin_ns: int) -> float:
    return (ts_ns - origin_ns) / 1000.0


class _TrackTable:
    """Stable pid/tid assignment: one pid per virtual target, one tid per
    thread name within it."""

    def __init__(self) -> None:
        self._pids: dict[str, int] = {}
        self._tids: dict[tuple[int, str], int] = {}

    def pid(self, target: str | None) -> int:
        key = target if target is not None else _APP_TRACK
        if key not in self._pids:
            self._pids[key] = len(self._pids) + 1
        return self._pids[key]

    def tid(self, pid: int, thread: str) -> int:
        key = (pid, thread)
        if key not in self._tids:
            self._tids[key] = sum(1 for p, _ in self._tids if p == pid) + 1
        return self._tids[key]

    def metadata(self) -> list[dict]:
        meta: list[dict] = []
        for track, pid in self._pids.items():
            label = "app threads" if track == _APP_TRACK else f"target {track}"
            meta.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": label},
            })
        for (pid, thread), tid in self._tids.items():
            meta.append({
                "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
                "args": {"name": thread},
            })
        return meta


def to_chrome_trace(events: Iterable[TraceEvent]) -> dict:
    """Convert a merged event stream into a Chrome trace-event document."""
    evs = sorted(events, key=lambda e: (e.ts, e.seq))
    if not evs:
        return {"traceEvents": [], "displayTimeUnit": "ms"}
    origin = evs[0].ts
    tracks = _TrackTable()
    out: list[dict] = []

    # Pre-index per-region timestamps so submit slices can span submit→enqueue.
    enqueue_ts: dict[int, int] = {}
    exec_begin: dict[int, int] = {}
    for e in evs:
        if e.region is None:
            continue
        if e.kind is EventKind.ENQUEUE and e.region not in enqueue_ts:
            enqueue_ts[e.region] = e.ts
        elif e.kind is EventKind.EXEC_BEGIN and e.region not in exec_begin:
            exec_begin[e.region] = e.ts

    # Open-span stacks keyed by (thread, kind-pair).
    open_spans: dict[tuple[str, EventKind], list[TraceEvent]] = {}
    _PAIR = {
        EventKind.EXEC_END: EventKind.EXEC_BEGIN,
        EventKind.BARRIER_EXIT: EventKind.BARRIER_ENTER,
        EventKind.TAG_WAIT_END: EventKind.TAG_WAIT_BEGIN,
    }
    _SPAN_LABEL = {
        EventKind.EXEC_BEGIN: "run",
        EventKind.BARRIER_ENTER: "await barrier",
        EventKind.TAG_WAIT_BEGIN: "wait(tag)",
    }

    for e in evs:
        pid = tracks.pid(e.target)
        tid = tracks.tid(pid, e.thread)
        ts = _us(e.ts, origin)

        if e.kind is EventKind.REGION_SUBMIT:
            # A short slice on the submitting thread covering submit→enqueue
            # (or a sliver when the region ran inline / was rejected), plus
            # the outgoing half of the submit→exec flow arrow.
            end = enqueue_ts.get(e.region, e.ts) if e.region is not None else e.ts
            dur = max((end - e.ts) / 1000.0, 0.5)
            out.append({
                "name": f"submit {e.name or e.region}", "cat": "dispatch",
                "ph": "X", "ts": ts, "dur": dur, "pid": pid, "tid": tid,
                "args": _args(e),
            })
            if e.region is not None and e.region in exec_begin:
                out.append({
                    "name": "dispatch", "cat": "dispatch", "ph": "s",
                    "id": e.region, "ts": ts, "pid": pid, "tid": tid,
                })
        elif e.kind.is_span_begin:
            open_spans.setdefault((e.thread, e.kind), []).append(e)
        elif e.kind in _PAIR:
            stack = open_spans.get((e.thread, _PAIR[e.kind]), [])
            if not stack:
                continue  # unmatched end (begin fell off the ring) — skip
            begin = stack.pop()
            label = _SPAN_LABEL[_PAIR[e.kind]]
            name = begin.name or (str(begin.region) if begin.region is not None else "")
            # Spans open on the begin event's track: an exec span belongs to
            # the target that ran it even if the end event lost the context.
            bpid = tracks.pid(begin.target)
            btid = tracks.tid(bpid, begin.thread)
            slice_ev = {
                "name": f"{label} {name}".strip(), "cat": "region",
                "ph": "X", "ts": _us(begin.ts, origin),
                "dur": max((e.ts - begin.ts) / 1000.0, 0.5),
                "pid": bpid, "tid": btid, "args": _args(begin, e),
            }
            out.append(slice_ev)
            if begin.kind is EventKind.EXEC_BEGIN and begin.region is not None:
                out.append({
                    "name": "dispatch", "cat": "dispatch", "ph": "f",
                    "bp": "e", "id": begin.region,
                    "ts": _us(begin.ts, origin), "pid": bpid, "tid": btid,
                })
        elif e.kind is EventKind.QUEUE_DEPTH:
            out.append({
                "name": "queue depth", "cat": "telemetry", "ph": "C",
                "ts": ts, "pid": pid, "tid": 0,
                "args": {"depth": e.arg if isinstance(e.arg, (int, float)) else 0},
            })
        elif e.kind in _INSTANTS:
            out.append({
                "name": f"{_INSTANTS[e.kind]} {e.name or ''}".strip(),
                "cat": "dispatch", "ph": "i", "s": "t",
                "ts": ts, "pid": pid, "tid": tid, "args": _args(e),
            })

    return {"traceEvents": tracks.metadata() + out, "displayTimeUnit": "ms"}


#: Friendlier args keys for specific kinds' payloads.
_ARG_KEY = {
    EventKind.EXEC_END: "outcome",
    EventKind.REGION_SUBMIT: "mode",
    EventKind.CANCEL: "reason",
}


def _args(*events: TraceEvent) -> dict:
    args: dict = {}
    for e in events:
        if e.region is not None:
            args.setdefault("region", e.region)
        if e.arg is not None:
            if isinstance(e.arg, dict):
                args.update(e.arg)
            else:
                args.setdefault(_ARG_KEY.get(e.kind, e.kind.name.lower()), e.arg)
    return args


def write_chrome_trace(path_or_file: str | IO[str], events: Iterable[TraceEvent]) -> None:
    """Serialize :func:`to_chrome_trace` output to *path_or_file* as JSON."""
    doc = to_chrome_trace(events)
    if hasattr(path_or_file, "write"):
        json.dump(doc, path_or_file)  # type: ignore[arg-type]
    else:
        with open(path_or_file, "w", encoding="utf-8") as fh:
            json.dump(doc, fh)


def to_text_timeline(events: Iterable[TraceEvent]) -> str:
    """An aligned, greppable text rendering of the event stream.

    One line per event — relative milliseconds, thread, target, kind,
    region/label, payload — followed by per-kind totals.
    """
    evs = sorted(events, key=lambda e: (e.ts, e.seq))
    if not evs:
        return "(no events recorded)"
    origin = evs[0].ts
    lines: list[str] = []
    counts: dict[str, int] = {}
    for e in evs:
        counts[e.kind.name] = counts.get(e.kind.name, 0) + 1
        rel_ms = (e.ts - origin) / 1e6
        bits = [
            f"[+{rel_ms:10.3f}ms]",
            f"{e.thread:<22}",
            f"{(e.target or '-'):<10}",
            f"{e.kind.name:<14}",
        ]
        if e.region is not None:
            bits.append(f"#{e.region}")
        if e.name:
            bits.append(str(e.name))
        if e.arg is not None:
            bits.append(f"({e.arg})")
        lines.append(" ".join(bits).rstrip())
    total_ms = (evs[-1].ts - origin) / 1e6
    summary = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
    lines.append("")
    lines.append(f"{len(evs)} events over {total_ms:.3f} ms: {summary}")
    return "\n".join(lines)
