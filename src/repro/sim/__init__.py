"""Discrete-event simulation substrate regenerating the paper's evaluation.

Layers: DES core (:mod:`des`), queueing primitives (:mod:`resources`),
machine model with oversubscription (:mod:`machine`), simulated threads and
the event-dispatch loop (:mod:`threadsim`), kernel cost models
(:mod:`costmodel`), workload generators (:mod:`workload`), metrics
(:mod:`metrics`), and the two experiment drivers — GUI event handling
(:mod:`approaches`, Figures 7-8) and the HTTP service (:mod:`httpserver`,
Figure 9).
"""

from .approaches import APPROACHES, GuiBenchConfig, GuiBenchResult, run_gui_benchmark
from .costmodel import (
    FORK_JOIN_OVERHEAD,
    GUI_KERNELS,
    KernelCostModel,
    calibrate_from_host,
    kernel_task,
    parallel_kernel_task,
)
from .des import AllOf, AnyOf, Process, SimEvent, SimulationError, Simulator
from .httpserver import (
    DEFAULT_HTTP_KERNEL,
    SERVERS,
    HttpBenchConfig,
    HttpBenchResult,
    run_http_benchmark,
)
from .machine import Machine, MachineConfig
from .metrics import ResponseStats, Series, ThroughputMeter
from .resources import Resource, Store
from .threadsim import AwaitBlock, SimEventLoop, SimThreadPool, ThreadCosts, spawn_thread
from .trace import Span, TraceRecorder, render_ascii
from .workload import fire_open_loop, run_closed_loop_users

__all__ = [
    "APPROACHES", "GuiBenchConfig", "GuiBenchResult", "run_gui_benchmark",
    "FORK_JOIN_OVERHEAD", "GUI_KERNELS", "KernelCostModel",
    "calibrate_from_host", "kernel_task", "parallel_kernel_task",
    "AllOf", "AnyOf", "Process", "SimEvent", "SimulationError", "Simulator",
    "DEFAULT_HTTP_KERNEL", "SERVERS", "HttpBenchConfig", "HttpBenchResult",
    "run_http_benchmark",
    "Machine", "MachineConfig",
    "ResponseStats", "Series", "ThroughputMeter",
    "Resource", "Store",
    "AwaitBlock", "SimEventLoop", "SimThreadPool", "ThreadCosts", "spawn_thread",
    "Span", "TraceRecorder", "render_ascii",
    "fire_open_loop", "run_closed_loop_users",
]
