"""Execution tracing for the simulator: spans and ASCII Gantt timelines.

Figure 1 of the paper is a hand-drawn timeline of EDT/worker occupancy; this
module lets the simulator draw the real thing from a run.  A
:class:`TraceRecorder` collects ``(lane, label, start, end)`` spans —
the event loop and thread pools record into it when given one — and
:func:`render_ascii` scales them onto a character grid.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Span", "TraceRecorder", "render_ascii"]


@dataclass(frozen=True)
class Span:
    lane: str
    label: str
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError("span ends before it starts")

    @property
    def duration(self) -> float:
        return self.end - self.start


class TraceRecorder:
    """Collects execution spans from simulated threads."""

    def __init__(self) -> None:
        self.spans: list[Span] = []

    def record(self, lane: str, label: str, start: float, end: float) -> None:
        self.spans.append(Span(lane, label, start, end))

    def lanes(self) -> list[str]:
        seen: dict[str, None] = {}
        for s in self.spans:
            seen.setdefault(s.lane, None)
        return list(seen)

    def lane_busy_time(self, lane: str) -> float:
        """Total busy time of a lane, overlap-merged (spans on one simulated
        thread should not overlap, but merging makes the metric robust)."""
        intervals = sorted(
            (s.start, s.end) for s in self.spans if s.lane == lane
        )
        total = 0.0
        cur_start: float | None = None
        cur_end = 0.0
        for start, end in intervals:
            if cur_start is None or start > cur_end:
                if cur_start is not None:
                    total += cur_end - cur_start
                cur_start, cur_end = start, end
            else:
                cur_end = max(cur_end, end)
        if cur_start is not None:
            total += cur_end - cur_start
        return total

    @property
    def horizon(self) -> float:
        return max((s.end for s in self.spans), default=0.0)


def render_ascii(
    recorder: TraceRecorder,
    width: int = 72,
    until: float | None = None,
) -> str:
    """One row per lane; ``█`` marks busy columns, ``·`` idle.

    Deterministic and monospaced, suitable for golden-output tests and for
    embedding in benchmark reports.
    """
    if width < 10:
        raise ValueError("width too small to render")
    horizon = until if until is not None else recorder.horizon
    if horizon <= 0:
        return "(empty trace)"
    lanes = recorder.lanes()
    label_w = max((len(l) for l in lanes), default=0)
    scale = width / horizon
    lines = []
    for lane in lanes:
        cells = [" "] * width
        for span in recorder.spans:
            if span.lane != lane:
                continue
            lo = min(width - 1, int(span.start * scale))
            hi = min(width, max(lo + 1, int(span.end * scale + 0.5)))
            for i in range(lo, hi):
                cells[i] = "█"
        cells = [c if c == "█" else "·" for c in cells]
        lines.append(f"{lane:>{label_w}} |{''.join(cells)}|")
    lines.append(f"{'':>{label_w}}  0{'':{width - 8}}{horizon:8.3f}s")
    return "\n".join(lines)
