"""Measurement: response-time statistics and throughput.

The paper's two metrics:

* §V-A — *"The response time shows the time flow from the event firing to
  the finish of its event handling.  The average response time of all events
  shows a general efficiency of processing of event handling."*
* §V-B — *"The throughput measures the application's ability to process
  requests."*
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

__all__ = ["ResponseStats", "ThroughputMeter", "Series"]


class ResponseStats:
    """Accumulates (fired, finished) pairs and derives the paper's metrics."""

    def __init__(self) -> None:
        self._samples: list[float] = []
        self.first_fired: float | None = None
        self.last_finished: float | None = None

    def record(self, fired_at: float, finished_at: float) -> None:
        if finished_at < fired_at:
            raise ValueError("finish precedes fire")
        self._samples.append(finished_at - fired_at)
        if self.first_fired is None or fired_at < self.first_fired:
            self.first_fired = fired_at
        if self.last_finished is None or finished_at > self.last_finished:
            self.last_finished = finished_at

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        if not self._samples:
            raise ValueError("no samples")
        return sum(self._samples) / len(self._samples)

    @property
    def maximum(self) -> float:
        if not self._samples:
            raise ValueError("no samples")
        return max(self._samples)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, p in [0, 100]."""
        if not self._samples:
            raise ValueError("no samples")
        if not 0.0 <= p <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        data = sorted(self._samples)
        if len(data) == 1:
            return data[0]
        rank = p / 100.0 * (len(data) - 1)
        lo = math.floor(rank)
        hi = math.ceil(rank)
        if lo == hi:
            return data[lo]
        frac = rank - lo
        return data[lo] * (1 - frac) + data[hi] * frac

    @property
    def median(self) -> float:
        return self.percentile(50.0)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self._samples:
            return "<ResponseStats empty>"
        return f"<ResponseStats n={self.count} mean={self.mean * 1000:.1f}ms>"


class ThroughputMeter:
    """Counts completions over a virtual-time window."""

    def __init__(self) -> None:
        self.completed = 0
        self.started_at: float | None = None
        self.finished_at: float | None = None

    def mark_start(self, now: float) -> None:
        if self.started_at is None:
            self.started_at = now

    def mark_completion(self, now: float) -> None:
        self.completed += 1
        self.finished_at = now

    @property
    def elapsed(self) -> float:
        if self.started_at is None or self.finished_at is None:
            return 0.0
        return self.finished_at - self.started_at

    @property
    def throughput(self) -> float:
        """Completions per virtual second."""
        if self.elapsed <= 0:
            return 0.0
        return self.completed / self.elapsed


@dataclass
class Series:
    """One plotted line: an approach's y-values over the swept x-values."""

    label: str
    x: list[float] = field(default_factory=list)
    y: list[float] = field(default_factory=list)

    def add(self, x: float, y: float) -> None:
        self.x.append(x)
        self.y.append(y)

    def as_rows(self) -> list[tuple[float, float]]:
        return list(zip(self.x, self.y))
