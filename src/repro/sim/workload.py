"""Workload generators: open-loop event streams and closed-loop virtual users.

* §V-A uses an **open-loop** load: events fire at a fixed request rate
  (10..100 requests/sec) regardless of whether earlier events finished —
  exactly what makes a saturated sequential EDT's queue blow up.
* §V-B uses a **closed-loop** load: "100 virtual users, with each user
  sending a constant number of requests", each user waiting for its response
  before sending the next.
"""

from __future__ import annotations

from typing import Callable, Generator

import numpy as np

from .des import SimEvent, Simulator

__all__ = ["fire_open_loop", "run_closed_loop_users"]


def fire_open_loop(
    sim: Simulator,
    rate: float,
    count: int,
    fire: Callable[[int], None],
    *,
    poisson: bool = False,
    seed: int = 0,
) -> list[float]:
    """Schedule *count* event firings at *rate* per second.

    Deterministic uniform spacing by default (the paper's constant request
    loads); ``poisson=True`` draws exponential inter-arrivals from a seeded
    generator for sensitivity studies.  Returns the planned fire times.
    """
    if rate <= 0:
        raise ValueError("rate must be positive")
    if count < 0:
        raise ValueError("count cannot be negative")
    if poisson:
        rng = np.random.default_rng(seed)
        gaps = rng.exponential(1.0 / rate, size=count)
        times = list(np.cumsum(gaps))
    else:
        times = [i / rate for i in range(count)]
    for i, t in enumerate(times):
        sim.schedule(t, lambda i=i: fire(i))
    return times


def run_closed_loop_users(
    sim: Simulator,
    n_users: int,
    requests_per_user: int,
    send_request: Callable[[int, int], SimEvent],
    *,
    on_response: Callable[[int, int, float], None] | None = None,
    ramp_up: float = 0.0,
) -> list:
    """Start *n_users* virtual users, each sending *requests_per_user*
    back-to-back requests (think time zero).

    ``send_request(user, seq)`` must return the response completion event.
    ``ramp_up`` spaces user start times evenly over that many seconds so the
    first instant is not an artificial thundering herd.
    """
    if n_users < 1 or requests_per_user < 1:
        raise ValueError("need at least one user and one request")

    def user(uid: int) -> Generator:
        if ramp_up > 0:
            yield ramp_up * uid / n_users
        for seq in range(requests_per_user):
            response = send_request(uid, seq)
            yield response
            if on_response is not None:
                on_response(uid, seq, sim.now)

    return [sim.process(user(u), name=f"user-{u}") for u in range(n_users)]
