"""Discrete-event simulation core: virtual clock, events, processes.

The paper's performance results come from real Java threads on real silicon;
under CPython's GIL those effects cannot be measured directly, so the
evaluation layer reproduces them on a deterministic virtual-time simulator
(the substitution is documented in DESIGN.md).  This module is the kernel:

* :class:`Simulator` — a time-ordered event heap with a monotone clock;
* :class:`SimEvent` — a one-shot occurrence processes can wait on;
* :class:`Process` — a generator-based coroutine; ``yield`` suspends it on a
  delay (number), an event, or another process.

Determinism: ties in time break by schedule order (a monotone sequence
number), so runs are exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, Iterable

__all__ = ["SimulationError", "SimEvent", "Process", "Simulator", "AllOf", "AnyOf"]


class SimulationError(RuntimeError):
    """Invalid simulator usage (time travel, double-firing an event, ...)."""


class SimEvent:
    """A one-shot occurrence in virtual time.

    Processes wait by ``yield``-ing the event; firing it (:meth:`succeed` or
    :meth:`fail`) resumes every waiter at the current simulation time.
    """

    __slots__ = ("sim", "name", "_fired", "_value", "_error", "_waiters", "fired_at")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._fired = False
        self._value: Any = None
        self._error: BaseException | None = None
        self._waiters: list[Callable[["SimEvent"], None]] = []
        self.fired_at: float | None = None

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def value(self) -> Any:
        if not self._fired:
            raise SimulationError(f"event {self.name!r} has not fired yet")
        if self._error is not None:
            raise self._error
        return self._value

    @property
    def error(self) -> BaseException | None:
        return self._error

    def succeed(self, value: Any = None) -> "SimEvent":
        return self._fire(value, None)

    def fail(self, error: BaseException) -> "SimEvent":
        return self._fire(None, error)

    def _fire(self, value: Any, error: BaseException | None) -> "SimEvent":
        if self._fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self._fired = True
        self._value = value
        self._error = error
        self.fired_at = self.sim.now
        waiters, self._waiters = self._waiters, []
        for cb in waiters:
            cb(self)
        return self

    def on_fire(self, cb: Callable[["SimEvent"], None]) -> None:
        """Run *cb(event)* when the event fires (immediately if already has)."""
        if self._fired:
            cb(self)
        else:
            self._waiters.append(cb)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "fired" if self._fired else "pending"
        return f"<SimEvent {self.name!r} {state}>"


def AllOf(sim: "Simulator", events: Iterable[SimEvent]) -> SimEvent:
    """An event that fires once every input event has fired."""
    events = list(events)
    combined = SimEvent(sim, name="all_of")
    remaining = len(events)
    if remaining == 0:
        combined.succeed([])
        return combined
    results: list[Any] = [None] * remaining

    def make_cb(i: int):
        def cb(ev: SimEvent) -> None:
            nonlocal remaining
            results[i] = ev._value
            if ev._error is not None and not combined.fired:
                combined.fail(ev._error)
                return
            remaining -= 1
            if remaining == 0 and not combined.fired:
                combined.succeed(results)

        return cb

    for i, ev in enumerate(events):
        ev.on_fire(make_cb(i))
    return combined


def AnyOf(sim: "Simulator", events: Iterable[SimEvent]) -> SimEvent:
    """An event that fires when the *first* input event fires.

    Its value is the triggering event object (so the waiter can tell which
    one won); failures propagate from the winner.  Later firings of the
    other inputs are ignored.
    """
    events = list(events)
    combined = SimEvent(sim, name="any_of")
    if not events:
        raise SimulationError("AnyOf needs at least one event")

    def cb(ev: SimEvent) -> None:
        if combined.fired:
            return
        if ev._error is not None:
            combined.fail(ev._error)
        else:
            combined.succeed(ev)

    for ev in events:
        ev.on_fire(cb)
    return combined


class Process:
    """A generator-based simulated activity.

    The generator may yield:

    * a number — sleep that many virtual seconds;
    * a :class:`SimEvent` — wait for it (its value is sent back in);
    * another :class:`Process` — wait for its completion (its return value is
      sent back in).

    The process's own :attr:`done` event fires with the generator's return
    value, or fails with its exception.
    """

    __slots__ = ("sim", "gen", "name", "done")

    def __init__(self, sim: "Simulator", gen: Generator, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(gen).__name__} "
                "(did you forget a yield?)"
            )
        self.sim = sim
        self.gen = gen
        self.name = name or getattr(gen, "__name__", "process")
        self.done = SimEvent(sim, name=f"{self.name}.done")
        sim.schedule(0.0, lambda: self._step(None, None))

    def _step(self, value: Any, error: BaseException | None) -> None:
        try:
            if error is not None:
                yielded = self.gen.throw(error)
            else:
                yielded = self.gen.send(value)
        except StopIteration as stop:
            self.done.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - surfaces via done event
            self.done.fail(exc)
            return
        self._wait_on(yielded)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                self._step(None, SimulationError("cannot sleep a negative delay"))
                return
            self.sim.schedule(float(yielded), lambda: self._step(None, None))
        elif isinstance(yielded, SimEvent):
            yielded.on_fire(self._resume_from_event)
        elif isinstance(yielded, Process):
            yielded.done.on_fire(self._resume_from_event)
        else:
            self._step(
                None,
                SimulationError(
                    f"process {self.name!r} yielded unsupported {yielded!r}"
                ),
            )

    def _resume_from_event(self, ev: SimEvent) -> None:
        # Resume on the scheduler, not inside the firing call stack, to keep
        # event-fire ordering FIFO and stack depth bounded.
        self.sim.schedule(0.0, lambda: self._step(ev._value, ev._error))


class Simulator:
    """The event heap and clock."""

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None] | None]] = []
        self._seq = itertools.count()
        self._handles: dict[int, bool] = {}

    # ------------------------------------------------------------ scheduling

    def schedule(self, delay: float, fn: Callable[[], None]) -> int:
        """Run *fn* after *delay* virtual seconds; returns a cancel handle."""
        if delay < 0:
            raise SimulationError("cannot schedule into the past")
        seq = next(self._seq)
        heapq.heappush(self._heap, (self.now + delay, seq, fn))
        self._handles[seq] = True
        return seq

    def cancel(self, handle: int) -> None:
        """Cancel a scheduled callback (no-op if already run)."""
        self._handles[handle] = False

    def event(self, name: str = "") -> SimEvent:
        return SimEvent(self, name)

    def timeout(self, delay: float, value: Any = None, name: str = "timeout") -> SimEvent:
        """An event that fires after *delay*."""
        ev = SimEvent(self, name)
        self.schedule(delay, lambda: ev.succeed(value))
        return ev

    def process(self, gen: Generator, name: str = "") -> Process:
        return Process(self, gen, name)

    # --------------------------------------------------------------- running

    def step(self) -> bool:
        """Execute the next scheduled callback; False if the heap is empty."""
        while self._heap:
            t, seq, fn = heapq.heappop(self._heap)
            alive = self._handles.pop(seq, False)
            if not alive:
                continue
            if t < self.now:
                raise SimulationError("event heap corrupted: time went backwards")
            self.now = t
            fn()
            return True
        return False

    def run(self, until: float | None = None, max_events: int = 10_000_000) -> float:
        """Run until the heap drains, *until* is reached, or the safety cap.

        Returns the final clock value.
        """
        count = 0
        while self._heap:
            t = self._heap[0][0]
            if until is not None and t > until:
                self.now = until
                return self.now
            if not self.step():
                break
            count += 1
            if count > max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway simulation?"
                )
        if until is not None and self.now < until:
            self.now = until
        return self.now

    @property
    def pending(self) -> int:
        return sum(1 for alive in self._handles.values() if alive)
