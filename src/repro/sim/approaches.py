"""Event-handling approach models for the GUI benchmark (paper §V-A).

Each approach is a different structure for the same logical handler —
pre-update on the EDT, a kernel computation, post-update on the EDT — and a
response completes when the post-update finishes (the paper measures "the
time flow from the event firing to the finish of its event handling").

========================  ====================================================
``sequential``            everything inline on the EDT (Figure 1(i))
``swingworker``           offload to the shared 10-thread SwingWorker pool,
                          ``done()`` posted back to the EDT (Figure 3)
``executor``              offload to a fixed ExecutorService pool, completion
                          posted via invokeLater (Figure 1(ii))
``thread_per_request``    a fresh thread per event (§II-A baseline)
``pyjama_async``          ``target virtual(worker) await`` + continuation on
                          the EDT (the paper's model, Figure 6)
``sync_parallel``         EDT runs the kernel as a fork-join team and stays
                          blocked ("the EDT … is actually unresponsive for a
                          longer time", §V-A)
``async_parallel``        offload to a worker that runs the kernel as a
                          fork-join team (asynchronous parallel)
========================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator

from .costmodel import GUI_KERNELS, KernelCostModel, kernel_task, parallel_kernel_task
from .des import SimEvent, Simulator
from .machine import Machine, MachineConfig
from .metrics import ResponseStats
from .threadsim import AwaitBlock, SimEventLoop, SimThreadPool, ThreadCosts, spawn_thread
from .workload import fire_open_loop

__all__ = ["GuiBenchConfig", "GuiBenchResult", "APPROACHES", "run_gui_benchmark"]

#: The manual-offloading approaches the paper's first evaluation compares,
#: plus the baselines its background section motivates.
APPROACHES = (
    "sequential",
    "swingworker",
    "executor",
    "thread_per_request",
    "pyjama_async",
    "sync_parallel",
    "async_parallel",
)

#: Directive interpretation overhead per pragma (the paper's model adds a
#: thin runtime layer over the raw executor; measured small).
DIRECTIVE_OVERHEAD = 2e-6


@dataclass
class GuiBenchConfig:
    """One benchmark cell: an approach under a request load."""

    approach: str = "pyjama_async"
    kernel: KernelCostModel = field(default_factory=lambda: GUI_KERNELS["crypt"])
    rate: float = 30.0                 # requests/second
    n_events: int = 200
    cores: int = 4                     # the paper's i5-3570 desktop
    switch_overhead: float = 0.12
    worker_pool: int = 4               # executor / pyjama worker target size
    swingworker_pool: int = 10         # Java's hard-coded SwingWorker bound
    parallel_threads: int = 3          # "in default using 3 worker threads"
    gui_update: float = 0.5e-3         # pre/post widget updates on the EDT
    costs: ThreadCosts = field(default_factory=ThreadCosts)
    #: 'continuation' = idealised await (what the figures assume);
    #: 'pumping' = Algorithm 1's nested message loops (the real runtime).
    await_style: str = "continuation"

    def __post_init__(self) -> None:
        if self.approach not in APPROACHES:
            raise ValueError(
                f"unknown approach {self.approach!r}; choose from {APPROACHES}"
            )


@dataclass
class GuiBenchResult:
    """Both §V-A signals for one cell.

    * ``response`` — fire → handling finished (the paper's headline metric);
    * ``dispatch`` — fire → handler starts on the EDT.  This is the
      *responsiveness* signal: a blocked EDT (sequential, sync-parallel)
      shows up here even when raw response times look fine.
    * ``edt_busy_fraction`` — share of the run the EDT spent executing
      handler code (the "idleness of the EDT" the paper says must be
      maximised).
    """

    response: ResponseStats
    dispatch: ResponseStats
    edt_busy_fraction: float


@dataclass
class _World:
    sim: Simulator
    machine: Machine
    edt: SimEventLoop
    pools: dict[str, SimThreadPool]
    stats: ResponseStats
    dispatch: ResponseStats
    cfg: GuiBenchConfig


def _build_world(cfg: GuiBenchConfig) -> _World:
    sim = Simulator()
    machine = Machine(
        sim, MachineConfig(cores=cfg.cores, switch_overhead=cfg.switch_overhead)
    )
    edt = SimEventLoop(sim, machine, costs=cfg.costs, await_style=cfg.await_style)
    pools: dict[str, SimThreadPool] = {}
    if cfg.approach in ("executor", "pyjama_async", "async_parallel"):
        pools["worker"] = SimThreadPool(
            sim, machine, cfg.worker_pool, name="worker", costs=cfg.costs
        )
    if cfg.approach == "swingworker":
        pools["swing"] = SimThreadPool(
            sim, machine, cfg.swingworker_pool, name="swing", costs=cfg.costs
        )
    return _World(sim, machine, edt, pools, ResponseStats(), ResponseStats(), cfg)


# ---------------------------------------------------------------- handlers
#
# Every handler factory returns a generator the EDT dispatches.  `finish`
# must be called exactly once per event, at the moment the paper's response
# clock stops.


def _gui_update(w: _World) -> SimEvent:
    return w.machine.execute(w.cfg.gui_update, name="gui-update")


def _sequential(w: _World, finish) -> Generator:
    yield _gui_update(w)
    yield w.machine.execute(w.cfg.kernel.serial_time, name="kernel")
    yield _gui_update(w)
    finish()


def _swingworker(w: _World, finish) -> Generator:
    yield _gui_update(w)
    yield w.machine.execute(w.cfg.costs.queue_handoff, name="submit")
    background_done = w.pools["swing"].submit(kernel_task(w.machine, w.cfg.kernel))

    def done_handler() -> Generator:
        yield _gui_update(w)
        finish()

    # SwingWorker posts done() to the EDT when the background work ends.
    background_done.on_fire(lambda _ev: w.edt.post(done_handler))


def _executor(w: _World, finish) -> Generator:
    yield _gui_update(w)
    yield w.machine.execute(w.cfg.costs.queue_handoff, name="submit")
    background_done = w.pools["worker"].submit(kernel_task(w.machine, w.cfg.kernel))

    def completion() -> Generator:  # SwingUtilities.invokeLater(...)
        yield _gui_update(w)
        finish()

    background_done.on_fire(lambda _ev: w.edt.post(completion))


def _thread_per_request(w: _World, finish) -> Generator:
    yield _gui_update(w)
    done = spawn_thread(
        w.sim, w.machine, kernel_task(w.machine, w.cfg.kernel), costs=w.cfg.costs
    )

    def completion() -> Generator:
        yield _gui_update(w)
        finish()

    done.on_fire(lambda _ev: w.edt.post(completion))


def _pyjama_async(w: _World, finish) -> Generator:
    # `target virtual(worker) await`: offload, logical barrier, sequential
    # continuation — no callback plumbing in user code.
    yield _gui_update(w)
    yield w.machine.execute(
        w.cfg.costs.queue_handoff + DIRECTIVE_OVERHEAD, name="invoke-target"
    )
    block = w.pools["worker"].submit(kernel_task(w.machine, w.cfg.kernel))
    yield AwaitBlock(block)
    yield _gui_update(w)
    finish()


def _sync_parallel(w: _World, finish) -> Generator:
    # The EDT is the team master and stays in the region until the join.
    yield _gui_update(w)
    task = parallel_kernel_task(
        w.sim, w.machine, w.cfg.kernel, w.cfg.parallel_threads + 1
    )
    yield w.sim.process(task(), name="omp-parallel")
    yield _gui_update(w)
    finish()


def _async_parallel(w: _World, finish) -> Generator:
    yield _gui_update(w)
    yield w.machine.execute(
        w.cfg.costs.queue_handoff + DIRECTIVE_OVERHEAD, name="invoke-target"
    )
    task = parallel_kernel_task(w.sim, w.machine, w.cfg.kernel, w.cfg.parallel_threads)
    block = w.pools["worker"].submit(task)
    yield AwaitBlock(block)
    yield _gui_update(w)
    finish()


_HANDLERS = {
    "sequential": _sequential,
    "swingworker": _swingworker,
    "executor": _executor,
    "thread_per_request": _thread_per_request,
    "pyjama_async": _pyjama_async,
    "sync_parallel": _sync_parallel,
    "async_parallel": _async_parallel,
}


# ------------------------------------------------------------------ driver


def run_gui_benchmark(cfg: GuiBenchConfig) -> GuiBenchResult:
    """Run one (approach, kernel, rate) cell.

    Deterministic: same config → identical statistics.
    """
    w = _build_world(cfg)
    handler = _HANDLERS[cfg.approach]

    def fire(i: int) -> None:
        fired_at = w.sim.now

        def finish() -> None:
            w.stats.record(fired_at, w.sim.now)

        def dispatched() -> Generator:
            w.dispatch.record(fired_at, w.sim.now)
            result = yield from handler(w, finish)
            return result

        w.edt.post(dispatched)

    fire_open_loop(w.sim, cfg.rate, cfg.n_events, fire)
    w.sim.run()
    if w.stats.count != cfg.n_events:
        raise RuntimeError(
            f"lost events: {w.stats.count}/{cfg.n_events} completed "
            f"({cfg.approach} @ {cfg.rate}/s)"
        )
    duration = w.stats.last_finished or 1.0
    return GuiBenchResult(
        response=w.stats,
        dispatch=w.dispatch,
        edt_busy_fraction=min(1.0, w.edt.busy_time / duration),
    )
