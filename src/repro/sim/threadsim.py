"""Simulated threads: pools, thread-per-request spawning, and the EDT.

A *simulated task* is a generator yielding DES commands (delays, events,
processes); pools run tasks from a FIFO queue exactly like
:class:`repro.core.targets.WorkerTarget` does on real threads.  Costs
(thread spawn, queue hand-off, EDT post) are explicit parameters so the
approach models in :mod:`repro.sim.approaches` stay honest about where time
goes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator

from .des import SimEvent, Simulator
from .machine import Machine
from .resources import Store
from .trace import TraceRecorder

__all__ = ["ThreadCosts", "SimThreadPool", "SimEventLoop", "AwaitBlock", "spawn_thread"]

TaskFactory = Callable[[], Generator]


@dataclass(frozen=True)
class ThreadCosts:
    """Fixed costs of threading operations (virtual seconds).

    Magnitudes follow common JVM measurements: spawning a platform thread is
    ~100 µs; a queue hand-off (submit + wake) ~5 µs; a context hop onto the
    EDT ~10 µs.
    """

    thread_spawn: float = 100e-6
    queue_handoff: float = 5e-6
    edt_post: float = 10e-6


class SimThreadPool:
    """A fixed pool of simulated worker threads sharing one FIFO queue."""

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        n_threads: int,
        name: str = "pool",
        costs: ThreadCosts | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("pool needs at least one thread")
        self.sim = sim
        self.machine = machine
        self.n_threads = n_threads
        self.name = name
        self.costs = costs or ThreadCosts()
        self.trace = trace
        self._queue: Store = Store(sim, name=f"{name}.queue")
        self._workers = [
            sim.process(self._worker_loop(i), name=f"{name}-{i}")
            for i in range(n_threads)
        ]
        self.completed = 0

    def _worker_loop(self, index: int) -> Generator:
        while True:
            factory, done = yield self._queue.get()
            started = self.sim.now
            # The hand-off wake-up costs CPU on the receiving thread.
            yield self.machine.execute(self.costs.queue_handoff, name=f"{self.name}.handoff")
            try:
                result = yield self.sim.process(factory(), name=f"{self.name}-task")
            except Exception as exc:  # noqa: BLE001 - surfaces via done event
                self.completed += 1
                self._trace_task(index, started)
                done.fail(exc)
            else:
                self.completed += 1
                self._trace_task(index, started)
                done.succeed(result)

    def _trace_task(self, index: int, started: float) -> None:
        if self.trace is not None:
            self.trace.record(
                f"{self.name}-{index}", f"task{self.completed}", started, self.sim.now
            )

    def submit(self, factory: TaskFactory) -> SimEvent:
        """Queue a task; returns its completion event."""
        done = SimEvent(self.sim, name=f"{self.name}.task")
        self._queue.put((factory, done))
        return done

    @property
    def queue_length(self) -> int:
        return len(self._queue)


def spawn_thread(
    sim: Simulator,
    machine: Machine,
    factory: TaskFactory,
    costs: ThreadCosts | None = None,
    name: str = "thread",
) -> SimEvent:
    """Thread-per-request: pay the spawn cost, then run the task."""
    costs = costs or ThreadCosts()
    done = SimEvent(sim, name=f"{name}.done")

    def runner() -> Generator:
        yield machine.execute(costs.thread_spawn, name=f"{name}.spawn")
        result = yield sim.process(factory(), name=name)
        return result

    proc = sim.process(runner(), name=name)
    proc.done.on_fire(
        lambda ev: done.fail(ev.error) if ev.error else done.succeed(ev._value)
    )
    return done


class AwaitBlock:
    """Marker a handler yields to enter the paper's *logical barrier*.

    The event loop suspends the handler, keeps dispatching other queued
    events, and re-enqueues the handler's continuation when the block's
    completion event fires — Algorithm 1 lines 13-16 in virtual time.
    """

    __slots__ = ("event",)

    def __init__(self, event: SimEvent) -> None:
        self.event = event


class SimEventLoop:
    """The simulated event-dispatch thread.

    One handler segment at a time, FIFO.  Handlers are generators; ordinary
    yields (delays, machine bursts, events) keep the EDT busy — that is the
    blocking the paper's Figure 1(i) shows.  Yielding ``AwaitBlock(ev)``
    enters the logical barrier, whose semantics depend on ``await_style``:

    * ``"continuation"`` (default) — the loop is released; when *ev* fires
      the handler's continuation is appended to the queue like any
      completion event.  This is the idealised model the figures assume.
    * ``"pumping"`` — the faithful Algorithm 1 semantics: the loop processes
      other queued events *nested inside* the waiting handler
      ("T.processAnotherEventHandler()"), so continuations unwind LIFO when
      awaits overlap — the measured real-thread behaviour (see
      ``tests/integration/test_await_nesting.py``).
    """

    def __init__(
        self,
        sim: Simulator,
        machine: Machine,
        name: str = "edt",
        costs: ThreadCosts | None = None,
        trace: TraceRecorder | None = None,
        await_style: str = "continuation",
    ) -> None:
        if await_style not in ("continuation", "pumping"):
            raise ValueError("await_style must be 'continuation' or 'pumping'")
        self.sim = sim
        self.machine = machine
        self.name = name
        self.costs = costs or ThreadCosts()
        self.trace = trace
        self.await_style = await_style
        self._queue: Store = Store(sim, name=f"{name}.queue")
        self.dispatched = 0
        self.busy_time = 0.0
        self.max_pump_depth = 0
        self._pump_depth = 0
        self._loop = sim.process(self._run(), name=name)

    # ------------------------------------------------------------- posting

    def post(self, factory: TaskFactory) -> SimEvent:
        """Queue a handler generator; returns its completion event (fires
        when the handler — including awaited continuations — finishes)."""
        done = SimEvent(self.sim, name=f"{self.name}.handler")
        self._queue.put((factory(), done, None, None))
        return done

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    # ----------------------------------------------------------------- loop

    def _run(self) -> Generator:
        while True:
            item = yield self._queue.get()
            yield from self._run_item(item)

    def _run_item(self, item) -> Generator:
        gen, done, send_value, throw_error = item
        self.dispatched += 1
        segment_start = self.sim.now
        while True:
            try:
                if throw_error is not None:
                    err, throw_error = throw_error, None
                    yielded = gen.throw(err)
                else:
                    yielded = gen.send(send_value)
                    send_value = None
            except StopIteration as stop:
                self._segment_done(segment_start)
                done.succeed(stop.value)
                return
            except Exception as exc:  # noqa: BLE001
                self._segment_done(segment_start)
                done.fail(exc)
                return

            if isinstance(yielded, AwaitBlock):
                self._segment_done(segment_start)
                block = yielded.event
                if self.await_style == "continuation":
                    # Free the loop; requeue the continuation on completion.
                    def resume(ev: SimEvent, gen=gen, done=done) -> None:
                        self._queue.put((gen, done, ev._value, ev.error))

                    block.on_fire(resume)
                    return
                # Pumping (Algorithm 1 lines 13-16): process other events
                # nested inside this handler, then resume it inline.
                yield from self._pump_until(block)
                segment_start = self.sim.now
                if block.error is not None:
                    throw_error = block.error
                else:
                    send_value = block._value
                continue

            # Ordinary command: the EDT is blocked while it pends.
            try:
                send_value = yield yielded
            except Exception as exc:  # noqa: BLE001 - route into handler
                throw_error = exc

    def _pump_until(self, block: SimEvent) -> Generator:
        """Run queued items until *block* fires (the nested message loop)."""
        from .des import AnyOf

        self._pump_depth += 1
        self.max_pump_depth = max(self.max_pump_depth, self._pump_depth)
        try:
            while not block.fired:
                get_ev = self._queue.get()
                if not get_ev.fired:
                    try:
                        yield AnyOf(self.sim, [get_ev, block])
                    except Exception:  # noqa: BLE001 - block failed; stop pumping
                        pass
                    if not get_ev.fired:
                        self._queue.cancel_get(get_ev)
                        return
                yield from self._run_item(get_ev.value)
        finally:
            self._pump_depth -= 1

    def _segment_done(self, segment_start: float) -> None:
        self.busy_time += self.sim.now - segment_start
        if self.trace is not None:
            self.trace.record(
                self.name, f"seg{self.dispatched}", segment_start, self.sim.now
            )
