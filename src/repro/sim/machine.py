"""Machine model: cores, processor-sharing, and oversubscription overhead.

CPU work is expressed as *bursts* (seconds of single-core computation).  The
machine runs all active bursts under processor sharing:

* with ``n`` active bursts on ``c`` cores, each burst progresses at rate
  ``min(1, c/n)`` — a burst can never use more than one core;
* when ``n > c`` (more runnable threads than cores) an efficiency factor
  ``1 / (1 + switch_overhead * (1 - exp(-(n-c)/c)))`` models the
  context-switch and scheduling cost the paper observes: *"the total number
  of threads in the system soars to a high value and it leads to a great
  overhead of thread scheduling"* (§V-B).  The penalty *saturates* at
  ``switch_overhead``: a preemptive scheduler switches at quantum rate no
  matter how long the run queue grows, so throughput levels off below
  nominal capacity instead of collapsing — exactly the "levels off at just
  under 50 responses/sec" plateau in Figure 9.

This is the standard fluid approximation of a time-sliced scheduler; the
progress bookkeeping is event-driven and exact for piecewise-constant rates.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

from .des import SimEvent, SimulationError, Simulator

__all__ = ["MachineConfig", "Machine"]


@dataclass(frozen=True)
class MachineConfig:
    """Machine parameters.

    Defaults model the paper's desktop (quad-core i5); the HTTP benchmark
    uses a 16-core variant.  ``switch_overhead`` is dimensionless: the
    asymptotic scheduling-overhead fraction once the machine is deeply
    oversubscribed (0.12 ≈ a preemptive scheduler losing 12% to switching
    and cache disturbance at saturation).
    """

    cores: int = 4
    switch_overhead: float = 0.12

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("need at least one core")
        if self.switch_overhead < 0:
            raise ValueError("switch overhead cannot be negative")


class _Burst:
    __slots__ = ("remaining", "event")

    def __init__(self, remaining: float, event: SimEvent) -> None:
        self.remaining = remaining
        self.event = event


class Machine:
    """The shared CPU all simulated threads compete for."""

    def __init__(self, sim: Simulator, config: MachineConfig | None = None) -> None:
        self.sim = sim
        self.config = config or MachineConfig()
        self._bursts: dict[int, _Burst] = {}
        self._ids = itertools.count()
        self._last_update = 0.0
        self._timer: int | None = None
        self._busy_time = 0.0  # integral of min(n, cores) over time

    # ------------------------------------------------------------------ rate

    def rate_per_burst(self, n: int | None = None) -> float:
        """Progress rate of each active burst (cores/sec of useful work)."""
        n = len(self._bursts) if n is None else n
        if n == 0:
            return 0.0
        c = self.config.cores
        share = min(1.0, c / n)
        if n <= c:
            return share
        overhead = self.config.switch_overhead * (1.0 - math.exp(-(n - c) / c))
        return share / (1.0 + overhead)

    def efficiency(self, n: int | None = None) -> float:
        """Fraction of nominal throughput retained at *n* runnable bursts."""
        n = len(self._bursts) if n is None else n
        if n == 0:
            return 1.0
        c = self.config.cores
        if n <= c:
            return 1.0
        overhead = self.config.switch_overhead * (1.0 - math.exp(-(n - c) / c))
        return 1.0 / (1.0 + overhead)

    @property
    def active(self) -> int:
        return len(self._bursts)

    @property
    def busy_core_seconds(self) -> float:
        self._settle()
        return self._busy_time

    # --------------------------------------------------------------- execute

    def execute(self, work: float, name: str = "burst") -> SimEvent:
        """Submit *work* seconds of single-core computation.

        Returns the completion event.  Zero-work bursts complete after zero
        time (still via the scheduler, preserving event ordering).
        """
        if work < 0:
            raise SimulationError("work cannot be negative")
        ev = SimEvent(self.sim, name=name)
        if work == 0:
            self.sim.schedule(0.0, lambda: ev.succeed(None))
            return ev
        self._settle()
        burst_id = next(self._ids)
        self._bursts[burst_id] = _Burst(work, ev)
        self._reschedule()
        return ev

    # ------------------------------------------------------------- internals

    def _settle(self) -> None:
        """Account progress since the last rate change."""
        dt = self.sim.now - self._last_update
        self._last_update = self.sim.now
        if dt <= 0 or not self._bursts:
            return
        rate = self.rate_per_burst()
        self._busy_time += dt * min(len(self._bursts), self.config.cores)
        for burst in self._bursts.values():
            burst.remaining -= dt * rate

    def _reschedule(self) -> None:
        if self._timer is not None:
            self.sim.cancel(self._timer)
            self._timer = None
        if not self._bursts:
            return
        rate = self.rate_per_burst()
        shortest = min(b.remaining for b in self._bursts.values())
        delay = max(0.0, shortest / rate)
        self._timer = self.sim.schedule(delay, self._on_completion)

    def _on_completion(self) -> None:
        self._timer = None
        self._settle()
        finished = [
            (bid, b) for bid, b in self._bursts.items()
            if b.remaining <= 1e-12 or math.isclose(b.remaining, 0.0, abs_tol=1e-12)
        ]
        for bid, _ in finished:
            del self._bursts[bid]
        self._reschedule()
        for _, burst in finished:
            burst.event.succeed(None)
