"""Virtual-time resources: FIFO stores and counted resources.

These are the queueing primitives the machine, thread pools, and event loops
build on; semantics follow the usual DES library conventions (SimPy-style)
but are implemented directly on :mod:`repro.sim.des` events.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .des import SimEvent, SimulationError, Simulator

__all__ = ["Store", "Resource"]


class Store:
    """An unbounded FIFO queue in virtual time.

    ``put`` is immediate; ``get`` returns an event that fires with the next
    item (immediately if one is queued, else when one arrives).  Getters are
    served in request order — this is what makes simulated task queues fair.
    """

    def __init__(self, sim: Simulator, name: str = "store") -> None:
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[SimEvent] = deque()

    def put(self, item: Any) -> None:
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> SimEvent:
        ev = SimEvent(self.sim, name=f"{self.name}.get")
        if self._items:
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def cancel_get(self, ev: SimEvent) -> bool:
        """Withdraw a pending getter (e.g. the loser of an AnyOf race) so it
        cannot steal a later item.  True if it was still pending."""
        try:
            self._getters.remove(ev)
            return True
        except ValueError:
            return False

    def __len__(self) -> int:
        return len(self._items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)


class Resource:
    """A counted resource with FIFO acquisition (e.g. a connection slot)."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource") -> None:
        if capacity < 1:
            raise SimulationError("resource capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[SimEvent] = deque()

    def request(self) -> SimEvent:
        ev = SimEvent(self.sim, name=f"{self.name}.request")
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot straight to the next waiter.
            self._waiters.popleft().succeed(self)
        else:
            self._in_use -= 1

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)
