"""Simulated HTTP encryption service (paper §V-B, Figure 9).

The paper's second evaluation: a web service performing data encryption per
request, implemented two ways —

* **jetty** — Jetty's thread-pool framework: "a thread-per-request policy
  but reuses a fixed number of threads from a thread pool";
* **pyjama** — the paper's virtual target offloading the computation to
  worker threads.

Each may additionally parallelise the per-request computation with
``omp parallel`` (the ``parallel_threads`` knob).  The paper's result:
both plain variants scale with worker threads; the parallel variants start
dramatically higher but level off just under 50 responses/sec because "every
parallelization computation spawns its own set of worker threads … the total
number of threads in the system soars" — reproduced here through the machine
model's oversubscription penalty plus per-request team-spawn cost.

Load: 100 closed-loop virtual users on a 16-core machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .costmodel import KernelCostModel, kernel_task, parallel_kernel_task
from .des import SimEvent, Simulator
from .machine import Machine, MachineConfig
from .metrics import ResponseStats, ThroughputMeter
from .threadsim import SimThreadPool, ThreadCosts
from .workload import run_closed_loop_users

__all__ = ["HttpBenchConfig", "HttpBenchResult", "SERVERS", "run_http_benchmark"]

SERVERS = ("jetty", "pyjama")

#: The encryption request cost: sized so that 16 cores at full efficiency
#: yield 16 / 0.32 = 50 responses/sec — the paper's observed ceiling.
DEFAULT_HTTP_KERNEL = KernelCostModel("crypt-http", serial_time=0.32, parallel_fraction=0.97)


@dataclass
class HttpBenchConfig:
    server: str = "pyjama"
    worker_threads: int = 8
    parallel_threads: int | None = None   # per-request omp parallel team size
    n_users: int = 100                    # paper: "100 virtual users"
    requests_per_user: int = 4
    cores: int = 16                       # paper: 16-core Xeon SMP
    switch_overhead: float = 0.12
    kernel: KernelCostModel = field(default_factory=lambda: DEFAULT_HTTP_KERNEL)
    network_overhead: float = 1e-3        # request parse + response write
    costs: ThreadCosts = field(default_factory=ThreadCosts)

    def __post_init__(self) -> None:
        if self.server not in SERVERS:
            raise ValueError(f"unknown server {self.server!r}; choose from {SERVERS}")
        if self.worker_threads < 1:
            raise ValueError("need at least one worker thread")
        if self.parallel_threads is not None and self.parallel_threads < 1:
            raise ValueError("parallel team must have at least one thread")


@dataclass
class HttpBenchResult:
    throughput: float            # responses per second
    response: ResponseStats
    completed: int
    mean_active_threads: float   # observed machine load (oversubscription)


def run_http_benchmark(cfg: HttpBenchConfig) -> HttpBenchResult:
    """Run one (server, worker_threads, parallel_threads) cell."""
    sim = Simulator()
    machine = Machine(
        sim, MachineConfig(cores=cfg.cores, switch_overhead=cfg.switch_overhead)
    )
    pool = SimThreadPool(
        sim, machine, cfg.worker_threads, name=cfg.server, costs=cfg.costs
    )
    stats = ResponseStats()
    meter = ThroughputMeter()
    meter.mark_start(0.0)
    active_samples: list[tuple[float, int]] = []

    # Jetty's accept path does slightly more bookkeeping per request than a
    # direct virtual-target post (selector wakeup + dispatch); both are tiny
    # and the paper finds the two frameworks comparable.
    accept_cost = cfg.network_overhead + (
        2 * cfg.costs.queue_handoff if cfg.server == "jetty" else cfg.costs.queue_handoff
    )

    if cfg.parallel_threads is None:
        compute_factory = kernel_task(machine, cfg.kernel)
    else:
        # "every parallelization computation spawns its own set of worker
        # threads": the team is created per request, costing spawn time and
        # flooding the machine with parallel_threads extra runnables.
        compute_factory = parallel_kernel_task(
            sim,
            machine,
            cfg.kernel,
            cfg.parallel_threads,
            per_thread_spawn=cfg.costs.thread_spawn,
        )

    def handle_request(uid: int, seq: int) -> SimEvent:
        fired_at = sim.now
        response = SimEvent(sim, name=f"resp-{uid}-{seq}")

        def request_task():
            yield machine.execute(accept_cost, name="accept")
            yield sim.process(compute_factory(), name="encrypt")
            yield machine.execute(cfg.network_overhead, name="respond")
            active_samples.append((sim.now, machine.active))

        done = pool.submit(request_task)

        def complete(_ev: SimEvent) -> None:
            stats.record(fired_at, sim.now)
            meter.mark_completion(sim.now)
            response.succeed(None)

        done.on_fire(complete)
        return response

    run_closed_loop_users(
        sim,
        cfg.n_users,
        cfg.requests_per_user,
        handle_request,
        ramp_up=0.5,
    )
    sim.run()

    expected = cfg.n_users * cfg.requests_per_user
    if stats.count != expected:
        raise RuntimeError(f"lost requests: {stats.count}/{expected} completed")
    mean_active = (
        sum(a for _, a in active_samples) / len(active_samples)
        if active_samples
        else 0.0
    )
    return HttpBenchResult(
        throughput=meter.throughput,
        response=stats,
        completed=stats.count,
        mean_active_threads=mean_active,
    )
