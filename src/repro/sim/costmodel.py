"""Kernel cost models: how much virtual CPU each event handler consumes.

The GUI benchmark (paper §V-A) binds each event to one Java Grande kernel
execution lasting tens-to-hundreds of milliseconds ("even computations
lasting only a few hundred milliseconds demand concurrency").  The constants
below set each kernel's single-core time at that magnitude and give it an
Amdahl profile (parallelisable fraction) matching its structure:

* crypt — block-parallel, tiny serial part (key schedule);
* series — coefficient-parallel, small serial part (setup of the abscissae);
* montecarlo — path-parallel with a serial accumulation pass;
* raytracer — row-parallel, nearly perfectly scalable.

The optional ``calibrate_from_host`` rescales the times from this machine's
real kernel timings, preserving their ratios, for users who want the
simulator anchored to measured numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Generator

from .des import AllOf, SimEvent, Simulator
from .machine import Machine

__all__ = [
    "KernelCostModel",
    "GUI_KERNELS",
    "FORK_JOIN_OVERHEAD",
    "kernel_task",
    "parallel_kernel_task",
    "calibrate_from_host",
]

#: Cost of forking/joining one thread team (virtual seconds) — barrier wake-ups
#: and work distribution; ~200 µs matches JVM-level measurements.
FORK_JOIN_OVERHEAD = 200e-6


@dataclass(frozen=True)
class KernelCostModel:
    """Single-event computation profile."""

    name: str
    serial_time: float          # single-core seconds for the whole kernel
    parallel_fraction: float    # Amdahl fraction that scales with threads

    def __post_init__(self) -> None:
        if self.serial_time <= 0:
            raise ValueError("serial_time must be positive")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise ValueError("parallel_fraction must be in [0, 1]")

    def span(self, threads: int) -> float:
        """Ideal (contention-free) critical-path time on *threads* threads."""
        if threads < 1:
            raise ValueError("threads must be >= 1")
        if threads == 1:
            return self.serial_time
        return (
            self.serial_time * (1.0 - self.parallel_fraction)
            + self.serial_time * self.parallel_fraction / threads
            + FORK_JOIN_OVERHEAD
        )

    def speedup(self, threads: int) -> float:
        return self.serial_time / self.span(threads)


#: Paper §V-A kernel set, times chosen so the 10..100 req/s sweep crosses the
#: sequential-EDT saturation point (rate * time = 1) inside the sweep for
#: every kernel, as the paper's response-time curves do.
GUI_KERNELS: dict[str, KernelCostModel] = {
    "crypt": KernelCostModel("crypt", serial_time=0.040, parallel_fraction=0.97),
    "series": KernelCostModel("series", serial_time=0.030, parallel_fraction=0.95),
    "montecarlo": KernelCostModel("montecarlo", serial_time=0.060, parallel_fraction=0.97),
    "raytracer": KernelCostModel("raytracer", serial_time=0.080, parallel_fraction=0.99),
}


def kernel_task(machine: Machine, cost: KernelCostModel):
    """A task factory running the kernel sequentially (one burst)."""

    def task() -> Generator:
        yield machine.execute(cost.serial_time, name=f"{cost.name}.seq")

    return task


def parallel_kernel_task(
    sim: Simulator,
    machine: Machine,
    cost: KernelCostModel,
    threads: int,
    *,
    per_thread_spawn: float = 0.0,
):
    """A task factory running the kernel as a fork-join team of *threads*.

    The serial fraction and the fork/join overhead run first as one burst;
    then *threads* chunk bursts execute concurrently (and contend for cores
    through the machine model).  ``per_thread_spawn`` adds thread-creation
    cost for implementations that spawn a fresh team per request — the
    §V-B oversubscription story.
    """
    if threads < 1:
        raise ValueError("threads must be >= 1")

    def task() -> Generator:
        setup = (
            cost.serial_time * (1.0 - cost.parallel_fraction)
            + FORK_JOIN_OVERHEAD
            + per_thread_spawn * threads
        )
        yield machine.execute(setup, name=f"{cost.name}.serial")
        chunk = cost.serial_time * cost.parallel_fraction / threads
        bursts: list[SimEvent] = [
            machine.execute(chunk, name=f"{cost.name}.chunk{i}") for i in range(threads)
        ]
        yield AllOf(sim, bursts)

    return task


def calibrate_from_host(size_class: str = "A") -> dict[str, KernelCostModel]:
    """Cost models whose serial times come from running the real kernels on
    this machine (ratios preserved, magnitudes measured)."""
    from ..kernels import time_kernel

    out = {}
    for name, model in GUI_KERNELS.items():
        measured = time_kernel(name, size_class, repeats=1)
        out[name] = replace(model, serial_time=max(measured, 1e-4))
    return out
