"""Public, user-facing API of the virtual-target programming model.

Two styles are offered:

1. **Runtime functions** exactly mirroring the paper's Table II
   (:func:`virtual_target_register_edt`, :func:`virtual_target_create_worker`)
   plus :func:`run_on` as the direct equivalent of
   ``PjRuntime.invokeTargetBlock``.

2. **Decorators** (:func:`on_target`) marking whole functions as target
   blocks, which is how hand-written Python uses the model without the
   source-to-source compiler:

   .. code-block:: python

       virtual_target_create_worker("worker", 4)

       @on_target("worker", mode="nowait")
       def heavy():
           ...

       handle = heavy()       # posted to the worker pool, returns immediately

The compiler package (:mod:`repro.compiler`) rewrites ``#omp target
virtual(...)`` comment pragmas into :func:`run_on` calls, so everything funnels
through one dispatch path.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, TypeVar

from .directives import SchedulingMode
from .region import TargetRegion
from .runtime import PjRuntime, default_runtime
from .targets import EdtTarget, WorkerTarget

__all__ = [
    "virtual_target_register_edt",
    "virtual_target_create_worker",
    "virtual_target_create_process_worker",
    "virtual_target_create_cluster",
    "start_edt",
    "run_on",
    "on_target",
    "wait_for",
    "shutdown_all",
]

F = TypeVar("F", bound=Callable[..., Any])


def virtual_target_register_edt(tname: str, *, runtime: PjRuntime | None = None) -> EdtTarget:
    """Register the calling thread as a virtual target named *tname*.

    Paper Table II: *"The thread which invokes this function will be
    registered as a virtual target named tname."*  The caller keeps ownership
    of the thread and must drive the target's queue (``run_forever``,
    ``drain`` or ``pump_until``).
    """
    return (runtime or default_runtime()).register_edt(tname)


def virtual_target_create_worker(
    tname: str, m: int, *, runtime: PjRuntime | None = None, **options: Any
) -> WorkerTarget:
    """Create a worker virtual target with a maximum of *m* threads.

    Paper Table II: *"Creating a worker virtual target with maximum of m
    threads, and its name is tname."*  *options* forwards the queue and
    adaptive-policy knobs of :meth:`PjRuntime.create_worker`
    (``queue_capacity``, ``rejection_policy``, ``steal``, ``batch_max``,
    ``autoscale``, ...); see docs/TUNING.md for the policy reference.
    """
    return (runtime or default_runtime()).create_worker(tname, m, **options)


def virtual_target_create_process_worker(
    tname: str, m: int, *, runtime: PjRuntime | None = None, **options: Any
):
    """Create a worker virtual target backed by *m* supervised OS processes.

    The process counterpart of :func:`virtual_target_create_worker`: same
    name-based directive surface and scheduling clauses, but region bodies
    run outside this interpreter's GIL, so CPU-bound blocks scale with cores
    instead of serializing.  *options* forwards the supervision knobs of
    :meth:`PjRuntime.create_process_worker` (``max_restarts``,
    ``start_method``, ``heartbeat_interval``, ``cancel_grace``, ...).
    """
    return (runtime or default_runtime()).create_process_worker(tname, m, **options)


def virtual_target_create_cluster(
    tname: str,
    endpoints,
    *,
    shards: int = 1,
    runtime: PjRuntime | None = None,
    **options: Any,
):
    """Create a worker virtual target backed by remote cluster worker agents.

    The multi-host counterpart of :func:`virtual_target_create_worker` /
    :func:`virtual_target_create_process_worker`: the same name-based
    directive surface, but region bodies execute on agents started with
    ``python -m repro cluster-worker`` at the given ``host:port``
    *endpoints*, *shards* lanes per endpoint.  *options* forwards the
    supervision knobs of :meth:`PjRuntime.create_cluster`
    (``max_restarts``, ``heartbeat_interval``, ``cancel_grace``,
    ``connect_timeout``, ...).
    """
    return (runtime or default_runtime()).create_cluster(
        tname, endpoints, shards=shards, **options
    )


def start_edt(tname: str, *, runtime: PjRuntime | None = None) -> EdtTarget:
    """Spawn a dedicated event-dispatch thread registered as *tname*.

    Convenience for headless programs and tests; GUI frameworks already own
    an EDT and use :func:`virtual_target_register_edt` instead.
    """
    return (runtime or default_runtime()).start_edt(tname)


def run_on(
    target: str | None,
    body: Callable[[], Any],
    *args: Any,
    mode: SchedulingMode | str = SchedulingMode.DEFAULT,
    tag: str | None = None,
    condition: bool = True,
    timeout: float | None = None,
    runtime: PjRuntime | None = None,
    source: str | None = None,
    **kwargs: Any,
) -> TargetRegion:
    """Execute *body* as a target block on the named virtual target.

    This is the library-level spelling of::

        #omp target virtual(<target>) [nowait | name_as(<tag>) | await]
        { body(*args, **kwargs) }

    ``condition=False`` corresponds to a false ``if`` clause: the block runs
    inline in the calling thread as if the directive were absent.

    Returns the :class:`TargetRegion` handle.  For the waiting modes
    (``default``/``await``) the region is already terminal on return and any
    exception from the body has been re-raised; *timeout* bounds those waits
    (the ``timeout(...)`` clause) and raises
    :class:`~repro.core.errors.AwaitTimeoutError` past the deadline.

    *source* optionally stamps the region with ``file:line`` provenance so
    trace spans (``repro.obs``) carry the user's code location; the
    source-to-source compiler fills it from the pragma position.
    """
    rt = runtime or default_runtime()
    region = TargetRegion(body, *args, source=source, **kwargs)
    if not condition:
        region.run()
        region.result()
        return region
    return rt.invoke_target_block(target, region, mode, tag=tag, timeout=timeout)


def on_target(
    target: str | None,
    mode: SchedulingMode | str = SchedulingMode.DEFAULT,
    *,
    tag: str | None = None,
    timeout: float | None = None,
    runtime: PjRuntime | None = None,
) -> Callable[[F], Callable[..., Any]]:
    """Decorator: every call of the function becomes a target block.

    For waiting modes the wrapper returns the function's return value (it is
    synchronous from the caller's perspective); for fire-and-forget modes it
    returns the :class:`TargetRegion` handle.
    """
    sched = SchedulingMode(mode) if isinstance(mode, str) else mode

    def decorate(fn: F) -> Callable[..., Any]:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            region = run_on(
                target, fn, *args, mode=sched, tag=tag, timeout=timeout,
                runtime=runtime, **kwargs
            )
            if sched.is_fire_and_forget:
                return region
            return region.result()

        wrapper.__wrapped__ = fn  # type: ignore[attr-defined]
        return wrapper

    return decorate


def wait_for(
    tag: str,
    *,
    timeout: float | None = None,
    strict: bool = False,
    runtime: PjRuntime | None = None,
) -> None:
    """The ``wait(name-tag)`` clause: join every block posted under *tag*."""
    (runtime or default_runtime()).wait_tag(tag, timeout=timeout, strict=strict)


def shutdown_all(*, wait: bool = True, runtime: PjRuntime | None = None) -> None:
    """Shut down every virtual target of the (default) runtime."""
    (runtime or default_runtime()).shutdown(wait=wait)
