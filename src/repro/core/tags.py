"""Named task groups for the ``name_as``/``wait`` clauses (paper §III-C).

Different target blocks are allowed to share the same name-tag; a later
``wait(tag)`` suspends the encountering thread until **all** live instances
tagged with it have finished.  The registry therefore tracks a multiset of
outstanding regions per tag.
"""

from __future__ import annotations

import threading
from typing import Callable

from .errors import RegionCancelledError, RegionFailedError, TagError
from .region import RegionState, TargetRegion

__all__ = ["TagRegistry"]


class TagRegistry:
    """Thread-safe tag → outstanding-regions bookkeeping."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._outstanding: dict[str, set[TargetRegion]] = {}
        self._completed_with_error: dict[str, list[RegionFailedError]] = {}
        self._cond = threading.Condition(self._lock)
        # Tags that have ever been used; lets strict waits distinguish
        # "never registered" from "all done".
        self._known: set[str] = set()

    def register(self, tag: str, region: TargetRegion) -> None:
        """Attach *region* to *tag*; automatically detaches on completion."""
        with self._cond:
            self._known.add(tag)
            self._outstanding.setdefault(tag, set()).add(region)
        region.add_done_callback(lambda r: self._on_done(tag, r))

    def _on_done(self, tag: str, region: TargetRegion) -> None:
        with self._cond:
            live = self._outstanding.get(tag)
            if live is not None:
                live.discard(region)
                if not live:
                    del self._outstanding[tag]
            if region.exception is not None:
                # Includes regions cancelled *with a reason* (a drained
                # target's lost work): wait_tag must surface those, while a
                # bare cancel() stays a benign withdrawal.
                err_cls = (
                    RegionCancelledError
                    if region.state is RegionState.CANCELLED
                    else RegionFailedError
                )
                self._completed_with_error.setdefault(tag, []).append(
                    err_cls(region.name, region.exception)
                )
            self._cond.notify_all()

    def outstanding(self, tag: str) -> int:
        with self._lock:
            return len(self._outstanding.get(tag, ()))

    def is_known(self, tag: str) -> bool:
        with self._lock:
            return tag in self._known

    def wait(
        self,
        tag: str,
        *,
        timeout: float | None = None,
        strict: bool = False,
        helper: Callable[[], bool] | None = None,
        raise_on_error: bool = True,
    ) -> None:
        """Block until every region registered under *tag* has finished.

        Parameters
        ----------
        strict:
            If True, waiting on a tag that was never registered raises
            :class:`TagError` (catches typos); the paper's semantics treat an
            unknown tag as trivially complete, which is the default.
        helper:
            Optional "process another task" callback.  When given, instead of
            sleeping the waiting thread repeatedly invokes it (the logical
            barrier used when the waiter is an EDT or pool member).  It should
            return promptly; its boolean result is ignored.
        raise_on_error:
            If any region under *tag* failed, re-raise the first recorded
            :class:`RegionFailedError` after the group completes.
        """
        if strict and not self.is_known(tag):
            raise TagError(f"wait on unknown name_as tag {tag!r}")
        if helper is None:
            with self._cond:
                ok = self._cond.wait_for(
                    lambda: not self._outstanding.get(tag), timeout=timeout
                )
            if not ok:
                raise TimeoutError(f"timed out waiting for tag {tag!r}")
        else:
            # Cooperative wait: poll the group while helping with other work.
            import time

            deadline = None if timeout is None else time.monotonic() + timeout
            while self.outstanding(tag):
                if deadline is not None and time.monotonic() > deadline:
                    raise TimeoutError(f"timed out waiting for tag {tag!r}")
                helper()
        if raise_on_error:
            errors = self._pop_errors(tag)
            if errors:
                raise errors[0]

    def _pop_errors(self, tag: str) -> list[RegionFailedError]:
        with self._lock:
            return self._completed_with_error.pop(tag, [])

    def clear(self, *, keep_errors: bool = False) -> None:
        """Forget all tag bookkeeping (waiters unblock as trivially complete).

        ``keep_errors=True`` preserves recorded failures — runtime shutdown
        uses it so waiters released by the teardown still learn that their
        regions were cancelled rather than observing a clean join.
        """
        with self._cond:
            self._outstanding.clear()
            if not keep_errors:
                self._completed_with_error.clear()
            self._known.clear()
            self._cond.notify_all()
