"""Core of the reproduction: the event-driven virtual-target model for OpenMP.

Implements the paper's primary contribution — the extended ``target``
directive with ``virtual(...)`` targets and the ``nowait`` / ``name_as`` +
``wait`` / ``await`` scheduling clauses — on real Python threads, following
Algorithm 1 and Table II of the paper.
"""

from .api import (
    on_target,
    run_on,
    shutdown_all,
    start_edt,
    virtual_target_create_cluster,
    virtual_target_create_process_worker,
    virtual_target_create_worker,
    virtual_target_register_edt,
    wait_for,
)
from .directives import (
    DataClause,
    DataSharing,
    SchedulingMode,
    TargetDirective,
    TargetKind,
    TargetProperty,
)
from .errors import (
    AwaitTimeoutError,
    DirectiveSyntaxError,
    PyjamaError,
    QueueFullError,
    RegionCancelledError,
    RegionFailedError,
    RemoteExecutionError,
    RuntimeStateError,
    SerializationError,
    TagError,
    TargetExistsError,
    TargetShutdownError,
    UnknownTargetError,
    WorkerCrashedError,
)
from .region import CancelToken, RegionState, TargetRegion, current_region
from .runtime import PjRuntime, default_runtime, reset_default_runtime, set_default_runtime
from .tags import TagRegistry
from .targets import (
    REJECTION_POLICIES,
    EdtTarget,
    VirtualTarget,
    WorkerTarget,
    current_target,
)

__all__ = [
    # api
    "on_target", "run_on", "shutdown_all", "start_edt",
    "virtual_target_create_worker", "virtual_target_create_process_worker",
    "virtual_target_create_cluster", "virtual_target_register_edt", "wait_for",
    # directives
    "DataClause", "DataSharing", "SchedulingMode", "TargetDirective",
    "TargetKind", "TargetProperty",
    # errors
    "AwaitTimeoutError", "DirectiveSyntaxError", "PyjamaError",
    "QueueFullError", "RegionCancelledError", "RegionFailedError",
    "RemoteExecutionError", "RuntimeStateError", "SerializationError",
    "TagError", "TargetExistsError",
    "TargetShutdownError", "UnknownTargetError", "WorkerCrashedError",
    # region / runtime / targets
    "CancelToken", "RegionState", "TargetRegion", "current_region",
    "PjRuntime", "default_runtime",
    "reset_default_runtime", "set_default_runtime", "TagRegistry",
    "EdtTarget", "VirtualTarget", "WorkerTarget", "current_target",
    "REJECTION_POLICIES",
]
