"""Exception hierarchy for the Pyjama-style virtual-target runtime.

The paper's runtime (Section IV-B) is mostly silent about failure modes; we
make them explicit so that library users get actionable errors instead of
deadlocks or silent drops.
"""

from __future__ import annotations


class PyjamaError(Exception):
    """Base class for all errors raised by :mod:`repro.core`."""


class DirectiveSyntaxError(PyjamaError):
    """An ``#omp`` directive could not be parsed.

    Carries optional source position information so the source-to-source
    compiler can point at the offending pragma.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class UnknownTargetError(PyjamaError):
    """A directive referenced a virtual target name that was never registered."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(
            f"unknown virtual target {name!r}; register it first with "
            "virtual_target_create_worker() or virtual_target_register_edt()"
        )


class TargetExistsError(PyjamaError):
    """A virtual target name was registered twice."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"virtual target {name!r} is already registered")


class TargetShutdownError(PyjamaError):
    """A region was posted to a virtual target that has been shut down."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"virtual target {name!r} has been shut down")


class RuntimeStateError(PyjamaError):
    """The runtime was used in a way that violates its lifecycle.

    Examples: waiting with ``await`` from a thread that belongs to no virtual
    target while strict mode is enabled, or pumping an EDT from a foreign
    thread.
    """


class RegionFailedError(PyjamaError):
    """Waiting on a target region whose body raised.

    The original exception is available as ``__cause__`` (and ``.cause``),
    mirroring how ``concurrent.futures`` re-raises on ``result()``.
    """

    def __init__(self, region_name: str, cause: BaseException):
        self.region_name = region_name
        self.cause = cause
        super().__init__(f"target region {region_name!r} raised {cause!r}")
        self.__cause__ = cause


class RegionCancelledError(RegionFailedError):
    """Waiting on a target region that was cancelled before it could run.

    Subclasses :class:`RegionFailedError` so ``except RegionFailedError``
    keeps catching every unsuccessful wait; the cancellation reason (e.g. the
    :class:`TargetShutdownError` of a drained target) is the ``cause``.
    """

    def __init__(self, region_name: str, cause: BaseException | None = None):
        super().__init__(
            region_name, cause if cause is not None else RuntimeError("region was cancelled")
        )


class QueueFullError(PyjamaError):
    """A region was posted to a virtual target whose bounded queue is full.

    Raised by the ``reject`` rejection policy, and by the ``block`` policy
    when the post's own timeout elapses before space frees up.
    """

    def __init__(self, name: str, capacity: int):
        self.name = name
        self.capacity = capacity
        super().__init__(
            f"virtual target {name!r} rejected a post: bounded queue is full "
            f"(capacity {capacity})"
        )


class AwaitTimeoutError(PyjamaError, TimeoutError):
    """A waiting dispatch (default wait or ``await`` logical barrier) blew
    past its deadline.

    Carries a ``diagnostics`` dump (queue depths, member threads, counters)
    taken at expiry so stuck systems can be debugged post-mortem.  Also a
    ``TimeoutError`` so generic timeout handling keeps working.
    """

    def __init__(self, message: str, diagnostics: str = ""):
        self.diagnostics = diagnostics
        if diagnostics:
            message = f"{message}\n{diagnostics}"
        super().__init__(message)


class TagError(PyjamaError):
    """Invalid use of a ``name_as``/``wait`` tag (e.g. waiting on an unknown tag
    in strict mode)."""
