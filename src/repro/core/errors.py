"""Exception hierarchy for the Pyjama-style virtual-target runtime.

The paper's runtime (Section IV-B) is mostly silent about failure modes; we
make them explicit so that library users get actionable errors instead of
deadlocks or silent drops.
"""

from __future__ import annotations


class PyjamaError(Exception):
    """Base class for all errors raised by :mod:`repro.core`."""


class DirectiveSyntaxError(PyjamaError):
    """An ``#omp`` directive could not be parsed.

    Carries optional source position information so the source-to-source
    compiler can point at the offending pragma.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}: {message}"
        super().__init__(message)


class UnknownTargetError(PyjamaError):
    """A directive referenced a virtual target name that was never registered."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(
            f"unknown virtual target {name!r}; register it first with "
            "virtual_target_create_worker() or virtual_target_register_edt()"
        )


class TargetExistsError(PyjamaError):
    """A virtual target name was registered twice."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"virtual target {name!r} is already registered")


class TargetShutdownError(PyjamaError):
    """A region was posted to a virtual target that has been shut down."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"virtual target {name!r} has been shut down")


class RuntimeStateError(PyjamaError):
    """The runtime was used in a way that violates its lifecycle.

    Examples: waiting with ``await`` from a thread that belongs to no virtual
    target while strict mode is enabled, or pumping an EDT from a foreign
    thread.
    """


class RegionFailedError(PyjamaError):
    """Waiting on a target region whose body raised.

    The original exception is available as ``__cause__`` (and ``.cause``),
    mirroring how ``concurrent.futures`` re-raises on ``result()``.
    """

    def __init__(self, region_name: str, cause: BaseException):
        self.region_name = region_name
        self.cause = cause
        super().__init__(f"target region {region_name!r} raised {cause!r}")
        self.__cause__ = cause


class RegionCancelledError(RegionFailedError):
    """Waiting on a target region that was cancelled before it could run.

    Subclasses :class:`RegionFailedError` so ``except RegionFailedError``
    keeps catching every unsuccessful wait; the cancellation reason (e.g. the
    :class:`TargetShutdownError` of a drained target) is the ``cause``.
    """

    def __init__(self, region_name: str, cause: BaseException | None = None):
        super().__init__(
            region_name, cause if cause is not None else RuntimeError("region was cancelled")
        )


class QueueFullError(PyjamaError):
    """A region was posted to a virtual target whose bounded queue is full.

    Raised by the ``reject`` rejection policy, and by the ``block`` policy
    when the post's own timeout elapses before space frees up.

    Structured for admission-control layers (e.g. an HTTP server mapping the
    rejection to a 503): ``name`` is the refusing target, ``capacity`` its
    bound, and ``policy`` the rejection policy that produced the refusal —
    nothing has to be parsed back out of the message.
    """

    def __init__(self, name: str, capacity: int, policy: str | None = None):
        self.name = name
        self.capacity = capacity
        self.policy = policy
        detail = f"capacity {capacity}"
        if policy is not None:
            detail += f", policy {policy!r}"
        super().__init__(
            f"virtual target {name!r} rejected a post: bounded queue is full "
            f"({detail})"
        )


class AwaitTimeoutError(PyjamaError, TimeoutError):
    """A waiting dispatch (default wait or ``await`` logical barrier) blew
    past its deadline.

    Carries a ``diagnostics`` dump (queue depths, member threads, counters)
    taken at expiry so stuck systems can be debugged post-mortem.  Also a
    ``TimeoutError`` so generic timeout handling keeps working.
    """

    def __init__(self, message: str, diagnostics: str = ""):
        self.diagnostics = diagnostics
        if diagnostics:
            message = f"{message}\n{diagnostics}"
        super().__init__(message)


class TagError(PyjamaError):
    """Invalid use of a ``name_as``/``wait`` tag (e.g. waiting on an unknown tag
    in strict mode)."""


class WorkerCrashedError(PyjamaError):
    """A process- or cluster-backed virtual target lost a worker.

    Raised to waiters of any region that was in flight on the crashed worker
    — a hard-killed process (or torn cluster connection) cannot report
    results, so the honest outcome is this error, not a hang.  Carries
    enough context (worker index, pid, exit code, restart budget) for the
    supervisor's decision to be auditable.
    """

    def __init__(
        self,
        target_name: str,
        worker_id: int,
        *,
        pid: int | None = None,
        exitcode: int | None = None,
        region_name: str | None = None,
        detail: str | None = None,
    ):
        self.target_name = target_name
        self.worker_id = worker_id
        self.pid = pid
        self.exitcode = exitcode
        self.region_name = region_name
        bits = [f"worker {worker_id} of target {target_name!r} crashed"]
        if pid is not None:
            bits.append(f"pid={pid}")
        if exitcode is not None:
            bits.append(f"exitcode={exitcode}")
        if region_name is not None:
            bits.append(f"while running region {region_name!r}")
        if detail:
            bits.append(f"({detail})")
        super().__init__(" ".join(bits))


class ProtocolVersionError(PyjamaError):
    """Two ends of a dist/cluster connection speak different wire protocols.

    Raised during the hello handshake when the peer announces a protocol
    version this build does not speak — cluster workers may be started from
    a different checkout than the client, and a silent mismatch would
    surface as undefined behaviour deep inside message dispatch.  Carries
    both versions so deployments can tell which side is stale.
    """

    def __init__(self, ours: int, theirs: int, *, peer: str | None = None):
        self.ours = ours
        self.theirs = theirs
        self.peer = peer
        where = f" from {peer}" if peer else ""
        super().__init__(
            f"wire protocol version mismatch{where}: we speak version {ours}, "
            f"peer speaks version {theirs}; update the older checkout "
            "(repro.dist.wire.PROTOCOL_VERSION)"
        )


class SerializationError(PyjamaError):
    """A payload (or its result) could not cross the process boundary.

    Process-backed targets ship region bodies and results by value; anything
    holding process-local state — locks, sockets, open files, generators —
    cannot be pickled (even by cloudpickle) and is rejected with this error
    instead of a raw :class:`TypeError` from deep inside the pickler.
    """

    def __init__(self, what: str, cause: BaseException | None = None):
        self.cause = cause
        message = (
            f"{what} cannot be serialized for a process target"
            f"{f': {cause!r}' if cause is not None else ''}; "
            "process targets ship work by value — keep payloads to plain "
            "data, module-level functions, and picklable closures"
        )
        super().__init__(message)
        if cause is not None:
            self.__cause__ = cause


class RemoteExecutionError(PyjamaError):
    """A region failed on a worker process with an exception that could not
    itself be pickled back.

    The original traceback (formatted worker-side) is preserved in
    :attr:`remote_traceback` so the failure stays debuggable even though the
    exception object could not make the trip.
    """

    def __init__(self, description: str, remote_traceback: str = ""):
        self.remote_traceback = remote_traceback
        message = f"remote region failed: {description}"
        if remote_traceback:
            message = f"{message}\n--- worker traceback ---\n{remote_traceback}"
        super().__init__(message)
