"""Semantic model of the extended ``target`` directive (paper Figure 5).

The grammar proposed by the paper is::

    #pragma omp target [clause[,] clause ...]  structured-block

    clause:
        target-property-clause      device(device-number) | virtual(name-tag)
        scheduling-property-clause  nowait | name_as(name-tag) | await
        data-handling-clause
        if-clause

This module holds the *semantic* objects shared by the runtime and the
source-to-source compiler.  Parsing text into these objects lives in
:mod:`repro.compiler.directive_parser`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from .errors import DirectiveSyntaxError

__all__ = [
    "SchedulingMode",
    "TargetKind",
    "TargetProperty",
    "DataSharing",
    "DataClause",
    "TargetDirective",
]


class SchedulingMode(enum.Enum):
    """Asynchronous execution modes of a target block (paper Table I).

    * ``DEFAULT`` — the encountering thread waits for the block to finish
      (standard OpenMP ``target`` behaviour).
    * ``NOWAIT`` — fire-and-forget; no completion notification.
    * ``NAME_AS`` — fire-and-remember; the block joins a named task group that
      a later ``wait(tag)`` clause joins.
    * ``AWAIT`` — logical barrier; the encountering thread keeps processing
      other events/tasks from its own loop until the block finishes, then
      continues with the statements following the block.
    """

    DEFAULT = "default"
    NOWAIT = "nowait"
    NAME_AS = "name_as"
    AWAIT = "await"

    @property
    def is_fire_and_forget(self) -> bool:
        """True for modes where the encountering thread does not synchronize
        at the directive itself (Algorithm 1 lines 10-12)."""
        return self in (SchedulingMode.NOWAIT, SchedulingMode.NAME_AS)


class TargetKind(enum.Enum):
    """Whether the directive targets a physical device or a virtual executor."""

    DEVICE = "device"
    VIRTUAL = "virtual"


@dataclass(frozen=True)
class TargetProperty:
    """The target-property-clause: ``device(n)`` or ``virtual(name)``."""

    kind: TargetKind
    name: str | None = None       # virtual target name-tag
    device_number: int | None = None

    def __post_init__(self) -> None:
        if self.kind is TargetKind.VIRTUAL and not self.name:
            raise DirectiveSyntaxError("virtual() clause requires a name-tag")
        if self.kind is TargetKind.DEVICE and self.device_number is None:
            raise DirectiveSyntaxError("device() clause requires a device number")

    @classmethod
    def virtual(cls, name: str) -> "TargetProperty":
        return cls(kind=TargetKind.VIRTUAL, name=name)

    @classmethod
    def device(cls, number: int) -> "TargetProperty":
        return cls(kind=TargetKind.DEVICE, device_number=number)

    def __str__(self) -> str:
        if self.kind is TargetKind.VIRTUAL:
            return f"virtual({self.name})"
        return f"device({self.device_number})"


class DataSharing(enum.Enum):
    """Data-handling attributes.

    A virtual target shares the host memory (paper §III-B, *data-context
    sharing*), so SHARED is the natural default; FIRSTPRIVATE is supported to
    snapshot values at directive-encounter time, matching OpenMP semantics for
    captured scalars.
    """

    SHARED = "shared"
    FIRSTPRIVATE = "firstprivate"
    PRIVATE = "private"


@dataclass(frozen=True)
class DataClause:
    sharing: DataSharing
    variables: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.sharing.value}({', '.join(self.variables)})"


@dataclass(frozen=True)
class TargetDirective:
    """A fully-resolved extended ``target`` directive."""

    target: TargetProperty
    mode: SchedulingMode = SchedulingMode.DEFAULT
    tag: str | None = None                     # name_as(name-tag)
    if_condition: str | None = None            # textual condition (compiler use)
    data_clauses: tuple[DataClause, ...] = field(default_factory=tuple)
    timeout: float | None = None               # deadline for waiting modes (s)

    def __post_init__(self) -> None:
        if self.mode is SchedulingMode.NAME_AS and not self.tag:
            raise DirectiveSyntaxError("name_as mode requires a name-tag")
        if self.mode is not SchedulingMode.NAME_AS and self.tag is not None:
            raise DirectiveSyntaxError(
                f"tag {self.tag!r} is only valid with the name_as clause"
            )
        if self.timeout is not None:
            if self.timeout <= 0:
                raise DirectiveSyntaxError(
                    f"timeout must be a positive number of seconds, got {self.timeout!r}"
                )
            if self.mode.is_fire_and_forget:
                raise DirectiveSyntaxError(
                    "timeout(...) is only meaningful for waiting modes (default "
                    "or await); nowait/name_as blocks are joined elsewhere — "
                    "put the deadline on wait(tag) instead"
                )

    @property
    def is_virtual(self) -> bool:
        return self.target.kind is TargetKind.VIRTUAL

    def __str__(self) -> str:
        parts = [f"target {self.target}"]
        if self.mode is SchedulingMode.NOWAIT:
            parts.append("nowait")
        elif self.mode is SchedulingMode.NAME_AS:
            parts.append(f"name_as({self.tag})")
        elif self.mode is SchedulingMode.AWAIT:
            parts.append("await")
        if self.timeout is not None:
            parts.append(f"timeout({self.timeout:g})")
        if self.if_condition is not None:
            parts.append(f"if({self.if_condition})")
        parts.extend(str(c) for c in self.data_clauses)
        return " ".join(parts)
