"""The Pyjama-style runtime: virtual-target registry and Algorithm 1.

``PjRuntime.invoke_target_block`` is a line-for-line transcription of the
paper's Algorithm 1 ("Target block code execution"):

.. code-block:: text

    procedure invokeTargetBlock(T, E, B, a)
        if T in E then  B.exec()          # synchronous, context-aware inline
        else            E.post(B)         # asynchronous post
        if a is nowait or name_as then return
        if a is await then
            while B is not finished do    # logical barrier
                T.processAnotherEventHandler()
        else T.wait()                     # default option
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable

from ..obs import EventKind
from ..obs import recorder as _obs
from ..policy import StealRing, policy_from_env
from .directives import SchedulingMode, TargetDirective, TargetKind
from .errors import (
    AwaitTimeoutError,
    RuntimeStateError,
    TargetExistsError,
    UnknownTargetError,
)
from .region import RegionState, TargetRegion
from .targets import EdtTarget, VirtualTarget, WorkerTarget, current_target
from .tags import TagRegistry

__all__ = ["PjRuntime", "default_runtime", "set_default_runtime", "reset_default_runtime"]

# Dispatch-plan tables, precomputed so the per-dispatch clause decision is a
# dict/frozenset lookup instead of enum construction and per-call tuple
# building (SchedulingMode.is_fire_and_forget allocates a tuple each call).
_MODE_BY_VALUE = {m.value: m for m in SchedulingMode}
_FIRE_AND_FORGET = frozenset((SchedulingMode.NOWAIT, SchedulingMode.NAME_AS))
_WAITING_MODES = frozenset((SchedulingMode.DEFAULT, SchedulingMode.AWAIT))


class PjRuntime:
    """A self-contained runtime instance.

    Most applications use the process-wide :func:`default_runtime`, mirroring
    Pyjama's static ``PjRuntime``; tests create private instances for
    isolation.

    Internal control variables (ICVs), in the spirit of OpenMP's
    ``default-device-var``:

    * ``default_target_var`` — the virtual target used when a directive omits
      the target-property clause.
    * ``await_poll_var`` — the poll interval (seconds) of the logical barrier.
    * ``strict_await_var`` — if True, ``await`` from a thread that belongs to
      no virtual target raises instead of degrading to a blocking wait.
    * ``queue_capacity_var`` — default bounded-queue capacity for targets
      created through this runtime (None = unbounded).
    * ``rejection_policy_var`` — default full-queue policy for those targets
      (``block`` / ``reject`` / ``caller_runs``).
    * ``default_timeout_var`` — default deadline (seconds) applied to waiting
      dispatches when the directive/call gives none (None = wait forever).
    * ``trace_enabled_var`` — event tracing on/off.  Tracing state is
      process-global (one :class:`~repro.obs.TraceSession` spans every
      runtime, like ``OMP_TOOL`` spans every device); this ICV is the
      runtime-level view of that switch, also settable via ``REPRO_TRACE=1``.
    * ``steal_var`` — default work-stealing enablement for worker targets
      created through this runtime (seeded from ``REPRO_STEAL``; default
      off).  Opted-in targets join the runtime's
      :class:`~repro.policy.StealRing` as both thief and victim.
    * ``batch_max_var`` — default dequeue batch bound for worker targets
      (seeded from ``REPRO_BATCH_MAX``; default 1 = no batching).
    * ``autoscale_var`` — default pool-autoscaling enablement for worker
      targets (seeded from ``REPRO_AUTOSCALE``; default off).

    The three policy ICVs are resolved at :meth:`create_worker` time and are
    documented, with their decision rules and trace-event signatures, in
    docs/TUNING.md.
    """

    def __init__(self) -> None:
        self._targets: dict[str, VirtualTarget] = {}
        # Read-mostly snapshot of the registry (copy-on-write): every
        # mutation republishes a fresh dict under ``_lock``, so the dispatch
        # hot path resolves names with one lock-free dict read.  Rebinding a
        # dict attribute is atomic under the GIL; readers see either the old
        # or the new snapshot, never a half-mutated one.
        self._targets_view: dict[str, VirtualTarget] = {}
        self._lock = threading.Lock()
        self.tags = TagRegistry()
        # ICVs
        self.default_target_var: str | None = None
        self.await_poll_var: float = 0.05
        self.strict_await_var: bool = False
        self.queue_capacity_var: int | None = None
        self.rejection_policy_var: str = "block"
        self.default_timeout_var: float | None = None
        # Adaptive-policy ICVs, seeded from the environment at construction
        # time (not import time) so tests and launch scripts can set the
        # variables after ``import repro``.  All default to today's
        # unpoliced behaviour; see docs/TUNING.md.
        _policy = policy_from_env()
        self.steal_var: bool = _policy.steal
        self.batch_max_var: int = _policy.batch_max
        self.autoscale_var: bool = _policy.autoscale
        # One steal ring per runtime: worker targets with stealing enabled
        # join at registration and leave at shutdown.
        self._steal_ring = StealRing()
        # Observability: dispatch counters (inline = Algorithm 1 line 7,
        # posted = line 8; per-mode tallies for the scheduling clauses).
        self._counters_lock = threading.Lock()
        self.counters: dict[str, int] = {
            "inline": 0,
            "posted": 0,
            "default": 0,
            "nowait": 0,
            "name_as": 0,
            "await": 0,
        }

    def _count(self, *keys: str) -> None:
        with self._counters_lock:
            for k in keys:
                self.counters[k] += 1

    # ------------------------------------------------------------ tracing ICV

    @property
    def trace_enabled_var(self) -> bool:
        """Whether the process-global trace session is recording."""
        return _obs.is_enabled()

    @trace_enabled_var.setter
    def trace_enabled_var(self, value: bool) -> None:
        if value:
            if not _obs.is_enabled():
                _obs.enable()
        else:
            _obs.disable()

    def reset_counters(self) -> None:
        with self._counters_lock:
            for k in self.counters:
                self.counters[k] = 0

    # -------------------------------------------------------------- registry

    def register_target(self, target: VirtualTarget) -> VirtualTarget:
        with self._lock:
            if target.name in self._targets:
                raise TargetExistsError(target.name)
            self._targets[target.name] = target
            self._targets_view = dict(self._targets)
            if self.default_target_var is None:
                self.default_target_var = target.name
        # Duck-typed on purpose: any target that opted into stealing (only
        # thread-backed workers can — a thief must share the victim's address
        # space) enrolls in this runtime's ring; it leaves at its shutdown.
        if getattr(target, "steal_enabled", False) and hasattr(target, "join_ring"):
            target.join_ring(self._steal_ring)
        return target

    def _queue_options(
        self, queue_capacity: int | None, rejection_policy: str | None
    ) -> dict[str, Any]:
        return {
            "queue_capacity": (
                queue_capacity if queue_capacity is not None else self.queue_capacity_var
            ),
            "rejection_policy": (
                rejection_policy if rejection_policy is not None else self.rejection_policy_var
            ),
        }

    def create_worker(
        self,
        name: str,
        max_threads: int,
        *,
        queue_capacity: int | None = None,
        rejection_policy: str | None = None,
        steal: bool | None = None,
        batch_max: int | None = None,
        autoscale: bool | None = None,
        autoscale_min: int | None = None,
        autoscale_max: int | None = None,
    ) -> WorkerTarget:
        """``virtual_target_create_worker`` (paper Table II).

        *queue_capacity* / *rejection_policy* default to the
        ``queue_capacity_var`` / ``rejection_policy_var`` ICVs; the adaptive
        policies (*steal*, *batch_max*, *autoscale* — see docs/TUNING.md)
        default to the ``steal_var`` / ``batch_max_var`` / ``autoscale_var``
        ICVs, themselves seeded from ``REPRO_STEAL`` / ``REPRO_BATCH_MAX`` /
        ``REPRO_AUTOSCALE``.  *autoscale_min* / *autoscale_max* bound the
        autoscaled lane count (defaults: 1 and ``2 * max_threads``).
        """
        target = WorkerTarget(
            name,
            max_threads,
            steal=self.steal_var if steal is None else steal,
            batch_max=self.batch_max_var if batch_max is None else batch_max,
            autoscale=self.autoscale_var if autoscale is None else autoscale,
            autoscale_min=autoscale_min,
            autoscale_max=autoscale_max,
            **self._queue_options(queue_capacity, rejection_policy),
        )
        try:
            self.register_target(target)
        except TargetExistsError:
            target.shutdown(wait=False)
            raise
        return target

    def create_process_worker(
        self,
        name: str,
        max_workers: int,
        *,
        queue_capacity: int | None = None,
        rejection_policy: str | None = None,
        max_restarts: int = 3,
        start_method: str | None = None,
        heartbeat_interval: float = 1.0,
        heartbeat_misses: int = 3,
        cancel_grace: float = 5.0,
        spawn_timeout: float = 60.0,
    ):
        """``virtual_target_create_process_worker(tname, m)``: a worker
        virtual target backed by *max_workers* supervised OS processes.

        Same directive surface as :meth:`create_worker` (``virtual(name)``,
        ``nowait``/``name_as``/``await``, ``timeout=``, bounded queues and
        rejection policies), but region bodies execute outside the GIL of
        this process — the device layer for CPU-bound kernels.  See
        ``docs/DISTRIBUTION.md`` for when to choose process over thread
        targets, and :class:`~repro.dist.ProcessTarget` for the supervision
        knobs (*max_restarts*, heartbeats, *cancel_grace*).
        """
        from ..dist import ProcessTarget  # lazy: dist imports core

        target = ProcessTarget(
            name,
            max_workers,
            max_restarts=max_restarts,
            start_method=start_method,
            heartbeat_interval=heartbeat_interval,
            heartbeat_misses=heartbeat_misses,
            cancel_grace=cancel_grace,
            spawn_timeout=spawn_timeout,
            **self._queue_options(queue_capacity, rejection_policy),
        )
        try:
            self.register_target(target)
        except TargetExistsError:
            target.shutdown(wait=False)
            raise
        return target

    def create_cluster(
        self,
        name: str,
        endpoints,
        *,
        shards: int = 1,
        queue_capacity: int | None = None,
        rejection_policy: str | None = None,
        max_restarts: int = 3,
        heartbeat_interval: float = 1.0,
        heartbeat_misses: int = 3,
        cancel_grace: float = 5.0,
        connect_timeout: float = 10.0,
    ):
        """``virtual_target_create_cluster(tname, endpoints)``: a worker
        virtual target backed by socket-connected remote worker agents.

        Same directive surface as :meth:`create_worker` /
        :meth:`create_process_worker`, but region bodies execute on cluster
        worker agents (``python -m repro cluster-worker``) at the given
        ``host:port`` *endpoints* — *shards* lanes per endpoint, all pulling
        one shared queue (least-loaded routing across hosts).  See
        :class:`~repro.cluster.ClusterTarget` for the reconnect/heartbeat
        knobs and ``docs/DISTRIBUTION.md`` for failure semantics.
        """
        from ..cluster import ClusterTarget  # lazy: cluster imports core

        target = ClusterTarget(
            name,
            endpoints,
            shards=shards,
            max_restarts=max_restarts,
            heartbeat_interval=heartbeat_interval,
            heartbeat_misses=heartbeat_misses,
            cancel_grace=cancel_grace,
            connect_timeout=connect_timeout,
            **self._queue_options(queue_capacity, rejection_policy),
        )
        try:
            self.register_target(target)
        except TargetExistsError:
            target.shutdown(wait=False)
            raise
        return target

    def register_edt(
        self,
        name: str,
        *,
        queue_capacity: int | None = None,
        rejection_policy: str | None = None,
    ) -> EdtTarget:
        """``virtual_target_register_edt`` (paper Table II): the calling
        thread becomes the EDT of a new target named *name*."""
        target = EdtTarget(name, **self._queue_options(queue_capacity, rejection_policy))
        self.register_target(target)
        target.register_current_thread()
        return target

    def start_edt(
        self,
        name: str,
        *,
        queue_capacity: int | None = None,
        rejection_policy: str | None = None,
    ) -> EdtTarget:
        """Spawn a dedicated EDT thread (headless convenience)."""
        target = EdtTarget(name, **self._queue_options(queue_capacity, rejection_policy))
        self.register_target(target)
        target.start_in_thread()
        return target

    def get_target(self, name: str) -> VirtualTarget:
        # Lock-free: reads the copy-on-write snapshot (see __init__).
        target = self._targets_view.get(name)
        if target is None:
            raise UnknownTargetError(name)
        return target

    def has_target(self, name: str) -> bool:
        return name in self._targets_view

    def target_names(self) -> list[str]:
        return sorted(self._targets_view)

    def unregister_target(self, name: str, *, shutdown: bool = True, wait: bool = False) -> None:
        with self._lock:
            target = self._targets.pop(name, None)
            self._targets_view = dict(self._targets)
            if self.default_target_var == name:
                self.default_target_var = next(iter(self._targets), None)
        if target is not None and shutdown:
            target.shutdown(wait=wait)

    def shutdown(self, wait: bool = True) -> None:
        """Shut down every registered target and clear the registry."""
        with self._lock:
            targets = list(self._targets.values())
            self._targets.clear()
            self._targets_view = {}
            self.default_target_var = None
        for t in targets:
            t.shutdown(wait=wait)
        # Keep recorded failures: a wait_tag released by this teardown must
        # still see that its regions were cancelled, not a clean join.
        self.tags.clear(keep_errors=True)

    # ------------------------------------------------------------ Algorithm 1

    def invoke_target_block(
        self,
        target_name: str | None,
        region: TargetRegion | Callable[[], Any],
        mode: SchedulingMode | str = SchedulingMode.DEFAULT,
        *,
        tag: str | None = None,
        timeout: float | None = None,
    ) -> TargetRegion:
        """Dispatch a target block per Algorithm 1 and the scheduling clause.

        Returns the region (usable as a handle: ``.wait()``, ``.result()``).
        For ``DEFAULT`` and ``AWAIT`` the call returns only after the block
        finished, re-raising any exception from the block's body.  *timeout*
        (or the ``default_timeout_var`` ICV) bounds the waiting modes: past
        the deadline the region is withdrawn if still queued and
        :class:`AwaitTimeoutError` is raised with a diagnostic dump.
        """
        if isinstance(mode, str):
            # Table lookup on the hot path; fall back to the enum
            # constructor so an unknown value raises the same ValueError.
            mode = _MODE_BY_VALUE.get(mode) or SchedulingMode(mode)
        if not isinstance(region, TargetRegion):
            region = TargetRegion(region)
        if timeout is None:
            timeout = self.default_timeout_var
        if region.state is RegionState.CANCELLED:
            # An already-cancelled handle must not be posted: run() would
            # no-op on the executor, leaving fire-and-forget callers with a
            # silently dead handle and waiting callers with the right error
            # only by accident.  Surface it deterministically here.
            if mode in _FIRE_AND_FORGET:
                return region
            region.result()  # raises RegionCancelledError
            return region
        if mode is SchedulingMode.NAME_AS:
            if tag is None:
                raise RuntimeStateError("name_as scheduling requires a tag")
            region.tag = tag  # travels with the region (cluster targets ship it)
            self.tags.register(tag, region)

        name = target_name if target_name is not None else self.default_target_var
        if name is None:
            raise UnknownTargetError("<default>")
        # Lock-free registry snapshot read (copy-on-write, see __init__).
        executor = self._targets_view.get(name)
        if executor is None:
            raise UnknownTargetError(name)

        session = _obs.session()
        if session.enabled:
            session.emit(
                EventKind.REGION_SUBMIT, target=name, region=region.seq,
                name=region.label, arg=mode.value,
            )

        # Affinity router (Algorithm 1 lines 6-7).  Inline elision applies
        # only to thread-backed targets: membership means the calling thread
        # *is* the execution environment, so running the block synchronously
        # is indistinguishable from posting it (same address space, same
        # thread affinity).  Process targets keep supports_inline=False —
        # their execution environment is a different address space, and no
        # parent thread ever qualifies — so their regions always take the
        # posted path below.
        if executor.supports_inline and executor.contains():
            # Line 6-7: already in the target's context -> run synchronously.
            self._count("inline", mode.value)
            if session.enabled:
                session.emit(
                    EventKind.INLINE_ELIDE, target=name, region=region.seq,
                    name=region.label,
                )
                session.emit(
                    EventKind.EXEC_BEGIN, target=name, region=region.seq,
                    name=region.label,
                )
            region.run()
            if session.enabled:
                # Terminal state is the ground truth: a cancel that raced the
                # inline run (run() then no-opped) stamps "cancelled", never a
                # fabricated "completed".
                if region.state is RegionState.CANCELLED:
                    outcome = "cancelled"
                elif region.exception is not None:
                    outcome = "failed"
                else:
                    outcome = "completed"
                session.emit(
                    EventKind.EXEC_END, target=name, region=region.seq,
                    name=region.label, arg=outcome,
                )
            if mode in _WAITING_MODES:
                region.result()  # re-raise body exception for waiting modes
            return region

        self._count("posted", mode.value)
        # The deadline bounds *admission* too: a bounded target under the
        # ``block`` policy parks the poster for at most ``timeout`` seconds
        # before raising QueueFullError, so a fire-and-forget dispatch into a
        # saturated queue cannot wedge the encountering thread forever (an
        # event loop posting with nowait depends on this).  Waiting modes
        # re-budget the wait after admission — the deadline is per phase.
        executor.post(region, timeout=timeout)  # line 8

        if mode in _FIRE_AND_FORGET:  # lines 10-12
            return region

        if mode is SchedulingMode.AWAIT:  # lines 13-16
            self._logical_barrier(region, executor, timeout=timeout)
        else:  # line 17, default: T.wait()
            if not region.wait(timeout):
                self._on_deadline(region, executor, timeout, kind="wait")
        region.result()  # surface exceptions exactly like inline execution
        return region

    def _on_deadline(
        self,
        region: TargetRegion,
        executor: VirtualTarget,
        timeout: float | None,
        *,
        kind: str,
    ) -> None:
        """A waiting dispatch blew its deadline: withdraw and diagnose.

        A still-queued region is cancelled (so it cannot run after the
        caller has given up on it); a running one is flagged via its
        cooperative cancel token and keeps the queue slot until the body
        notices.  Either way the caller gets :class:`AwaitTimeoutError` with
        queue depths and member threads of every registered target.
        """
        withdrawn = region.request_cancel(
            AwaitTimeoutError(f"deadline of {timeout}s expired", "")
        )
        state = "withdrawn before start" if withdrawn else f"left {region.state.value}"
        raise AwaitTimeoutError(
            f"{kind} on region {region.name!r} (target {executor.name!r}) exceeded "
            f"its {timeout}s deadline; region {state}",
            self.diagnostic_dump(),
        )

    def _logical_barrier(
        self,
        region: TargetRegion,
        executor: VirtualTarget,
        timeout: float | None = None,
    ) -> None:
        """Keep the encountering thread useful while *region* runs elsewhere.

        If the thread belongs to a virtual target, pump that target's queue
        ("T.processAnotherEventHandler()"); otherwise degrade to a blocking
        wait (or raise, under ``strict_await_var``).  *timeout* arms the
        barrier watchdog: a barrier still spinning past its deadline raises
        :class:`AwaitTimeoutError` with a full diagnostic dump instead of
        pumping forever.
        """
        mine = current_target()
        if mine is None:
            if self.strict_await_var:
                raise RuntimeStateError(
                    "await used from a thread that belongs to no virtual target; "
                    "it would block instead of processing other events"
                )
            if not region.wait(timeout):
                self._on_deadline(region, executor, timeout, kind="await")
            return
        if not mine.supports_pumping:
            raise RuntimeStateError(
                f"virtual target {mine.name!r} wraps an event loop that cannot "
                "be pumped re-entrantly; use nowait plus the adapter's "
                "as_future()/completion hooks instead of await"
            )
        region.add_done_callback(lambda _r: mine.wakeup())
        session = _obs.session()
        if session.enabled:
            session.emit(
                EventKind.BARRIER_ENTER, target=mine.name, region=region.seq,
                name=region.label,
            )
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            while not region.done:
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        self._on_deadline(region, mine, timeout, kind="await")
                    poll = min(self.await_poll_var, remaining)
                else:
                    poll = self.await_poll_var
                if mine.process_one(timeout=poll) and session.enabled:
                    # Barrier-mode steal: the awaiting thread worked its own
                    # target's queue, so victim and thief coincide (ring
                    # steals attribute a sibling target instead).
                    session.emit(
                        EventKind.PUMP_STEAL, target=mine.name, region=region.seq,
                        name=region.label,
                        arg={
                            "victim": mine.name,
                            "thief": mine.name,
                            "lane": threading.current_thread().name,
                            "mode": "barrier",
                        },
                    )
        finally:
            if session.enabled:
                session.emit(
                    EventKind.BARRIER_EXIT, target=mine.name, region=region.seq,
                    name=region.label,
                )

    # ----------------------------------------------------------- directives

    def execute_directive(
        self,
        directive: TargetDirective,
        body: Callable[[], Any],
        *,
        condition: bool = True,
    ) -> TargetRegion:
        """Execute *body* under a resolved :class:`TargetDirective`.

        ``condition=False`` models a false ``if`` clause: per OpenMP rules the
        construct executes as if the directive were absent, i.e. inline and
        synchronous in the encountering thread.
        """
        region = TargetRegion(body)
        if not condition:
            region.run()
            region.result()
            return region
        if directive.target.kind is TargetKind.DEVICE:
            raise RuntimeStateError(
                "physical device targets are out of scope for the virtual-target "
                "runtime; use an OpenMP implementation with accelerator support"
            )
        return self.invoke_target_block(
            directive.target.name,
            region,
            directive.mode,
            tag=directive.tag,
            timeout=directive.timeout,
        )

    # ------------------------------------------------------------------ waits

    def wait_tag(self, tag: str, *, timeout: float | None = None, strict: bool = False) -> None:
        """The ``wait(name-tag)`` clause: join all blocks named *tag*.

        When called from a thread that belongs to a virtual target, other
        queued work is processed while waiting (logical barrier), keeping an
        EDT responsive even inside a join.
        """
        mine = current_target()
        helper = None
        if mine is not None:
            if not mine.supports_pumping:
                # Same guard as the await logical barrier: pumping a foreign
                # non-reentrant loop (e.g. asyncio) from inside one of its
                # callbacks would re-enter it.  Fail with guidance instead.
                raise RuntimeStateError(
                    f"wait_tag({tag!r}) called from a member of virtual target "
                    f"{mine.name!r}, which wraps an event loop that cannot be "
                    "pumped re-entrantly; await the regions with as_future() "
                    "(or join the tag from a pumpable thread) instead"
                )
            poll = self.await_poll_var
            helper = lambda: mine.process_one(timeout=poll)  # noqa: E731
        session = _obs.session()
        if session.enabled:
            session.emit(
                EventKind.TAG_WAIT_BEGIN,
                target=mine.name if mine is not None else None, name=tag,
            )
        try:
            self.tags.wait(tag, timeout=timeout, strict=strict, helper=helper)
        finally:
            if session.enabled:
                session.emit(
                    EventKind.TAG_WAIT_END,
                    target=mine.name if mine is not None else None, name=tag,
                )

    # -------------------------------------------------------------- telemetry

    def diagnostic_dump(self) -> str:
        """Multi-line snapshot of every target: queue depth, capacity,
        high-water mark, rejection counters, member threads.

        Attached to :class:`AwaitTimeoutError` by the barrier watchdog so a
        stuck system explains itself."""
        with self._lock:
            targets = list(self._targets.values())
        lines = [f"runtime diagnostics ({len(targets)} target(s)):"]
        lines.extend(f"  {t.describe()}" for t in targets)
        with self._counters_lock:
            lines.append(f"  dispatch counters: {dict(self.counters)}")
        lines.append(f"  {_obs.session().describe()}")
        return "\n".join(lines)


_default_runtime: PjRuntime | None = None
_default_lock = threading.Lock()


def default_runtime() -> PjRuntime:
    """The process-wide runtime (created lazily)."""
    global _default_runtime
    with _default_lock:
        if _default_runtime is None:
            _default_runtime = PjRuntime()
        return _default_runtime


def set_default_runtime(runtime: PjRuntime) -> PjRuntime:
    """Replace the process-wide runtime (returns it for chaining)."""
    global _default_runtime
    with _default_lock:
        _default_runtime = runtime
    return runtime


def reset_default_runtime(*, shutdown: bool = True) -> None:
    """Tear down the process-wide runtime (test isolation helper)."""
    global _default_runtime
    with _default_lock:
        rt, _default_runtime = _default_runtime, None
    if rt is not None and shutdown:
        rt.shutdown(wait=False)
