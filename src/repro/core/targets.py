"""Virtual targets: software executors for the extended ``target`` directive.

A *virtual target* (paper §III-A) is a syntax-level abstraction of a thread
pool executor; it shares the host memory, so posting a region to it involves
no data mapping.  The paper's experimental implementation offers two kinds
(Table II), reproduced here:

* :class:`WorkerTarget` — a named pool of ``m`` background threads
  (``virtual_target_create_worker``).
* :class:`EdtTarget` — a single special thread, typically the GUI event
  dispatch thread, that the application registers
  (``virtual_target_register_edt``).

Both support the *logical barrier* needed by the ``await`` clause: a thread
that belongs to a target can process other queued work while it waits for an
offloaded region to complete (Algorithm 1 lines 13-16).
"""

from __future__ import annotations

import abc
import itertools
import logging
import os
import queue
import threading
import time
from typing import Any, Callable

from ..obs import EventKind
from ..obs import recorder as _obs
from ..obs.events import now_ns
from . import injection as _inj
from .errors import (
    AwaitTimeoutError,
    QueueFullError,
    RuntimeStateError,
    TargetShutdownError,
)
from .region import RegionState, TargetRegion

__all__ = [
    "VirtualTarget",
    "WorkerTarget",
    "EdtTarget",
    "current_target",
    "REJECTION_POLICIES",
]


_thread_target = threading.local()
_logger = logging.getLogger(__name__)

#: Valid values for a target's bounded-queue rejection policy:
#: ``block`` parks the poster until space frees (or its timeout elapses),
#: ``reject`` raises :class:`QueueFullError` immediately, and
#: ``caller_runs`` executes the item in the posting thread — the classic
#: ThreadPoolExecutor.CallerRunsPolicy backpressure valve.
REJECTION_POLICIES = ("block", "reject", "caller_runs")


def _depth_stride_from_env() -> int:
    """Queue-depth sampling stride (``REPRO_TRACE_DEPTH_STRIDE``, default 8).

    With tracing on, every enqueue/dequeue used to emit a ``QUEUE_DEPTH``
    sample — two extra events plus a depth computation per region on the hot
    path.  Depth is a *trend* signal (Perfetto renders it as a counter
    track), so sampling every Nth transition per target loses nothing a
    human reads from the chart while cutting the tracing cost of the
    steady-state dispatch loop.  Stride 1 restores the old exhaustive
    behaviour; the first transition after a session (re)start always emits,
    so short traces still contain samples.

    Re-read by every target at the start of each recording window (see
    :meth:`VirtualTarget._trace_depth`), so setting the variable after
    ``import repro`` takes effect on the next trace start instead of being
    silently ignored.
    """
    raw = os.environ.get("REPRO_TRACE_DEPTH_STRIDE", "")
    try:
        return max(1, int(raw)) if raw else 8
    except ValueError:
        return 8


#: Import-time snapshot of the stride, kept as the documented default.  The
#: live value is re-read per recording window by ``_trace_depth``; this
#: constant only seeds targets before their first traced transition.
QUEUE_DEPTH_SAMPLE_STRIDE = _depth_stride_from_env()


def current_target() -> "VirtualTarget | None":
    """The virtual target the calling thread belongs to, if any."""
    return getattr(_thread_target, "value", None)


class _Wakeup:
    """Sentinel posted to a queue purely to unblock a pumping thread."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<wakeup>"


_WAKEUP = _Wakeup()


class _Retire:
    """Sentinel asking exactly one pool lane to exit (autoscaler shrink)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<retire>"


_RETIRE = _Retire()


def _is_control(item: Any) -> bool:
    """True for queue control sentinels (wakeup/shutdown/retire).

    Sentinels ride the queue uncounted: they bypass capacity, never appear in
    ``work_count()`` and are invisible to dequeue batching and stealing.
    """
    return isinstance(item, (_Wakeup, _Shutdown, _Retire))


def _item_identity(item: Any) -> tuple[int | None, str]:
    """(region id, trace label) of a queued item.

    Regions carry their own ``seq``/``label``; plain callables may be stamped
    by higher layers (the event loop tags dispatch closures with
    ``_trace_id``/``_trace_name`` so GUI events correlate too).
    """
    if isinstance(item, TargetRegion):
        return item.seq, item.label
    rid = getattr(item, "_trace_id", None)
    label = (
        getattr(item, "_trace_name", None)
        or getattr(item, "__qualname__", None)
        or type(item).__name__
    )
    return rid, label


class _TargetQueue:
    """The FIFO behind a virtual target, with optional capacity.

    ``queue.Queue`` cannot express what shutdown needs: control sentinels
    must always get through (a full queue would otherwise wedge shutdown
    itself), and a teardown must be able to atomically rip out every queued
    item to cancel it.  So this is a small purpose-built deque + condvars.

    Capacity counts *work* items only; sentinels ride along uncounted via
    :meth:`put_internal`.
    """

    def __init__(self, owner: str, capacity: int | None = None) -> None:
        if capacity is not None and capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self._owner = owner
        self.capacity = capacity
        self._items: list[Any] = []
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self.high_water = 0
        # Work items currently queued (sentinels excluded), maintained O(1)
        # at put/get so capacity checks and depth samples never rescan the
        # backlog.  Guarded by ``_lock``; read lock-free for telemetry.
        self._work = 0

    # ------------------------------------------------------------- producers

    def _work_count(self) -> int:
        return self._work

    def put(self, item: Any, *, block: bool = True, timeout: float | None = None) -> bool:
        """Enqueue *item*; returns False if a bounded queue stayed full.

        With ``block=True`` waits for space (bounded by *timeout*); raises
        :class:`TargetShutdownError` if the queue closes while waiting, so a
        poster blocked on a full queue cannot outlive the target.
        """
        hooks = _inj.hooks
        if (
            hooks is not None
            and hooks.force_queue_full is not None
            and self.capacity is not None
            and hooks.force_queue_full(self._owner)
        ):
            # Fault injection: behave exactly as a bounded put that found no
            # space within its budget, so every rejection policy is reachable
            # without actually wedging the queue.
            return False
        with self._not_full:
            if self.capacity is not None:
                if block:
                    ok = self._not_full.wait_for(
                        lambda: self._closed or self._work < self.capacity,
                        timeout=timeout,
                    )
                    if self._closed:
                        raise TargetShutdownError(self._owner)
                    if not ok:
                        return False
                elif self._work >= self.capacity:
                    return False
            if self._closed:
                raise TargetShutdownError(self._owner)
            self._items.append(item)
            if not _is_control(item):
                self._work += 1
                if self._work > self.high_water:
                    self.high_water = self._work
            self._not_empty.notify()
        return True

    def put_internal(self, item: Any) -> None:
        """Enqueue a control sentinel, ignoring capacity and closure."""
        with self._not_empty:
            self._items.append(item)
            self._not_empty.notify()

    # ------------------------------------------------------------- consumers

    def get(self, timeout: float | None = None) -> Any:
        with self._not_empty:
            if not self._not_empty.wait_for(lambda: self._items, timeout=timeout):
                raise queue.Empty
            item = self._items.pop(0)
            if not _is_control(item):
                self._work -= 1
            self._not_full.notify()
            return item

    def get_nowait(self) -> Any:
        with self._not_empty:
            if not self._items:
                raise queue.Empty
            item = self._items.pop(0)
            if not _is_control(item):
                self._work -= 1
            self._not_full.notify()
            return item

    def get_batch(self, max_items: int, timeout: float | None = None) -> list[Any]:
        """Dequeue up to *max_items* head items in one lock acquisition.

        The dequeue-batching primitive: FIFO order is preserved exactly, and
        control sentinels stay batch barriers — a sentinel at the head is
        returned alone, and collection stops *before* any later sentinel, so
        shutdown/retire ordering semantics ("everything queued before the
        sentinel still runs first") are identical to item-at-a-time ``get``.
        Raises ``queue.Empty`` if nothing arrived within *timeout*.
        """
        with self._not_empty:
            if not self._not_empty.wait_for(lambda: self._items, timeout=timeout):
                raise queue.Empty
            batch: list[Any] = []
            freed = 0
            while self._items and len(batch) < max_items:
                head = self._items[0]
                if _is_control(head):
                    if batch:
                        break  # the sentinel waits for the next acquisition
                    batch.append(self._items.pop(0))
                    break
                batch.append(self._items.pop(0))
                self._work -= 1
                freed += 1
            if freed:
                self._not_full.notify(freed)
            else:
                self._not_full.notify()
            return batch

    def steal_work(self) -> Any | None:
        """Remove and return the oldest queued work item for a ring thief.

        Returns None when the queue is closed (teardown owns the backlog
        then — ``drain_items`` and this method serialise on the queue lock,
        so an item is either stolen or cancelled, never both) or holds no
        work.  Sentinels are skipped: they address this target's own loops.
        """
        with self._lock:
            if self._closed:
                return None
            for i, item in enumerate(self._items):
                if not _is_control(item):
                    del self._items[i]
                    self._work -= 1
                    self._not_full.notify()
                    return item
            return None

    # -------------------------------------------------------------- teardown

    def close(self) -> None:
        """Refuse further posts; wake blocked posters so they fail fast."""
        with self._lock:
            self._closed = True
            self._not_full.notify_all()
            self._not_empty.notify_all()

    def drain_items(self) -> list[Any]:
        """Atomically remove and return everything queued (teardown helper)."""
        with self._lock:
            items, self._items = self._items, []
            self._work = 0
            self._not_full.notify_all()
            return items

    def qsize(self) -> int:
        with self._lock:
            return len(self._items)

    def work_count(self) -> int:
        """Queued *work* items (sentinels excluded) — the queue-depth sample.

        Lock-free: the counter is a single int maintained under the queue
        lock; reading it races only by one item, which a telemetry sample
        tolerates.
        """
        return self._work


class VirtualTarget(abc.ABC):
    """Common behaviour of all virtual targets.

    Subclasses provide the thread(s) that drain :attr:`_queue`.  The queue
    holds :class:`TargetRegion` instances, plain callables (events posted by
    higher layers), and wakeup sentinels.
    """

    def __init__(
        self,
        name: str,
        *,
        queue_capacity: int | None = None,
        rejection_policy: str = "block",
    ) -> None:
        if rejection_policy not in REJECTION_POLICIES:
            raise ValueError(
                f"unknown rejection policy {rejection_policy!r}; "
                f"choose one of {', '.join(REJECTION_POLICIES)}"
            )
        self.name = name
        self.rejection_policy = rejection_policy
        self._queue = _TargetQueue(name, queue_capacity)
        self._members: set[threading.Thread] = set()
        self._members_lock = threading.Lock()
        # Queue-depth sampling state: (trace-session generation, atomic
        # transition counter for that generation, stride in force for that
        # generation).  The counter is an ``itertools.count`` so concurrent
        # poster/worker threads never lose a tick to a read-modify-write
        # race; the stride is re-read from the environment whenever the
        # generation changes.  See ``_trace_depth``.
        self._depth_tick: tuple[int, Any, int] = (-1, None, QUEUE_DEPTH_SAMPLE_STRIDE)
        self._shutdown = threading.Event()
        self._stats_lock = threading.Lock()
        self._stats: dict[str, int] = {
            "posted": 0,
            "rejected": 0,
            "caller_runs": 0,
            "cancelled_on_shutdown": 0,
        }

    def _bump(self, key: str) -> None:
        with self._stats_lock:
            self._stats[key] += 1

    # ----------------------------------------------------------- membership

    def contains(self, thread: threading.Thread | None = None) -> bool:
        """True if *thread* (default: the calling thread) belongs to this
        target's execution environment (Algorithm 1 line 6).

        Lock-free on purpose: this check sits on every dispatch (the
        affinity router consults it before posting), and CPython set
        membership is a single C-level operation the GIL keeps consistent
        against the guarded mutations in ``_enter_member``/``_exit_member``.
        """
        thread = thread or threading.current_thread()
        return thread in self._members

    def _enter_member(self, thread: threading.Thread | None = None) -> None:
        thread = thread or threading.current_thread()
        with self._members_lock:
            self._members.add(thread)
        if thread is threading.current_thread():
            _thread_target.value = self

    def _exit_member(self, thread: threading.Thread | None = None) -> None:
        thread = thread or threading.current_thread()
        with self._members_lock:
            self._members.discard(thread)
        if thread is threading.current_thread() and current_target() is self:
            _thread_target.value = None

    @property
    def member_count(self) -> int:
        with self._members_lock:
            return len(self._members)

    # ------------------------------------------------------------- lifecycle

    @property
    def alive(self) -> bool:
        return not self._shutdown.is_set()

    @abc.abstractmethod
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work; drain the backlog (``wait=True``) or cancel
        it (``wait=False``) so no queued region is ever silently stranded."""

    def _cancel_pending(self) -> int:
        """Atomically pull every queued item and cancel it.

        Queued :class:`TargetRegion` instances transition to ``CANCELLED``
        with a :class:`TargetShutdownError` reason, so every waiter —
        ``region.wait()/result()``, ``wait_tag``, ``await`` logical barriers —
        unblocks promptly with a diagnosable error instead of deadlocking on
        work that will never run.  Plain callables are dropped and logged.
        Control sentinels are re-queued untouched.  Returns the number of
        regions cancelled.
        """
        cancelled = 0
        dropped = 0
        reason = TargetShutdownError(self.name)
        session = _obs.session()
        for item in self._queue.drain_items():
            if _is_control(item):
                self._queue.put_internal(item)
            elif isinstance(item, TargetRegion):
                if item.cancel(reason):
                    cancelled += 1
                    self._bump("cancelled_on_shutdown")
            else:
                dropped += 1
                if session.enabled:
                    # Dropped callables have no handle to carry the news, so
                    # the trace must: their ENQUEUE would otherwise dangle
                    # forever (every enqueue resolves as dequeue or cancel).
                    region, label = _item_identity(item)
                    session.emit(
                        EventKind.CANCEL, target=self.name, region=region,
                        name=label, arg=type(reason).__name__,
                    )
        if dropped:
            _logger.warning(
                "shutdown of target %r dropped %d queued callable(s)", self.name, dropped
            )
        return cancelled

    # --------------------------------------------------------------- posting

    def post(
        self,
        item: TargetRegion | Callable[[], Any],
        *,
        timeout: float | None = None,
    ) -> None:
        """Enqueue a region or a plain callable for asynchronous execution
        (Algorithm 1 line 8: ``E.post(B)``).

        When the target has a bounded queue and it is full, the configured
        :attr:`rejection_policy` decides: ``block`` parks the caller (up to
        *timeout* seconds, then :class:`QueueFullError`), ``reject`` raises
        :class:`QueueFullError` immediately, ``caller_runs`` executes *item*
        synchronously in the posting thread.
        """
        if self._shutdown.is_set():
            raise TargetShutdownError(self.name)
        hooks = _inj.hooks
        if hooks is not None:
            hooks.fire("post", self.name)
        # Timestamp *before* the (possibly blocking) put: the consumer may
        # dequeue the instant the item lands, and its DEQUEUE stamp must sort
        # after this ENQUEUE stamp on the shared perf_counter_ns clock.
        session = _obs.session()
        enq_ts = now_ns() if session.enabled else 0
        policy = self.rejection_policy
        if policy == "block":
            if not self._queue.put(item, block=True, timeout=timeout):
                self._bump("rejected")
                self._trace_reject(item, session, policy)
                raise QueueFullError(self.name, self._queue.capacity, policy)
        elif policy == "reject":
            if not self._queue.put(item, block=False):
                self._bump("rejected")
                self._trace_reject(item, session, policy)
                raise QueueFullError(self.name, self._queue.capacity, policy)
        else:  # caller_runs
            if not self._queue.put(item, block=False):
                if isinstance(item, TargetRegion) and item.done:
                    # A cancel (or shutdown) won the race while this poster
                    # was between the seam point and the full-queue verdict:
                    # the region is already terminal.  Emitting REJECT and
                    # bumping caller_runs here would claim a queue bypass
                    # for work that never ran — drop the corpse silently,
                    # exactly as a dequeue of a withdrawn item does.
                    return
                self._bump("caller_runs")
                # The REJECT marker (arg: policy) is what lets a trace
                # verifier tell this legitimate queue-less execution apart
                # from a lost dequeue.
                self._trace_reject(item, session, policy)
                self._dispatch(item, dequeued=False)
                return
        self._bump("posted")
        if session.enabled:
            region, label = _item_identity(item)
            session.emit(
                EventKind.ENQUEUE, target=self.name, region=region, name=label,
                ts=enq_ts,
            )
            self._trace_depth(session)

    def wakeup(self) -> None:
        """Unblock one thread waiting on the queue without giving it work."""
        self._queue.put_internal(_WAKEUP)

    @property
    def pending(self) -> int:
        """Approximate number of queued items (sentinels included).

        Prefer :meth:`work_count` for diagnostics: control sentinels
        (shutdown markers re-queued by ``drain``/``process_one``, barrier
        wakeups) ride this figure, so an idle target can legitimately show
        ``pending > 0`` while owing no work to anyone.
        """
        return self._queue.qsize()

    def work_count(self) -> int:
        """Queued *work* items, control sentinels excluded.

        This is the honest backlog figure: zero means the target owes
        nothing, even if re-posted shutdown sentinels or barrier wakeups are
        still physically in the queue.  Adapters that keep their backlog
        elsewhere (e.g. the asyncio in-flight shadow set) are covered because
        this delegates to the same :meth:`_depth` their depth samples use.
        """
        return self._depth()

    @property
    def queue_capacity(self) -> int | None:
        return self._queue.capacity

    @property
    def high_water_mark(self) -> int:
        """Deepest the work queue has ever been (backpressure telemetry)."""
        return self._queue.high_water

    @property
    def stats(self) -> dict[str, int]:
        """Snapshot of lifecycle counters (plus the high-water mark)."""
        with self._stats_lock:
            snap = dict(self._stats)
        snap["high_water"] = self._queue.high_water
        return snap

    # ------------------------------------------------------------ processing

    #: Whether member threads can drain the queue cooperatively (the
    #: ``await`` logical barrier).  Adapters wrapping foreign event loops
    #: that cannot be re-entered (e.g. asyncio) set this to False; the
    #: runtime then refuses ``await`` with guidance instead of deadlocking.
    supports_pumping: bool = True

    #: Whether Algorithm 1's inline elision (lines 6-7) may apply: a thread
    #: that *belongs* to the target runs the block synchronously instead of
    #: posting it.  Thread-backed targets share the poster's address space,
    #: so elision is a pure optimization; process-backed targets set this to
    #: False because their execution environment is a different process —
    #: running the block in the encountering thread would silently change
    #: which address space the block's side effects land in.  The affinity
    #: router in ``invoke_target_block`` consults this before ``contains()``.
    supports_inline: bool = True

    #: Target taxonomy for diagnostics: ``worker`` (thread pool), ``edt``
    #: (event-dispatch thread), ``process`` (worker processes), ``cluster``
    #: (socket-connected remote workers), ``asyncio`` (foreign-loop
    #: adapter).  Surfaced by :meth:`describe` and
    #: ``PjRuntime.diagnostic_dump`` so mixed deployments read at a glance.
    kind: str = "virtual"

    @property
    def pool_size(self) -> int:
        """Number of execution lanes (threads or processes) this target owns."""
        return self.member_count

    @property
    def restart_count(self) -> int:
        """Workers restarted by a supervisor (0 for thread-backed targets)."""
        return 0

    def process_one(self, timeout: float | None = None) -> bool:
        """Run one queued item in the calling thread.

        Returns True if an actual work item ran; False if the queue was empty
        for *timeout* seconds or only a wakeup sentinel arrived.  This is the
        primitive behind the ``await`` logical barrier: *"processing another
        runnable task in Pyjama's task queue"* (paper §IV-B).
        """
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return False
        if item is _SHUTDOWN:
            # The sentinel is addressed to the *loop* (run_forever /
            # _worker_loop), not to a thread pumping during an ``await``
            # logical barrier.  Swallowing it here would leave the loop
            # running forever once the barrier ends — re-post it.
            self._queue.put_internal(_SHUTDOWN)
            # Yield briefly: without this a pumping thread and its own
            # re-post could spin get/put at full speed until the barrier
            # region is cancelled or finishes.
            time.sleep(0.001)
            return False
        if item is _WAKEUP:
            return False
        if item is _RETIRE:
            # Addressed to an idle pool lane, not to a pumping thread whose
            # own region is still running — re-post for a lane to consume.
            self._queue.put_internal(_RETIRE)
            time.sleep(0.001)
            return False
        self._dispatch(item)
        return True

    def _depth(self) -> int:
        """Current queue-depth sample (work items only; adapters override)."""
        return self._queue.work_count()

    def _trace_depth(self, session: "_obs.TraceSession") -> None:
        """Emit a sampled ``QUEUE_DEPTH`` event (caller checked enabled).

        Samples every stride-th enqueue/dequeue per target and recording
        window; the first transition of a window always emits so short traces
        still carry depth data.  The stride is re-read from
        ``REPRO_TRACE_DEPTH_STRIDE`` at the start of each window (so setting
        it after import works), and the transition counter is an
        ``itertools.count`` whose ``next()`` is atomic under the GIL — racing
        poster/worker threads each draw a distinct tick instead of losing
        increments to a read-modify-write race.
        """
        gen = session.generation
        g, counter, stride = self._depth_tick
        if g != gen:
            counter = itertools.count()
            stride = _depth_stride_from_env()
            # Two threads racing a window change may both publish; the loser
            # at worst re-emits one window-opening sample, never skews ticks.
            self._depth_tick = (gen, counter, stride)
        if next(counter) % stride == 0:
            session.emit(EventKind.QUEUE_DEPTH, target=self.name, arg=self._depth())

    def _trace_reject(
        self, item: Any, session: "_obs.TraceSession", policy: str | None = None
    ) -> None:
        if session.enabled:
            region, label = _item_identity(item)
            session.emit(
                EventKind.REJECT, target=self.name, region=region, name=label,
                arg=policy,
            )

    def _dispatch(self, item: Any, *, dequeued: bool = True) -> None:
        hooks = _inj.hooks
        if hooks is not None:
            hooks.fire("dispatch", self.name)
        session = _obs.session()
        enabled = session.enabled
        if enabled and dequeued:
            region, label = _item_identity(item)
            session.emit(
                EventKind.DEQUEUE, target=self.name, region=region, name=label
            )
            self._trace_depth(session)
        if isinstance(item, TargetRegion) and item.done:
            # Withdrawn (cancelled) while queued, or cancelled mid
            # caller_runs handoff: discard the corpse without touching it.
            # An EXEC span here would lie, so none is emitted — and the
            # check must not depend on tracing being on: with the session
            # off, skipping it used to leave corpse safety resting on
            # ``run()``'s internal state guard alone.
            return
        if enabled:
            region, label = _item_identity(item)
            session.emit(
                EventKind.EXEC_BEGIN, target=self.name, region=region, name=label
            )
            outcome = "completed"
            try:
                if not self._run_item(item):
                    outcome = "failed"  # plain callable raised
                elif isinstance(item, TargetRegion):
                    # The region's terminal state is the ground truth: a body
                    # that raised is "failed", and a cancel that won the race
                    # against the corpse check above (run() then no-opped) is
                    # "cancelled" — never a fabricated "completed".
                    if item.state is RegionState.CANCELLED:
                        outcome = "cancelled"
                    elif item.exception is not None:
                        outcome = "failed"
            except Exception:  # pragma: no cover - _run_item never raises
                outcome = "failed"
                raise
            finally:
                session.emit(
                    EventKind.EXEC_END, target=self.name, region=region, name=label,
                    arg=outcome,
                )
            return
        self._run_item(item)

    def _run_item(self, item: Any) -> bool:
        """Run one dequeued item; True unless a plain callable raised.

        Regions always return True here — they capture their own exceptions,
        and ``_dispatch`` reads the truthful outcome off the region state.
        The bool exists for plain callables, whose exception is swallowed by
        design (a failing callable must not kill the dispatch loop — same
        policy as AWT's EDT) and would otherwise leave the trace claiming
        the execution completed.
        """
        if isinstance(item, TargetRegion):
            item.run()  # regions capture their own exceptions
            return True
        try:
            item()
            return True
        except Exception:  # noqa: BLE001
            # Regions report via their handle; plain callables get logged.
            _logger.exception("unhandled exception in %r posted to %s", item, self.name)
            return False

    def pump_until(
        self,
        predicate: Callable[[], bool],
        poll: float = 0.05,
        *,
        timeout: float | None = None,
    ) -> None:
        """Process queued work in the calling thread until *predicate* holds.

        The calling thread must belong to this target; this is the logical
        barrier of Algorithm 1 (lines 13-16).  *poll* bounds the wait per
        iteration so the predicate is re-checked even without a wakeup.
        With a *timeout*, a barrier stuck past its deadline raises
        :class:`AwaitTimeoutError` carrying this target's diagnostics instead
        of pumping forever.
        """
        if not self.contains():
            raise RuntimeStateError(
                f"thread {threading.current_thread().name!r} does not belong to "
                f"virtual target {self.name!r} and cannot pump its queue"
            )
        session = _obs.session()
        if session.enabled:
            session.emit(EventKind.BARRIER_ENTER, target=self.name, name="pump_until")
        # Deadline math uses time.monotonic() (the runtime-wide convention for
        # deadlines); only trace timestamps use the perf_counter_ns clock.
        deadline = None if timeout is None else time.monotonic() + timeout
        try:
            while not predicate():
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise AwaitTimeoutError(
                            f"logical barrier on target {self.name!r} exceeded its "
                            f"{timeout}s deadline",
                            self.describe(),
                        )
                    poll_step = min(poll, remaining)
                else:
                    poll_step = poll
                if self.process_one(timeout=poll_step) and session.enabled:
                    # Barrier-mode steal: the pumping thread took work from
                    # its own target, so victim and thief coincide (contrast
                    # ring stealing, where a sibling lane is the thief).
                    session.emit(
                        EventKind.PUMP_STEAL, target=self.name, name="pump_until",
                        arg={
                            "victim": self.name,
                            "thief": self.name,
                            "lane": threading.current_thread().name,
                            "mode": "barrier",
                        },
                    )
        finally:
            if session.enabled:
                session.emit(
                    EventKind.BARRIER_EXIT, target=self.name, name="pump_until"
                )

    def describe(self) -> str:
        """One-line diagnostic: queue depth, capacity, members, counters."""
        with self._members_lock:
            members = sorted(t.name for t in self._members)
        stats = self.stats
        cap = "unbounded" if self._queue.capacity is None else str(self._queue.capacity)
        return (
            f"target {self.name!r} ({type(self).__name__}) kind={self.kind} "
            f"alive={self.alive} pool={self.pool_size} "
            # work_count, not pending: re-posted control sentinels would
            # otherwise show an idle target as queued=1 forever.
            f"restarts={self.restart_count} queued={self.work_count()} capacity={cap} "
            f"high_water={stats['high_water']} posted={stats['posted']} "
            f"rejected={stats['rejected']} caller_runs={stats['caller_runs']} "
            f"cancelled_on_shutdown={stats['cancelled_on_shutdown']} "
            f"members={members}"
            f"{self._describe_extra()}"
        )

    def _describe_extra(self) -> str:
        """Kind-specific suffix for :meth:`describe` (leading space included).

        Subclasses with state the generic line cannot know about — e.g. a
        cluster target's endpoints and connection counts — append it here
        instead of overriding (and drifting from) the whole format.
        """
        return ""

    def drain(self) -> int:
        """Process queued items in the calling thread until the queue is empty.

        Returns the number of real work items executed.  Intended for tests
        and for single-threaded (manually pumped) EDT usage.
        """
        count = 0
        retires = 0
        try:
            while True:
                try:
                    item = self._queue.get_nowait()
                except queue.Empty:
                    return count
                if item is _SHUTDOWN:
                    # Leave the sentinel for the loop that owns it (re-queue
                    # rather than swallow); everything before it has drained.
                    self._queue.put_internal(_SHUTDOWN)
                    return count
                if item is _WAKEUP:
                    continue
                if item is _RETIRE:
                    # Addressed to a pool lane; hold it aside (re-posting
                    # inline would loop forever on our own re-post).
                    retires += 1
                    continue
                self._dispatch(item)
                count += 1
        finally:
            for _ in range(retires):
                self._queue.put_internal(_RETIRE)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} members={self.member_count}>"


class WorkerTarget(VirtualTarget):
    """A worker virtual target: a pool of background threads.

    Created by ``virtual_target_create_worker(tname, m)`` (paper Table II).
    The pool is fixed at *max_threads* lanes unless the adaptive policies
    (docs/TUNING.md) are enabled:

    * ``steal=True`` — idle lanes take work from sibling targets in the
      runtime's :class:`~repro.policy.StealRing` (and expose their own queue
      to it); otherwise the lanes block on their own queue exactly as before.
    * ``batch_max>1`` — each queue acquisition drains up to ``batch_max``
      items back-to-back, amortising the dispatch fast-path for small
      regions.  1 (the default) is item-at-a-time, the pre-policy behaviour.
    * ``autoscale=True`` — a :class:`~repro.policy.PoolAutoscaler` grows and
      shrinks the lane count between ``autoscale_min`` and ``autoscale_max``
      against the observed queue depth, with hysteresis.
    """

    kind = "worker"

    #: Idle-poll interval (seconds) of a stealing lane: how long it waits on
    #: its own empty queue before scanning the ring for a victim.  Class
    #: attribute so tests can shrink it without touching the constructor.
    _steal_poll = 0.01

    def __init__(
        self,
        name: str,
        max_threads: int,
        *,
        daemon: bool = True,
        queue_capacity: int | None = None,
        rejection_policy: str = "block",
        steal: bool = False,
        batch_max: int = 1,
        autoscale: bool = False,
        autoscale_min: int | None = None,
        autoscale_max: int | None = None,
    ) -> None:
        if max_threads < 1:
            raise ValueError(f"worker target needs at least 1 thread, got {max_threads}")
        if batch_max < 1:
            raise ValueError(f"batch_max must be >= 1, got {batch_max}")
        super().__init__(
            name, queue_capacity=queue_capacity, rejection_policy=rejection_policy
        )
        self.max_threads = max_threads
        self.batch_max = batch_max
        self.steal_enabled = steal
        self._steal_ring = None  # attached by PjRuntime.register_target
        self._daemon = daemon
        self._lanes_lock = threading.Lock()
        self._lane_seq = itertools.count(max_threads)
        self._desired = max_threads  # lane count after applied scale decisions
        self._threads: list[threading.Thread] = []
        for i in range(max_threads):
            t = threading.Thread(
                target=self._worker_loop,
                name=f"pyjama-{name}-{i}",
                daemon=daemon,
            )
            self._threads.append(t)
            t.start()
        self._autoscaler = None
        self.autoscale_min = autoscale_min if autoscale_min is not None else 1
        self.autoscale_max = (
            autoscale_max
            if autoscale_max is not None
            else max(2 * max_threads, max_threads + 1)
        )
        if autoscale:
            from ..policy.autoscale import PoolAutoscaler  # lazy: policy is optional

            self._autoscaler = PoolAutoscaler(
                self, min_lanes=self.autoscale_min, max_lanes=self.autoscale_max
            ).start()

    @property
    def pool_size(self) -> int:
        """Lane count after every applied scale decision.

        A retire is counted when decided (the sentinel may sit queued briefly
        behind work); without autoscaling this is always ``max_threads``.
        """
        return self._desired

    @property
    def autoscaler(self):
        """The attached :class:`~repro.policy.PoolAutoscaler`, if any."""
        return self._autoscaler

    # ------------------------------------------------------------ steal ring

    def join_ring(self, ring) -> None:
        """Enroll in *ring* as both thief and victim (idempotent)."""
        self._steal_ring = ring
        ring.register(self)

    def leave_ring(self) -> None:
        ring, self._steal_ring = self._steal_ring, None
        if ring is not None:
            ring.unregister(self)

    def steal_item(self):
        """One queued work item for a ring thief (None if nothing stealable)."""
        if self._shutdown.is_set():
            return None
        return self._queue.steal_work()

    def _try_steal(self) -> bool:
        """Steal and run one sibling item; True if work was actually done.

        The stolen item executes through the *victim's* dispatch path, so its
        ``DEQUEUE``/``EXEC`` events land on the victim target — the target
        its ``ENQUEUE`` named — and every lifecycle invariant holds.  The
        thief appears only in the ``PUMP_STEAL`` attribution payload.
        """
        ring = self._steal_ring
        if ring is None or self._shutdown.is_set():
            return False
        stolen = ring.steal(self)
        if stolen is None:
            return False
        victim, item = stolen
        session = _obs.session()
        if session.enabled:
            region, label = _item_identity(item)
            session.emit(
                EventKind.PUMP_STEAL, target=victim.name, region=region, name=label,
                arg={
                    "victim": victim.name,
                    "thief": self.name,
                    "lane": threading.current_thread().name,
                    "mode": "steal",
                },
            )
        victim._dispatch(item)
        return True

    # ------------------------------------------------------------ autoscaling

    def _grow_lane(self) -> None:
        """Add one lane (the autoscaler's ``grow`` action)."""
        with self._lanes_lock:
            if self._shutdown.is_set():
                return
            self._desired += 1
            t = threading.Thread(
                target=self._worker_loop,
                name=f"pyjama-{self.name}-{next(self._lane_seq)}",
                daemon=self._daemon,
            )
            self._threads.append(t)
            t.start()

    def _retire_lane(self) -> None:
        """Ask one lane to exit (the autoscaler's ``shrink`` action).

        The retire sentinel queues FIFO behind already-queued work, so a
        shrink never abandons backlog; whichever lane consumes it exits.
        """
        with self._lanes_lock:
            if self._shutdown.is_set() or self._desired <= 1:
                return
            self._desired -= 1
        self._queue.put_internal(_RETIRE)

    # ------------------------------------------------------------- dispatch

    def _worker_loop(self) -> None:
        self._enter_member()
        try:
            poll = self._steal_poll if self.steal_enabled else None
            eager = False  # a steal just succeeded: recheck our queue at once
            while True:
                try:
                    batch = self._queue.get_batch(
                        self.batch_max, timeout=0.0 if eager else poll
                    )
                except queue.Empty:
                    eager = self._try_steal()
                    continue
                eager = False
                for item in batch:
                    if item is _SHUTDOWN:
                        # Propagate: every pool thread sees it exactly once
                        # (get_batch returns a sentinel alone, never mid-batch).
                        return
                    if item is _RETIRE:
                        return
                    if item is _WAKEUP:
                        continue
                    self._dispatch(item)
        finally:
            self._exit_member()

    def _describe_extra(self) -> str:
        bits = []
        if self.batch_max != 1:
            bits.append(f"batch_max={self.batch_max}")
        if self.steal_enabled:
            bits.append("steal=on")
        if self._autoscaler is not None:
            bits.append(f"autoscale={self.autoscale_min}..{self.autoscale_max}")
        return " " + " ".join(bits) if bits else ""

    def shutdown(self, wait: bool = True) -> None:
        """Stop the pool.

        ``wait=True`` drains: the backlog queued before shutdown still runs
        (sentinels queue FIFO behind it) and the member threads are joined.
        ``wait=False`` cancels: every still-queued region transitions to
        ``CANCELLED`` (failing its waiters fast) and the threads are left to
        exit on their own.  The autoscaler is stopped first so the lane set
        cannot change under the sentinel accounting, and the target leaves
        its steal ring so siblings stop considering it a victim.
        """
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        if self._autoscaler is not None:
            self._autoscaler.stop(wait=wait)
        self.leave_ring()
        if not wait:
            self._queue.close()
            self._cancel_pending()
        with self._lanes_lock:
            lanes = list(self._threads)
        for _ in lanes:
            self._queue.put_internal(_SHUTDOWN)
        if wait:
            for t in lanes:
                if t is not threading.current_thread():
                    t.join()


class _Shutdown:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<shutdown>"


_SHUTDOWN = _Shutdown()


class EdtTarget(VirtualTarget):
    """An event-dispatch-thread virtual target.

    Exactly one thread belongs to it.  Two ways to set it up:

    * :meth:`register_current_thread` — the paper's
      ``virtual_target_register_edt``: the calling thread (e.g. a GUI
      framework's dispatch thread) becomes the member and must drive the
      queue itself via :meth:`run_forever`, :meth:`drain` or
      :meth:`pump_until`.
    * :meth:`start_in_thread` — convenience used by the event-loop substrate
      and by headless tests: spawn a dedicated daemon thread that runs
      :meth:`run_forever`.
    """

    kind = "edt"

    #: How long ``shutdown(wait=True)`` waits for the loop to acknowledge the
    #: shutdown sentinel before giving up with a diagnostic (class-level so
    #: tests can shrink it without touching the shutdown signature).
    _shutdown_ack_timeout = 5.0

    @property
    def pool_size(self) -> int:
        return 1

    def __init__(
        self,
        name: str,
        *,
        queue_capacity: int | None = None,
        rejection_policy: str = "block",
    ) -> None:
        super().__init__(
            name, queue_capacity=queue_capacity, rejection_policy=rejection_policy
        )
        self._edt_thread: threading.Thread | None = None
        self._loop_started = threading.Event()
        self._stopped = threading.Event()

    # ------------------------------------------------------------- binding

    def register_current_thread(self) -> "EdtTarget":
        if self._edt_thread is not None:
            raise RuntimeStateError(
                f"EDT target {self.name!r} is already bound to {self._edt_thread.name!r}"
            )
        self._edt_thread = threading.current_thread()
        self._enter_member()
        return self

    def start_in_thread(self) -> "EdtTarget":
        if self._edt_thread is not None:
            raise RuntimeStateError(f"EDT target {self.name!r} is already bound")
        started = threading.Event()

        def loop() -> None:
            self._edt_thread = threading.current_thread()
            self._enter_member()
            started.set()
            try:
                self.run_forever()
            finally:
                self._exit_member()

        t = threading.Thread(target=loop, name=f"pyjama-edt-{self.name}", daemon=True)
        t.start()
        started.wait()
        return self

    @property
    def edt_thread(self) -> threading.Thread | None:
        return self._edt_thread

    # ------------------------------------------------------------ event loop

    def run_forever(self) -> None:
        """Drive the event loop until :meth:`shutdown` is called.

        Must run on the bound thread.
        """
        self._require_edt()
        self._loop_started.set()
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._stopped.set()
                return
            if item is _WAKEUP:
                continue
            self._dispatch(item)

    def _require_edt(self) -> None:
        if threading.current_thread() is not self._edt_thread:
            raise RuntimeStateError(
                f"this operation must run on the EDT of target {self.name!r}"
            )

    def shutdown(self, wait: bool = True) -> None:
        """Stop the dispatch loop.

        ``wait=True`` lets already-queued events/regions run before the loop
        exits, then waits for loop acknowledgement; ``wait=False`` cancels
        the backlog so waiters fail fast.  A *registered* EDT whose loop was
        never driven (``run_forever`` not called) is not waited on at all —
        its liveness is the owning application's business, and blocking 5 s
        on a loop that never started was pure stall.
        """
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        if not wait:
            self._queue.close()
            self._cancel_pending()
        self._queue.put_internal(_SHUTDOWN)
        if wait and self._edt_thread is not None:
            if self._edt_thread is threading.current_thread():
                return
            if not self._loop_started.is_set():
                # The loop never ran; nothing will ever acknowledge.
                return
            if not self._stopped.wait(timeout=self._shutdown_ack_timeout):
                # A wedged EDT (handler stuck in a syscall, deadlocked on a
                # lock, ...) must not "shut down" silently: the sentinel was
                # posted but never consumed, so say what we know and let the
                # caller decide — the thread is theirs, we cannot kill it.
                _logger.warning(
                    "EDT target %r did not acknowledge shutdown within %.1fs; "
                    "its dispatch loop appears wedged: %s",
                    self.name, self._shutdown_ack_timeout, self.describe(),
                )
