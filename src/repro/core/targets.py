"""Virtual targets: software executors for the extended ``target`` directive.

A *virtual target* (paper §III-A) is a syntax-level abstraction of a thread
pool executor; it shares the host memory, so posting a region to it involves
no data mapping.  The paper's experimental implementation offers two kinds
(Table II), reproduced here:

* :class:`WorkerTarget` — a named pool of ``m`` background threads
  (``virtual_target_create_worker``).
* :class:`EdtTarget` — a single special thread, typically the GUI event
  dispatch thread, that the application registers
  (``virtual_target_register_edt``).

Both support the *logical barrier* needed by the ``await`` clause: a thread
that belongs to a target can process other queued work while it waits for an
offloaded region to complete (Algorithm 1 lines 13-16).
"""

from __future__ import annotations

import abc
import logging
import queue
import threading
from typing import Any, Callable

from .errors import RuntimeStateError, TargetShutdownError
from .region import TargetRegion

__all__ = ["VirtualTarget", "WorkerTarget", "EdtTarget", "current_target"]


_thread_target = threading.local()
_logger = logging.getLogger(__name__)


def current_target() -> "VirtualTarget | None":
    """The virtual target the calling thread belongs to, if any."""
    return getattr(_thread_target, "value", None)


class _Wakeup:
    """Sentinel posted to a queue purely to unblock a pumping thread."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<wakeup>"


_WAKEUP = _Wakeup()


class VirtualTarget(abc.ABC):
    """Common behaviour of all virtual targets.

    Subclasses provide the thread(s) that drain :attr:`_queue`.  The queue
    holds :class:`TargetRegion` instances, plain callables (events posted by
    higher layers), and wakeup sentinels.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._queue: queue.Queue[Any] = queue.Queue()
        self._members: set[threading.Thread] = set()
        self._members_lock = threading.Lock()
        self._shutdown = threading.Event()

    # ----------------------------------------------------------- membership

    def contains(self, thread: threading.Thread | None = None) -> bool:
        """True if *thread* (default: the calling thread) belongs to this
        target's execution environment (Algorithm 1 line 6)."""
        thread = thread or threading.current_thread()
        with self._members_lock:
            return thread in self._members

    def _enter_member(self, thread: threading.Thread | None = None) -> None:
        thread = thread or threading.current_thread()
        with self._members_lock:
            self._members.add(thread)
        if thread is threading.current_thread():
            _thread_target.value = self

    def _exit_member(self, thread: threading.Thread | None = None) -> None:
        thread = thread or threading.current_thread()
        with self._members_lock:
            self._members.discard(thread)
        if thread is threading.current_thread() and current_target() is self:
            _thread_target.value = None

    @property
    def member_count(self) -> int:
        with self._members_lock:
            return len(self._members)

    # ------------------------------------------------------------- lifecycle

    @property
    def alive(self) -> bool:
        return not self._shutdown.is_set()

    @abc.abstractmethod
    def shutdown(self, wait: bool = True) -> None:
        """Stop accepting work and (optionally) join the member threads."""

    # --------------------------------------------------------------- posting

    def post(self, item: TargetRegion | Callable[[], Any]) -> None:
        """Enqueue a region or a plain callable for asynchronous execution
        (Algorithm 1 line 8: ``E.post(B)``)."""
        if self._shutdown.is_set():
            raise TargetShutdownError(self.name)
        self._queue.put(item)

    def wakeup(self) -> None:
        """Unblock one thread waiting on the queue without giving it work."""
        self._queue.put(_WAKEUP)

    @property
    def pending(self) -> int:
        """Approximate number of queued items (sentinels included)."""
        return self._queue.qsize()

    # ------------------------------------------------------------ processing

    #: Whether member threads can drain the queue cooperatively (the
    #: ``await`` logical barrier).  Adapters wrapping foreign event loops
    #: that cannot be re-entered (e.g. asyncio) set this to False; the
    #: runtime then refuses ``await`` with guidance instead of deadlocking.
    supports_pumping: bool = True

    def process_one(self, timeout: float | None = None) -> bool:
        """Run one queued item in the calling thread.

        Returns True if an actual work item ran; False if the queue was empty
        for *timeout* seconds or only a wakeup sentinel arrived.  This is the
        primitive behind the ``await`` logical barrier: *"processing another
        runnable task in Pyjama's task queue"* (paper §IV-B).
        """
        try:
            item = self._queue.get(timeout=timeout)
        except queue.Empty:
            return False
        if item is _WAKEUP or item is _SHUTDOWN:
            return False
        self._dispatch(item)
        return True

    def _dispatch(self, item: Any) -> None:
        if isinstance(item, TargetRegion):
            item.run()  # regions capture their own exceptions
            return
        try:
            item()
        except Exception:  # noqa: BLE001
            # A failing plain callable must not kill the dispatch loop —
            # same policy as AWT's EDT. Regions report via their handle;
            # plain callables get logged.
            _logger.exception("unhandled exception in %r posted to %s", item, self.name)

    def pump_until(self, predicate: Callable[[], bool], poll: float = 0.05) -> None:
        """Process queued work in the calling thread until *predicate* holds.

        The calling thread must belong to this target; this is the logical
        barrier of Algorithm 1 (lines 13-16).  *poll* bounds the wait per
        iteration so the predicate is re-checked even without a wakeup.
        """
        if not self.contains():
            raise RuntimeStateError(
                f"thread {threading.current_thread().name!r} does not belong to "
                f"virtual target {self.name!r} and cannot pump its queue"
            )
        while not predicate():
            self.process_one(timeout=poll)

    def drain(self) -> int:
        """Process queued items in the calling thread until the queue is empty.

        Returns the number of real work items executed.  Intended for tests
        and for single-threaded (manually pumped) EDT usage.
        """
        count = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return count
            if item is _WAKEUP or item is _SHUTDOWN:
                continue
            self._dispatch(item)
            count += 1

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r} members={self.member_count}>"


class WorkerTarget(VirtualTarget):
    """A worker virtual target: a fixed pool of background threads.

    Created by ``virtual_target_create_worker(tname, m)`` (paper Table II).
    """

    def __init__(self, name: str, max_threads: int, *, daemon: bool = True) -> None:
        if max_threads < 1:
            raise ValueError(f"worker target needs at least 1 thread, got {max_threads}")
        super().__init__(name)
        self.max_threads = max_threads
        self._threads: list[threading.Thread] = []
        for i in range(max_threads):
            t = threading.Thread(
                target=self._worker_loop,
                name=f"pyjama-{name}-{i}",
                daemon=daemon,
            )
            self._threads.append(t)
            t.start()

    def _worker_loop(self) -> None:
        self._enter_member()
        try:
            while True:
                item = self._queue.get()
                if item is _SHUTDOWN:
                    # Propagate so every pool thread sees it exactly once.
                    return
                if item is _WAKEUP:
                    continue
                self._dispatch(item)
        finally:
            self._exit_member()

    def shutdown(self, wait: bool = True) -> None:
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        if wait:
            for t in self._threads:
                if t is not threading.current_thread():
                    t.join()


class _Shutdown:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<shutdown>"


_SHUTDOWN = _Shutdown()


class EdtTarget(VirtualTarget):
    """An event-dispatch-thread virtual target.

    Exactly one thread belongs to it.  Two ways to set it up:

    * :meth:`register_current_thread` — the paper's
      ``virtual_target_register_edt``: the calling thread (e.g. a GUI
      framework's dispatch thread) becomes the member and must drive the
      queue itself via :meth:`run_forever`, :meth:`drain` or
      :meth:`pump_until`.
    * :meth:`start_in_thread` — convenience used by the event-loop substrate
      and by headless tests: spawn a dedicated daemon thread that runs
      :meth:`run_forever`.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name)
        self._edt_thread: threading.Thread | None = None
        self._stopped = threading.Event()

    # ------------------------------------------------------------- binding

    def register_current_thread(self) -> "EdtTarget":
        if self._edt_thread is not None:
            raise RuntimeStateError(
                f"EDT target {self.name!r} is already bound to {self._edt_thread.name!r}"
            )
        self._edt_thread = threading.current_thread()
        self._enter_member()
        return self

    def start_in_thread(self) -> "EdtTarget":
        if self._edt_thread is not None:
            raise RuntimeStateError(f"EDT target {self.name!r} is already bound")
        started = threading.Event()

        def loop() -> None:
            self._edt_thread = threading.current_thread()
            self._enter_member()
            started.set()
            try:
                self.run_forever()
            finally:
                self._exit_member()

        t = threading.Thread(target=loop, name=f"pyjama-edt-{self.name}", daemon=True)
        t.start()
        started.wait()
        return self

    @property
    def edt_thread(self) -> threading.Thread | None:
        return self._edt_thread

    # ------------------------------------------------------------ event loop

    def run_forever(self) -> None:
        """Drive the event loop until :meth:`shutdown` is called.

        Must run on the bound thread.
        """
        self._require_edt()
        while True:
            item = self._queue.get()
            if item is _SHUTDOWN:
                self._stopped.set()
                return
            if item is _WAKEUP:
                continue
            self._dispatch(item)

    def _require_edt(self) -> None:
        if threading.current_thread() is not self._edt_thread:
            raise RuntimeStateError(
                f"this operation must run on the EDT of target {self.name!r}"
            )

    def shutdown(self, wait: bool = True) -> None:
        if self._shutdown.is_set():
            return
        self._shutdown.set()
        self._queue.put(_SHUTDOWN)
        if wait and self._edt_thread is not None:
            if self._edt_thread is threading.current_thread():
                return
            # A registered (not spawned) EDT may never call run_forever();
            # bound-thread liveness is the caller's business, so only wait for
            # loop acknowledgement briefly.
            self._stopped.wait(timeout=5.0)
