"""Target regions: the liftable unit of work.

The Pyjama compiler restructures every target block into a runnable
``TargetRegion`` class (paper §IV-A).  Our :class:`TargetRegion` is the
runtime counterpart: a one-shot callable with completion state, a result/
exception slot, and completion callbacks (used by the ``await`` logical
barrier and by the ``name_as`` tag registry).
"""

from __future__ import annotations

import enum
import itertools
import threading
from typing import Any, Callable

from ..obs import EventKind
from ..obs import recorder as _trace
from .errors import RegionCancelledError, RegionFailedError

__all__ = ["RegionState", "TargetRegion", "CancelToken", "current_region"]

_region_counter = itertools.count()
_region_seq = itertools.count()
_current_region = threading.local()


def current_region() -> "TargetRegion | None":
    """The region currently executing on the calling thread, if any.

    Lets target-block bodies reach their own handle — most usefully the
    cooperative cancel token — without the compiler having to thread it
    through as an argument::

        def body():
            while not current_region().cancel_token.cancelled:
                step()
    """
    return getattr(_current_region, "value", None)


class CancelToken:
    """Cooperative cancellation flag a running region body can poll.

    ``cancel()`` on a *pending* region withdraws it outright; for a *running*
    region Python threads cannot be interrupted, so cancellation flips this
    token and the body is expected to observe it at its next convenient
    point (poll :attr:`cancelled` or call :meth:`raise_if_cancelled`).
    """

    __slots__ = ("_event",)

    def __init__(self) -> None:
        self._event = threading.Event()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def set(self) -> None:
        self._event.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until cancellation is requested (useful in sleepy loops)."""
        return self._event.wait(timeout)

    def raise_if_cancelled(self) -> None:
        """Raise ``RuntimeError`` if cancellation was requested.

        The region then finishes FAILED and waiters see the usual
        :class:`RegionFailedError`, which is the honest outcome for a body
        that stopped halfway.
        """
        if self._event.is_set():
            raise RuntimeError("target region body observed a cancellation request")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<CancelToken {'cancelled' if self.cancelled else 'live'}>"


class RegionState(enum.Enum):
    """Lifecycle of a target region (pending -> running -> terminal)."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (RegionState.COMPLETED, RegionState.FAILED, RegionState.CANCELLED)


class TargetRegion:
    """A one-shot unit of work lifted from a target block.

    Parameters
    ----------
    body:
        The callable holding the user code of the block.  Called with the
        positional/keyword arguments given at construction (the compiler
        passes captured firstprivate values this way; shared state is simply
        closed over, since virtual targets share host memory).
    name:
        Debug name.  The compiler generates ``TargetRegion_<n>`` names
        mirroring Pyjama's generated classes.
    source:
        Optional ``file:line`` provenance stamp.  The source-to-source
        compiler fills it from the pragma location so trace spans carry the
        user's code location, not a generated closure name.
    """

    __slots__ = (
        "body", "args", "kwargs", "_name", "source", "seq", "_state", "_result",
        "_exception", "_finished", "_done", "_lock", "_callbacks",
        "_cancel_token", "tag",
    )

    def __init__(
        self,
        body: Callable[..., Any],
        *args: Any,
        name: str | None = None,
        source: str | None = None,
        **kwargs: Any,
    ) -> None:
        self.body = body
        self.args = args
        self.kwargs = kwargs
        self._name = name
        self.source = source
        #: Process-unique id correlating this region's trace events.
        self.seq = next(_region_seq)
        self._state = RegionState.PENDING
        self._result: Any = None
        self._exception: BaseException | None = None
        # Dispatch is the runtime's hot path, so the waiter machinery is
        # lazy: the done Event exists only once someone blocks on the region
        # (inline and fire-and-forget dispatches never pay for it), and the
        # cancel token only once someone asks for it.  ``_finished`` is the
        # lock-free done flag (a plain bool write is atomic under the GIL).
        self._finished = False
        self._done: threading.Event | None = None
        self._lock = threading.Lock()
        self._callbacks: list[Callable[["TargetRegion"], None]] = []
        self._cancel_token: CancelToken | None = None
        #: ``name_as`` group tag, stamped by the runtime at registration.
        #: Cluster targets ship it with the task so remote workers can
        #: announce tag-group progress across hosts.
        self.tag: str | None = None

    # ------------------------------------------------------------------ state

    @property
    def name(self) -> str:
        """Debug name (generated lazily off the dispatch path)."""
        n = self._name
        if n is None:
            n = self._name = f"TargetRegion_{next(_region_counter)}"
        return n

    @name.setter
    def name(self, value: str) -> None:
        self._name = value

    @property
    def cancel_token(self) -> CancelToken:
        """The cooperative cancellation token (created on first use)."""
        tok = self._cancel_token
        if tok is None:
            with self._lock:
                tok = self._cancel_token
                if tok is None:
                    tok = self._cancel_token = CancelToken()
                    if self._state is RegionState.CANCELLED:
                        tok.set()
        return tok

    @property
    def state(self) -> RegionState:
        return self._state

    @property
    def done(self) -> bool:
        return self._finished

    @property
    def exception(self) -> BaseException | None:
        return self._exception

    @property
    def label(self) -> str:
        """Trace label: the debug name plus the compiler's source stamp."""
        if self.source:
            return f"{self.name}@{self.source}"
        return self.name

    def cancel(self, reason: BaseException | None = None) -> bool:
        """Cancel the region if it has not started running.

        Returns True if the region transitioned to CANCELLED.  A running or
        finished region cannot be cancelled (matching ``Future.cancel``).

        *reason* optionally records why: waiters then see it as the cause of
        their :class:`RegionCancelledError`, and ``name_as`` tag groups count
        the cancellation as a failure (a drained target's lost work must not
        look like success to ``wait_tag``).  A bare ``cancel()`` stays a
        benign withdrawal, invisible to tag waits.
        """
        with self._lock:
            if self._state is not RegionState.PENDING:
                return False
            self._state = RegionState.CANCELLED
            if reason is not None:
                self._exception = reason
            # The done flag flips inside the transition lock so a concurrent
            # wait() either sees it or has already installed the event we
            # release below — no lost wakeup either way.
            self._finished = True
            ev = self._done
            callbacks = list(self._callbacks)
            self._callbacks.clear()
        self.cancel_token.set()
        if ev is not None:
            ev.set()
        if _trace.is_enabled():
            _trace.emit(
                EventKind.CANCEL,
                region=self.seq,
                name=self.label,
                arg=type(reason).__name__ if reason is not None else None,
            )
        for cb in callbacks:
            cb(self)
        return True

    def request_cancel(self, reason: BaseException | None = None) -> bool:
        """Cancel if pending; otherwise flag the cooperative token.

        Unlike :meth:`cancel` this never gives up on a running region: the
        body can poll ``cancel_token`` (or :func:`current_region`) and bail
        out early.  Returns True only for a hard (pending) cancellation.
        """
        if self.cancel(reason):
            return True
        if not self._finished:
            self.cancel_token.set()
        return False

    # -------------------------------------------------------------- execution

    def run(self) -> None:
        """Execute the body exactly once; record result or exception.

        Safe to call from any thread; a second call (or a call after
        cancellation) is a no-op so that racy dispatch cannot double-run user
        code.
        """
        with self._lock:
            if self._state is not RegionState.PENDING:
                return
            self._state = RegionState.RUNNING
        previous = current_region()
        _current_region.value = self
        try:
            result = self.body(*self.args, **self.kwargs)
        except BaseException as exc:  # noqa: BLE001 - must capture to re-raise at wait()
            with self._lock:
                self._exception = exc
                self._state = RegionState.FAILED
                self._finished = True
                ev = self._done
                callbacks = list(self._callbacks)
                self._callbacks.clear()
        else:
            with self._lock:
                self._result = result
                self._state = RegionState.COMPLETED
                self._finished = True
                ev = self._done
                callbacks = list(self._callbacks)
                self._callbacks.clear()
        finally:
            _current_region.value = previous
        if ev is not None:
            ev.set()
        for cb in callbacks:
            cb(self)

    # ------------------------------------------------- remote execution hooks

    def mark_running(self) -> bool:
        """Transition PENDING → RUNNING without executing the body locally.

        The claim step of remote dispatch: a process target's shipper thread
        calls this before serializing the region so that a concurrent
        ``cancel()`` either wins (this returns False and nothing is shipped)
        or loses (the region is RUNNING and only its cooperative token can
        stop it).  Returns False if the region was not PENDING.
        """
        with self._lock:
            if self._state is not RegionState.PENDING:
                return False
            self._state = RegionState.RUNNING
        return True

    def fulfill(self, result: Any = None, *, exception: BaseException | None = None) -> bool:
        """Complete a region whose body ran outside this process.

        The delivery step of remote dispatch: results and exceptions coming
        back over the wire land here, so waiters (``wait``/``result``,
        ``wait_tag``, ``await`` barriers) and done-callbacks behave exactly
        as they do for locally executed regions.  No-ops (returning False) if
        the region is already terminal — e.g. fulfilled by a crash handler
        racing a late result.
        """
        with self._lock:
            if self._state.is_terminal:
                return False
            if exception is not None:
                self._exception = exception
                self._state = RegionState.FAILED
            else:
                self._result = result
                self._state = RegionState.COMPLETED
            self._finished = True
            ev = self._done
            callbacks = list(self._callbacks)
            self._callbacks.clear()
        if ev is not None:
            ev.set()
        for cb in callbacks:
            cb(self)
        return True

    # ----------------------------------------------------------- completion

    def add_done_callback(self, cb: Callable[["TargetRegion"], None]) -> None:
        """Register *cb* to run when the region reaches a terminal state.

        If the region is already terminal the callback runs immediately in
        the calling thread (same contract as ``Future.add_done_callback``).
        """
        with self._lock:
            if not self._state.is_terminal:
                self._callbacks.append(cb)
                return
        cb(self)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until terminal; returns False on timeout."""
        if self._finished:
            return True
        with self._lock:
            if self._finished:
                return True
            ev = self._done
            if ev is None:
                ev = self._done = threading.Event()
        return ev.wait(timeout)

    def result(self, timeout: float | None = None) -> Any:
        """Block until terminal and return the body's return value.

        Raises :class:`RegionFailedError` (chaining the original exception)
        if the body raised, ``TimeoutError`` on timeout, and
        :class:`RegionFailedError` wrapping ``CancelledError``-like state if
        cancelled.
        """
        if not self.wait(timeout):
            raise TimeoutError(f"timed out waiting for {self.name}")
        if self._state is RegionState.CANCELLED:
            raise RegionCancelledError(self.name, self._exception)
        if self._exception is not None:
            raise RegionFailedError(self.name, self._exception)
        return self._result

    def __repr__(self) -> str:
        return f"<TargetRegion {self.name} {self._state.value}>"
