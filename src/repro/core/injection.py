"""Fault/jitter injection seam for the ``repro.check`` stress harness.

The runtime's concurrency bugs live in interleavings that unit tests on an
idle machine almost never produce: a cancel landing between the corpse check
and ``EXEC_BEGIN``, a poster racing a closing queue, a full bounded queue hit
at exactly the wrong moment.  This module is the *only* hook the stress
harness (:mod:`repro.check`) has into the dispatch path: a process-global
:class:`InjectionHooks` bundle that seam points in
:mod:`repro.core.targets` consult.

Seam points (the string passed to :attr:`InjectionHooks.jitter` and
:attr:`InjectionHooks.decision`):

* ``"post"`` — in :meth:`VirtualTarget.post`, before the enqueue (also in
  the asyncio adapter's post path, which bypasses the base queue).
* ``"dispatch"`` — in :meth:`VirtualTarget._dispatch`, after an item left
  the queue and before its body runs (the *delayed dequeue* fault: widens
  the window in which a cancel or shutdown can race the execution).

Two hooks observe those points, serving two different testing styles:

* :attr:`InjectionHooks.jitter` *samples* interleavings: it may sleep a
  random amount, so racy windows get hit with some probability per run
  (the ``repro.check`` stress harness).
* :attr:`InjectionHooks.decision` *enumerates* them: it may block the
  calling thread until a deterministic scheduler grants it the turn, so
  the exact sequence of seam crossings is chosen, recorded and replayed
  (the ``repro.explore`` systematic explorer).  It runs before ``jitter``
  at every seam point.

:attr:`InjectionHooks.force_queue_full` lets the harness make a *bounded*
queue report full on demand, driving all three rejection policies
(``block``/``reject``/``caller_runs``) without having to actually fill the
queue and risk wedging the workload.

Cost when disarmed (the production case): one module-attribute read and one
branch per seam point — the same budget as a disabled trace call site.
Hooks are test-only by contract; nothing in the runtime installs them.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

__all__ = ["InjectionHooks", "install", "uninstall", "installed", "hooks"]


class InjectionHooks:
    """Bundle of optional fault/jitter/scheduling callbacks.

    ``decision(point, target_name)`` is called first at each armed seam
    point and may *block* until a deterministic scheduler picks this thread
    to proceed; ``jitter(point, target_name)`` is called next and may sleep
    to perturb scheduling; ``force_queue_full(owner_name) -> bool`` makes a
    bounded queue's ``put`` report full when it returns True (it is never
    consulted for unbounded queues).  All are invoked from arbitrary
    runtime threads and must be thread-safe.
    """

    __slots__ = ("jitter", "force_queue_full", "decision")

    def __init__(
        self,
        *,
        jitter: Callable[[str, str], None] | None = None,
        force_queue_full: Callable[[str], bool] | None = None,
        decision: Callable[[str, str], None] | None = None,
    ) -> None:
        self.jitter = jitter
        self.force_queue_full = force_queue_full
        self.decision = decision

    def fire(self, point: str, target_name: str) -> None:
        """Cross one seam point: decision (may block), then jitter (may sleep).

        Seam call sites in the runtime call this instead of reading the
        individual hooks, so new hooks reach every seam at once.  No lock is
        held by any caller when a seam fires — a blocking ``decision`` must
        never be able to wedge a queue.
        """
        d = self.decision
        if d is not None:
            d(point, target_name)
        j = self.jitter
        if j is not None:
            j(point, target_name)


#: The armed hook bundle, or None (the production state).  Seam points read
#: this once per call; install/uninstall rebind it atomically under the GIL.
hooks: InjectionHooks | None = None


def install(bundle: InjectionHooks) -> None:
    """Arm *bundle* process-wide (replacing any previous bundle)."""
    global hooks
    hooks = bundle


def uninstall() -> None:
    """Disarm all injection hooks (the production state)."""
    global hooks
    hooks = None


@contextlib.contextmanager
def installed(bundle: InjectionHooks) -> Iterator[InjectionHooks]:
    """Context manager: arm *bundle* for the block, always disarm after."""
    install(bundle)
    try:
        yield bundle
    finally:
        uninstall()
