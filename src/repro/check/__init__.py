"""repro.check: concurrency stress harness + trace-invariant checker.

``python -m repro check [--seed N] [--iterations K] [--profile smoke|soak]``
drives randomized, seeded workloads through the virtual-target runtime and
then audits the recorded :mod:`repro.obs` event stream against the runtime's
lifecycle invariants (every enqueue resolves, bodies run at most once and
never after cancellation, EXEC outcomes tell the truth, spans nest, no work
leaks past quiescence).  See ``docs/CHECKING.md`` for the invariant list,
the seed-replay workflow and the fault-injection knobs.
"""

from .faults import ForceQueueFull, JitterHook, kill_worker
from .invariants import (
    EXEC_OUTCOMES,
    Violation,
    crosscheck_outcomes,
    verify_events,
    verify_quiescence,
)
from .report import CheckResult, PhaseOutcome, render_report
from .stress import (
    PROFILES,
    RAISER_LABEL,
    TAMPERS,
    StressBodyError,
    StressProfile,
    run_check,
    run_cluster_phase,
    run_dist_phase,
    run_iteration,
    run_policy_phase,
)

__all__ = [
    "Violation",
    "EXEC_OUTCOMES",
    "verify_events",
    "verify_quiescence",
    "crosscheck_outcomes",
    "JitterHook",
    "ForceQueueFull",
    "kill_worker",
    "CheckResult",
    "PhaseOutcome",
    "render_report",
    "StressProfile",
    "StressBodyError",
    "PROFILES",
    "TAMPERS",
    "RAISER_LABEL",
    "run_check",
    "run_iteration",
    "run_dist_phase",
    "run_cluster_phase",
    "run_policy_phase",
]
