"""Fault-injection building blocks for the stress harness.

Three fault families, matching the seams the runtime exposes:

* **Scheduling jitter** — :class:`JitterHook` plugs into
  :attr:`repro.core.injection.InjectionHooks.jitter` and sleeps a few hundred
  microseconds at random ``post``/``dispatch`` seam points, widening the race
  windows (cancel vs. corpse check, poster vs. closing queue) that an idle
  machine almost never opens.

* **Forced queue-full** — :class:`ForceQueueFull` plugs into
  :attr:`~repro.core.injection.InjectionHooks.force_queue_full` and makes a
  bounded queue's ``put`` report "no space" on demand, driving all three
  rejection policies (``block``/``reject``/``caller_runs``) without actually
  wedging the workload behind a real backlog.

* **Worker death** — :func:`kill_worker` hard-kills one worker process of a
  :class:`~repro.dist.ProcessTarget`, exercising the supervisor's crash
  detection, region fail-over and restart path under load.

Both hook classes own *private* :class:`random.Random` instances: they are
called from arbitrary runtime threads, and sharing the harness's op-stream
RNG would let thread timing perturb the deterministic workload schedule.
"""

from __future__ import annotations

import random
import time

__all__ = ["JitterHook", "ForceQueueFull", "kill_worker"]


class JitterHook:
    """Randomized sleep at injection seam points.

    ``probability`` is the chance any one seam crossing sleeps at all;
    ``max_sleep_s`` bounds the sleep.  Thread-safe: ``random.Random`` methods
    are atomic under the GIL, and there is no other shared state.
    """

    def __init__(
        self,
        rng: random.Random,
        *,
        probability: float = 0.15,
        max_sleep_s: float = 0.002,
    ) -> None:
        self._rng = rng
        self.probability = probability
        self.max_sleep_s = max_sleep_s

    def __call__(self, point: str, target_name: str) -> None:
        r = self._rng.random()
        if r < self.probability:
            time.sleep(r / self.probability * self.max_sleep_s)


class ForceQueueFull:
    """Toggleable forced-full hook scoped to a set of target names.

    While :attr:`active`, a bounded put on a matching target reports full
    with the given ``probability`` — so inside a fault window the poster
    population still makes progress while every rejection policy gets hit.
    """

    def __init__(
        self,
        rng: random.Random,
        targets: tuple[str, ...],
        *,
        probability: float = 0.5,
    ) -> None:
        self._rng = rng
        self.targets = frozenset(targets)
        self.probability = probability
        self.active = False
        self.hits = 0

    def __call__(self, owner_name: str) -> bool:
        if not self.active or owner_name not in self.targets:
            return False
        if self._rng.random() < self.probability:
            self.hits += 1
            return True
        return False


def kill_worker(target, index: int = 0) -> int | None:
    """Hard-kill worker *index* of a process-backed target; returns its pid.

    The supervisor observes the death, fails the in-flight region with
    :class:`~repro.core.errors.WorkerCrashedError`, and (within its restart
    budget) respawns the lane — all of which the invariant verifier then
    audits: the crashed region's ``ENQUEUE``/``DEQUEUE`` must still resolve,
    and its half-open worker-side ``EXEC_BEGIN`` must never reach the trace
    (crash-lost events ship with results, and a dead worker ships nothing).
    """
    slot = target._slots[index]
    pid = slot.pid
    slot.terminate()
    return pid
