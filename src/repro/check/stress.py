"""Randomized concurrency stress harness with deterministic replay.

One *iteration* builds a private :class:`~repro.core.runtime.PjRuntime` with
a randomized topology (a maybe-bounded worker pool under a random rejection
policy, an always-unbounded second pool, usually an EDT), then drives a
seeded stream of mixed operations through it:

* ``nowait`` / ``default`` / ``name_as`` / ``await`` dispatches,
* nested ``await`` logical barriers issued *from inside* target members,
* cross-target posts of instrumented plain callables,
* randomly failing bodies,
* a forced queue-full window (all three rejection policies get exercised),
* an optional mid-flight ``shutdown(wait=True/False)`` of one target.

Scheduling jitter (:class:`~repro.check.faults.JitterHook`) perturbs the
``post``/``dispatch`` seams so races actually happen.  Everything the
schedule depends on is drawn from ``random.Random(f"{seed}:{iteration}")``
**on the driver thread only** — worker-thread hooks get private RNGs — so a
seed deterministically reproduces the same operation stream, and the
violation report (built from harness-assigned labels, never timestamps or
thread names) reproduces byte-for-byte.

After the workload quiesces, the recorded :mod:`repro.obs` timeline goes
through :func:`~repro.check.invariants.verify_events`,
:func:`~repro.check.invariants.verify_quiescence` and
:func:`~repro.check.invariants.crosscheck_outcomes`.

``--inject`` tampers with the *recorded events* of iteration 0 before
verification — proving, in CI and in tests, that the checker actually fails
when the trace lies (see :data:`TAMPERS`).
"""

from __future__ import annotations

import logging
import random
import time
from dataclasses import dataclass, replace
from typing import Callable

from ..core import injection as _inj
from ..core.errors import PyjamaError, RegionFailedError, TagError
from ..core.region import TargetRegion
from ..core.runtime import PjRuntime
from ..core.targets import REJECTION_POLICIES
from ..obs import recorder as _obs
from ..obs.events import EventKind, TraceEvent
from .faults import ForceQueueFull, JitterHook, kill_worker
from .invariants import Violation, crosscheck_outcomes, verify_events, verify_quiescence
from .report import CheckResult, PhaseOutcome

__all__ = [
    "StressProfile",
    "PROFILES",
    "TAMPERS",
    "StressBodyError",
    "region_body",
    "run_check",
    "run_iteration",
    "run_dist_phase",
    "run_cluster_phase",
    "run_policy_phase",
]

#: Label of the guaranteed raising callable posted as op 0 of every
#: iteration.  The tampers key on it: it always enqueues (the queue is empty,
#: the fault window has not opened) and always executes with outcome
#: "failed", so a deterministic victim exists for every ``--inject`` mode.
RAISER_LABEL = "op000-raise"


class StressBodyError(RuntimeError):
    """The deliberate failure raised by the harness's failing bodies."""


@dataclass(frozen=True)
class StressProfile:
    """Knobs of one stress configuration (see ``PROFILES``)."""

    name: str
    iterations: int
    ops: int
    buffer_size: int
    use_dist: bool
    use_serve: bool = False
    use_cluster: bool = False
    use_policy: bool = False
    jitter_probability: float = 0.15
    jitter_max_s: float = 0.002
    # Adaptive-policy ICVs applied to every stress iteration's runtime
    # (docs/TUNING.md).  The defaults reproduce the unpoliced runtime;
    # tests/check/test_steal_invariants.py forces stealing and batching on
    # through these to prove the invariants survive the policies.
    steal: bool = False
    batch_max: int = 1
    autoscale: bool = False


PROFILES: dict[str, StressProfile] = {
    # CI-sized: a few seconds, thread targets only.
    "smoke": StressProfile(
        "smoke", iterations=2, ops=80, buffer_size=1 << 17, use_dist=False
    ),
    # Developer-sized: longer schedules plus the process-target phase with a
    # worker-death injection, the live-serving phase (worker kill under real
    # HTTP load — see repro.serve.soak), the cluster phase (remote agent
    # killed mid-region over loopback TCP), and the adaptive-policy phase
    # (stealing + batching + autoscaling with a lane retired mid-scale-up).
    "soak": StressProfile(
        "soak", iterations=10, ops=250, buffer_size=1 << 18, use_dist=True,
        use_serve=True, use_cluster=True, use_policy=True,
    ),
}


# --------------------------------------------------------------------- bodies


def region_body(duration: float, fail: bool, label: str) -> Callable[[], str]:
    """A deterministic region body: optional sleep, optional failure.

    The shared workload vocabulary of both harnesses: the stress iterations
    here and the exploration models in :mod:`repro.explore.workloads` build
    their regions from this, so a violation report names the same labels
    whichever harness found it.
    """

    def body() -> str:
        if duration:
            time.sleep(duration)
        if fail:
            raise StressBodyError(label)
        return label

    return body


def _make_callable(
    tid: int, label: str, duration: float, fail: bool, ran: dict
) -> Callable[[], None]:
    """An instrumented plain callable: stamps its trace identity and records
    its true outcome in *ran* for the post-hoc crosscheck."""

    def cb() -> None:
        if duration:
            time.sleep(duration)
        if fail:
            ran[tid] = (label, "failed")
            raise StressBodyError(label)
        ran[tid] = (label, "completed")

    cb._trace_id = tid  # type: ignore[attr-defined]
    cb._trace_name = label  # type: ignore[attr-defined]
    return cb


def _dist_sleep(duration: float) -> float:
    """Module-level (picklable) body for the process-target phase."""
    time.sleep(duration)
    return duration


# -------------------------------------------------------------------- tampers


def _tamper_lying_outcome(events: list[TraceEvent]) -> list[TraceEvent]:
    """Flip the raiser's ``EXEC_END`` from "failed" to "completed"."""
    for e in events:
        if e.kind is EventKind.EXEC_END and e.name == RAISER_LABEL:
            e.arg = "completed"
            break
    return events


def _tamper_lost_dequeue(events: list[TraceEvent]) -> list[TraceEvent]:
    """Delete the raiser's ``DEQUEUE``, simulating a queue that lost track."""
    for i, e in enumerate(events):
        if e.kind is EventKind.DEQUEUE and e.name == RAISER_LABEL:
            del events[i]
            break
    return events


def _tamper_negative_depth(events: list[TraceEvent]) -> list[TraceEvent]:
    """Append a ``QUEUE_DEPTH`` sample that went below zero."""
    ts = events[-1].ts + 1 if events else 1
    events.append(
        TraceEvent(EventKind.QUEUE_DEPTH, ts, "tamper", target="w0", arg=-1)
    )
    return events


#: ``--inject`` modes: pure transforms applied to iteration 0's recorded
#: events *before* verification.  Each must produce a deterministic,
#: seed-replayable violation — they are the checker's own regression tests.
TAMPERS: dict[str, Callable[[list[TraceEvent]], list[TraceEvent]]] = {
    "lying-exec-outcome": _tamper_lying_outcome,
    "lost-dequeue": _tamper_lost_dequeue,
    "negative-depth": _tamper_negative_depth,
}


# ------------------------------------------------------------------ iteration


def run_iteration(
    profile: StressProfile,
    seed: int,
    index: int,
    *,
    ops: int | None = None,
    inject: str | None = None,
) -> PhaseOutcome:
    """Run one stress iteration and verify its trace; returns the outcome."""
    r = random.Random(f"{seed}:{index}")
    n_ops = ops if ops is not None else profile.ops
    violations: list[Violation] = []

    session = _obs.session()
    session.start(buffer_size=profile.buffer_size)
    jitter = JitterHook(
        random.Random(f"{seed}:{index}:jitter"),
        probability=profile.jitter_probability,
        max_sleep_s=profile.jitter_max_s,
    )
    force_full = ForceQueueFull(
        random.Random(f"{seed}:{index}:full"), ("w0",), probability=0.5
    )
    _inj.install(_inj.InjectionHooks(jitter=jitter, force_queue_full=force_full))

    rt = PjRuntime()
    rt.default_timeout_var = 5.0
    # Profile-driven adaptive policies: targets created below inherit these
    # ICVs, so one profile knob subjects the whole iteration to stealing/
    # batching/autoscaling without touching the op mix.
    rt.steal_var = profile.steal
    rt.batch_max_var = profile.batch_max
    rt.autoscale_var = profile.autoscale
    handles: list[tuple[str, TargetRegion]] = []  # driver-issued regions
    inner: list[tuple[str, TargetRegion]] = []  # regions created inside bodies
    ran: dict[int, tuple[str, str]] = {}  # callable _trace_id -> (label, outcome)
    # The workload raises on purpose (failing callables, dropped backlog);
    # the runtime dutifully logs each one.  Silence that during the run —
    # the verifier, not the log, is the oracle here.
    target_logger = logging.getLogger("repro.core.targets")
    old_level = target_logger.level
    target_logger.setLevel(logging.CRITICAL)
    try:
        # Topology.  w0 is the stress focus: maybe bounded, random policy,
        # and the only target the forced-full hook targets.  w1 stays
        # unbounded so member bodies always have a post destination that
        # cannot park them forever (no block-policy deadlock cycles).
        rt.create_worker(
            "w0",
            r.choice([1, 2, 3]),
            queue_capacity=r.choice([None, 2, 4]),
            rejection_policy=r.choice(list(REJECTION_POLICIES)),
        )
        rt.create_worker("w1", r.choice([1, 2]))
        have_edt = r.random() < 0.7
        if have_edt:
            rt.start_edt("edt")
        all_names = ["w0", "w1"] + (["edt"] if have_edt else [])
        safe_names = ["w1"] + (["edt"] if have_edt else [])  # unbounded
        targets = [rt.get_target(n) for n in all_names]
        tags = ("alpha", "beta", "gamma")

        shutdown_at = int(n_ops * 0.8) if r.random() < 0.6 else None
        shutdown_target = r.choice(all_names)
        shutdown_wait = r.random() < 0.5
        window = (max(1, int(n_ops * 0.3)), max(2, int(n_ops * 0.45)))
        next_tid = -1

        for k in range(n_ops):
            if k == window[0]:
                force_full.active = True
            elif k == window[1]:
                force_full.active = False
            if shutdown_at == k:
                rt.get_target(shutdown_target).shutdown(wait=shutdown_wait)

            label = f"op{k:03d}"
            tname = r.choice(all_names)
            duration = r.choice([0.0, 0.0005, 0.002])
            fail = r.random() < 0.12
            x = r.random()

            if k == 0:
                # The designated raiser: guaranteed ENQUEUE -> DEQUEUE ->
                # EXEC "failed" chain the tampers key on.
                cb = _make_callable(next_tid, RAISER_LABEL, 0.0, True, ran)
                next_tid -= 1
                rt.get_target("w0").post(cb)
            elif x < 0.20:
                reg = TargetRegion(region_body(duration, fail, label), name=label)
                handles.append((label, reg))
                try:
                    rt.invoke_target_block(tname, reg, "nowait")
                except PyjamaError as exc:
                    reg.request_cancel(exc)
            elif x < 0.35:
                reg = TargetRegion(region_body(duration, fail, label), name=label)
                handles.append((label, reg))
                try:
                    rt.invoke_target_block(tname, reg, "default")
                except (PyjamaError, TimeoutError) as exc:
                    reg.request_cancel(exc)
            elif x < 0.50:
                reg = TargetRegion(region_body(duration, fail, label), name=label)
                handles.append((label, reg))
                try:
                    rt.invoke_target_block(tname, reg, "name_as", tag=r.choice(tags))
                except PyjamaError as exc:
                    # A rejected post must not strand the tag group: resolve
                    # the handle so wait_tag sees a terminal region.
                    reg.request_cancel(exc)
            elif x < 0.60:
                reg = TargetRegion(region_body(duration, fail, label), name=label)
                handles.append((label, reg))
                try:
                    rt.invoke_target_block(tname, reg, "await")
                except (PyjamaError, TimeoutError) as exc:
                    reg.request_cancel(exc)
            elif x < 0.70:
                # Nested logical barrier: the outer body runs on a member
                # thread and awaits an inner region.  Inner destinations are
                # restricted to unbounded targets (or the host itself, which
                # elides inline) so member threads never park on a full
                # bounded queue — that cycle is a real deadlock, not a bug
                # this harness hunts.
                inner_name = r.choice(safe_names + [tname])
                inner_label = f"{label}-inner"
                inner_duration = r.choice([0.0, 0.0005])

                def outer(inner_name=inner_name, inner_label=inner_label,
                          inner_duration=inner_duration) -> None:
                    reg = TargetRegion(
                        region_body(inner_duration, False, inner_label),
                        name=inner_label,
                    )
                    inner.append((inner_label, reg))
                    try:
                        rt.invoke_target_block(inner_name, reg, "await", timeout=3.0)
                    except (PyjamaError, TimeoutError) as exc:
                        reg.request_cancel(exc)

                reg = TargetRegion(outer, name=label)
                handles.append((label, reg))
                try:
                    rt.invoke_target_block(tname, reg, "nowait")
                except PyjamaError as exc:
                    reg.request_cancel(exc)
            elif x < 0.80:
                # Cross-target post issued from inside a body: a member of
                # one target feeds another target's queue directly.
                dest = r.choice(all_names)
                cb = _make_callable(next_tid, f"{label}-cb", duration, fail, ran)
                next_tid -= 1

                def poster(dest=dest, cb=cb) -> None:
                    try:
                        rt.get_target(dest).post(cb, timeout=0.5)
                    except PyjamaError:
                        pass  # full or shut down: the callable never enqueued

                reg = TargetRegion(poster, name=label)
                handles.append((label, reg))
                try:
                    rt.invoke_target_block(tname, reg, "nowait")
                except PyjamaError as exc:
                    reg.request_cancel(exc)
            elif x < 0.92:
                cb = _make_callable(next_tid, f"{label}-cb", duration, fail, ran)
                next_tid -= 1
                try:
                    rt.get_target(tname).post(cb, timeout=0.5)
                except PyjamaError:
                    pass
            else:
                try:
                    rt.wait_tag(r.choice(tags), timeout=5.0)
                except RegionFailedError:
                    pass  # failing/cancelled bodies are part of the workload
                except TagError:
                    pass
                except TimeoutError:
                    violations.append(Violation(
                        "stuck-tag",
                        f"wait_tag at {label} timed out: a tag group never joined",
                        name=label,
                    ))

        force_full.active = False

        # ---- quiesce: every handle terminal, tags joined, targets drained.
        for label, reg in handles:
            if not reg.wait(8.0):
                violations.append(Violation(
                    "stuck-handle",
                    f"region {label!r} failed to reach a terminal state",
                    name=label,
                ))
        for label, reg in list(inner):
            if not reg.wait(8.0):
                violations.append(Violation(
                    "stuck-handle",
                    f"region {label!r} failed to reach a terminal state",
                    name=label,
                ))
        for tag in tags:
            try:
                rt.wait_tag(tag, timeout=5.0)
            except RegionFailedError:
                pass
            except TimeoutError:
                violations.append(Violation(
                    "stuck-tag", f"final join of tag {tag!r} timed out", name=tag
                ))
        rt.shutdown(wait=True)
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline and any(t.work_count() for t in targets):
            time.sleep(0.01)
        violations.extend(verify_quiescence(targets))
    finally:
        _inj.uninstall()
        rt.shutdown(wait=False)
        target_logger.setLevel(old_level)

    session.stop()
    stats = session.stats()
    events = session.events()
    if stats["dropped"]:
        # A lossy trace cannot be verified: unmatched spans would be ring
        # overflow, not runtime bugs.  Size the profile's buffer up instead.
        violations.append(Violation(
            "trace-overflow",
            f"ring buffers dropped {stats['dropped']} event(s); "
            "grow the profile's buffer_size",
        ))
    else:
        if inject is not None:
            events = TAMPERS[inject](events)
        violations.extend(verify_events(events))
        violations.extend(
            crosscheck_outcomes(events, regions=handles + list(inner), callables=ran)
        )
    return PhaseOutcome(str(index), _dedup(violations))


def run_dist_phase(profile: StressProfile, seed: int) -> PhaseOutcome:
    """Process-target phase: supervised workers, one killed mid-flight.

    The kill exercises crash detection, region fail-over and respawn; the
    verifier then proves the crashed region's queue events still resolved and
    no half-open worker-side EXEC span leaked into the merged trace.
    """
    violations: list[Violation] = []
    session = _obs.session()
    session.start(buffer_size=profile.buffer_size)
    rt = PjRuntime()
    handles: list[tuple[str, TargetRegion]] = []
    try:
        target = rt.create_process_worker(
            "pw", 2, max_restarts=3, heartbeat_interval=0.25
        )
        for i in range(6):
            label = f"dist-op{i:02d}"
            reg = TargetRegion(_dist_sleep, 0.15, name=label)
            handles.append((label, reg))
            rt.invoke_target_block("pw", reg, "nowait")
        time.sleep(0.3)  # let both workers pick up work
        try:
            kill_worker(target, 0)
        except Exception:  # noqa: BLE001 - lane already down is fine
            pass
        for i in range(6, 10):
            label = f"dist-op{i:02d}"
            reg = TargetRegion(_dist_sleep, 0.05, name=label)
            handles.append((label, reg))
            try:
                rt.invoke_target_block("pw", reg, "nowait")
            except PyjamaError as exc:
                reg.request_cancel(exc)
        for label, reg in handles:
            if not reg.wait(30.0):
                violations.append(Violation(
                    "stuck-handle",
                    f"region {label!r} failed to reach a terminal state",
                    name=label,
                ))
        rt.shutdown(wait=True)
        violations.extend(verify_quiescence([target]))
    finally:
        rt.shutdown(wait=False)
    session.stop()
    stats = session.stats()
    events = session.events()
    if stats["dropped"]:
        violations.append(Violation(
            "trace-overflow",
            f"ring buffers dropped {stats['dropped']} event(s); "
            "grow the profile's buffer_size",
        ))
    else:
        violations.extend(verify_events(events))
        violations.extend(crosscheck_outcomes(events, regions=handles))
    return PhaseOutcome("dist", _dedup(violations))


def run_cluster_phase(profile: StressProfile, seed: int) -> PhaseOutcome:
    """Cluster-target phase: two remote agents over loopback TCP, one killed.

    Spawns two real ``repro cluster-worker`` agent processes, routes regions
    across them through a :class:`~repro.cluster.ClusterTarget`, then kills
    one agent process mid-region.  The phase proves errors-not-hangs (every
    handle reaches a terminal state within the budget), shard failover (work
    posted after the kill still completes on the surviving endpoint) and that
    the merged trace — including the remote workers' own tracks — still
    verifies.
    """
    # Lazy: the cluster machinery is only needed when this phase runs.
    from ..cluster import spawn_agent_process

    violations: list[Violation] = []
    session = _obs.session()
    session.start(buffer_size=profile.buffer_size)
    rt = PjRuntime()
    handles: list[tuple[str, TargetRegion]] = []
    agent_a = agent_b = None
    try:
        agent_a = spawn_agent_process()
        agent_b = spawn_agent_process()
        target = rt.create_cluster(
            "cw",
            [agent_a.endpoint, agent_b.endpoint],
            max_restarts=2,
            heartbeat_interval=0.25,
        )
        for i in range(6):
            label = f"cluster-op{i:02d}"
            reg = TargetRegion(_dist_sleep, 0.15, name=label)
            handles.append((label, reg))
            rt.invoke_target_block("cw", reg, "nowait")
        time.sleep(0.3)  # let both agents pick up work
        agent_a.terminate()  # remote host dies mid-region
        survivors: list[tuple[str, TargetRegion]] = []
        for i in range(6, 10):
            label = f"cluster-op{i:02d}"
            reg = TargetRegion(_dist_sleep, 0.05, name=label)
            handles.append((label, reg))
            try:
                rt.invoke_target_block("cw", reg, "nowait")
                survivors.append((label, reg))
            except PyjamaError as exc:
                reg.request_cancel(exc)
        for label, reg in handles:
            if not reg.wait(30.0):
                violations.append(Violation(
                    "stuck-handle",
                    f"region {label!r} failed to reach a terminal state",
                    name=label,
                ))
        # Failover: the surviving endpoint must absorb the post-kill work.
        if survivors and not any(
            reg.state.name == "COMPLETED" for _, reg in survivors
        ):
            violations.append(Violation(
                "no-failover",
                "no post-kill region completed on the surviving endpoint",
                name="cluster-failover",
            ))
        rt.shutdown(wait=True)
        violations.extend(verify_quiescence([target]))
    finally:
        rt.shutdown(wait=False)
        for handle in (agent_a, agent_b):
            if handle is not None:
                handle.close()
    session.stop()
    stats = session.stats()
    events = session.events()
    if stats["dropped"]:
        violations.append(Violation(
            "trace-overflow",
            f"ring buffers dropped {stats['dropped']} event(s); "
            "grow the profile's buffer_size",
        ))
    else:
        if not any(e.kind is EventKind.WORKER_CONNECT for e in events):
            violations.append(Violation(
                "no-worker-connect",
                "cluster phase recorded no WORKER_CONNECT instant",
                name="cluster-trace",
            ))
        violations.extend(verify_events(events))
        violations.extend(crosscheck_outcomes(events, regions=handles))
    return PhaseOutcome("cluster", _dedup(violations))


def run_policy_phase(profile: StressProfile, seed: int) -> PhaseOutcome:
    """Adaptive-policy phase: stealing, batching and autoscaling all engaged.

    Two stealing worker pools share a ring; one ("hot", a single batching
    lane under an aggressive autoscaler) is saturated while the other
    ("helper") goes idle, so the burst *must* trigger both ring steals and
    scale-up decisions.  Mid-burst a lane is forcibly retired — the
    thread-pool analogue of the dist phase's worker kill, landing exactly in
    the scale-up window.  The phase then proves:

    * the full invariant verifier stays clean (every stolen ``ENQUEUE``
      resolves exactly once, spans nest, outcomes tell the truth);
    * the policies actually engaged — at least one ``POOL_SCALE`` grow
      decision and one ring-mode ``PUMP_STEAL`` were recorded (a policy
      phase that silently ran without its policies would prove nothing);
    * quiescence: the pool shrinks back and no backlog leaks.
    """
    from ..policy import PoolAutoscaler  # lazy: keep plain checks light

    r = random.Random(f"{seed}:policy")
    violations: list[Violation] = []
    session = _obs.session()
    session.start(buffer_size=profile.buffer_size)
    rt = PjRuntime()
    rt.default_timeout_var = 10.0
    handles: list[tuple[str, TargetRegion]] = []
    try:
        hot = rt.create_worker("hot", 1, steal=True, batch_max=4)
        rt.create_worker("helper", 1, steal=True, batch_max=2)
        scaler = PoolAutoscaler(
            hot, min_lanes=1, max_lanes=3, interval=0.02,
            grow_after=2, shrink_after=10, cooldown=2,
        ).start()
        hot._autoscaler = scaler  # shutdown() now owns the controller's stop
        # Saturate the hot pool: ~0.3 s of sleepy regions against one lane,
        # far past the grow watermark, while the helper drains in ~0.02 s
        # and turns thief.
        for k in range(150):
            label = f"policy-op{k:03d}"
            tname = "helper" if k % 10 == 9 else "hot"
            reg = TargetRegion(
                region_body(r.choice([0.001, 0.002]), False, label), name=label
            )
            handles.append((label, reg))
            try:
                rt.invoke_target_block(tname, reg, "nowait")
            except PyjamaError as exc:
                reg.request_cancel(exc)
            if k == 75:
                # Worker-kill analogue, mid-scale-up: retire a lane while
                # the autoscaler is still trying to grow the pool.
                hot._retire_lane()
        for label, reg in handles:
            if not reg.wait(15.0):
                violations.append(Violation(
                    "stuck-handle",
                    f"region {label!r} failed to reach a terminal state",
                    name=label,
                ))
        targets = [rt.get_target("hot"), rt.get_target("helper")]
        rt.shutdown(wait=True)
        violations.extend(verify_quiescence(targets))
    finally:
        rt.shutdown(wait=False)
    session.stop()
    stats = session.stats()
    events = session.events()
    if stats["dropped"]:
        violations.append(Violation(
            "trace-overflow",
            f"ring buffers dropped {stats['dropped']} event(s); "
            "grow the profile's buffer_size",
        ))
    else:
        if not any(
            e.kind is EventKind.POOL_SCALE and e.name == "grow" for e in events
        ):
            violations.append(Violation(
                "no-pool-scale",
                "policy phase recorded no POOL_SCALE grow decision",
                name="policy-autoscale",
            ))
        if not any(
            e.kind is EventKind.PUMP_STEAL
            and isinstance(e.arg, dict)
            and e.arg.get("mode") == "steal"
            for e in events
        ):
            violations.append(Violation(
                "no-steal",
                "policy phase recorded no ring-mode PUMP_STEAL",
                name="policy-steal",
            ))
        violations.extend(verify_events(events))
        violations.extend(crosscheck_outcomes(events, regions=handles))
    return PhaseOutcome("policy", _dedup(violations))


def run_check(
    profile: str = "smoke",
    seed: int = 0,
    *,
    iterations: int | None = None,
    ops: int | None = None,
    inject: str | None = None,
    dist: bool | None = None,
    serve: bool | None = None,
    cluster: bool | None = None,
    policy: bool | None = None,
) -> CheckResult:
    """Run the full check: N stress iterations, then the optional policy,
    dist, live-serving and cluster phases.

    ``inject`` (a :data:`TAMPERS` key) tampers with iteration 0's recorded
    events so the resulting report demonstrates a detected violation; the
    other iterations run untampered.  ``serve`` forces the HTTP worker-kill
    phase on or off, ``cluster`` the remote-agent-kill phase, and ``policy``
    the adaptive-policy phase (defaults: the profile's ``use_serve`` /
    ``use_cluster`` / ``use_policy``).
    """
    prof = PROFILES[profile]
    if ops is not None:
        prof = replace(prof, ops=ops)
    n_iterations = iterations if iterations is not None else prof.iterations
    use_dist = dist if dist is not None else prof.use_dist
    use_serve = serve if serve is not None else prof.use_serve
    use_cluster = cluster if cluster is not None else prof.use_cluster
    use_policy = policy if policy is not None else prof.use_policy
    result = CheckResult(profile=profile, seed=seed, ops=prof.ops, inject=inject)
    for i in range(n_iterations):
        result.phases.append(
            run_iteration(prof, seed, i, inject=inject if i == 0 else None)
        )
    if use_policy:
        result.phases.append(run_policy_phase(prof, seed))
    if use_dist:
        result.phases.append(run_dist_phase(prof, seed))
    if use_serve:
        # Lazy: repro.serve pulls in adapters/bench; keep plain checks light.
        from ..serve.soak import run_serve_phase

        result.phases.append(run_serve_phase(prof, seed))
    if use_cluster:
        result.phases.append(run_cluster_phase(prof, seed))
    return result


def _dedup(violations: list[Violation]) -> list[Violation]:
    seen: set[tuple[str, str]] = set()
    out: list[Violation] = []
    for v in sorted(violations, key=Violation.key):
        if v.key() not in seen:
            seen.add(v.key())
            out.append(v)
    return out
