"""Trace-invariant verifier: what a correct dispatch trace must look like.

The runtime's observable contract (docs/OBSERVABILITY.md) is a set of
*lifecycle invariants* over the :mod:`repro.obs` event stream.  The stress
harness (:mod:`repro.check.stress`) records a workload, quiesces it, and
hands the merged timeline to :func:`verify_events`; any bug that loses,
double-runs, or mis-reports work shows up as a :class:`Violation` naming the
broken invariant.

Checked invariants (the names appear in ``repro check`` reports):

``enqueue-unresolved``
    Every ``ENQUEUE`` must be matched by a later ``DEQUEUE`` or a ``CANCEL``
    for the same item: queues must not swallow work.
``dequeue-without-enqueue``
    An item cannot leave a queue more often than it entered.
``exec-without-dequeue``
    An ``EXEC_BEGIN`` requires a queue handoff (``DEQUEUE``), an inline
    elision (``INLINE_ELIDE``), or a legitimate queue bypass (``REJECT`` with
    ``arg="caller_runs"``).
``double-exec``
    A region body runs at most once.
``exec-after-cancel``
    A cancelled item must not execute: if both ``CANCEL`` and ``EXEC_BEGIN``
    exist for one item, the corresponding ``EXEC_END`` must record outcome
    ``"cancelled"`` (the dispatch found a corpse and ``run()`` no-opped).
``invalid-outcome``
    ``EXEC_END.arg`` is one of ``completed`` / ``failed`` / ``cancelled``.
``span-mismatch`` / ``span-unclosed``
    ``EXEC``, ``BARRIER`` and ``TAG_WAIT`` begin/end events nest LIFO per
    thread and every opened span closes.
``negative-depth``
    ``QUEUE_DEPTH`` samples are non-negative integers.
``backlog-leak``
    (:func:`verify_quiescence`) a quiesced target's ``work_count()`` is zero
    — control sentinels may remain, work may not.
``outcome-lie`` / ``missing-exec-end`` / ``nonterminal-at-quiescence``
    (:func:`crosscheck_outcomes`) the ``EXEC_END`` outcome in the trace must
    agree with the ground truth the harness holds in-process: the region's
    terminal state, or what an instrumented callable actually did.

Violation messages deliberately avoid timestamps, thread names, and raw
region sequence numbers wherever a stable label exists: ``repro check
--seed N`` must reproduce a report byte-for-byte.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

from ..core.region import RegionState, TargetRegion
from ..obs.events import EventKind, TraceEvent

__all__ = [
    "Violation",
    "EXEC_OUTCOMES",
    "verify_events",
    "verify_quiescence",
    "crosscheck_outcomes",
]

#: The only truthful values of ``EXEC_END.arg``.
EXEC_OUTCOMES = ("completed", "failed", "cancelled")

_SPAN_BEGIN_FOR = {
    EventKind.EXEC_END: EventKind.EXEC_BEGIN,
    EventKind.BARRIER_EXIT: EventKind.BARRIER_ENTER,
    EventKind.TAG_WAIT_END: EventKind.TAG_WAIT_BEGIN,
}

_STATE_OUTCOME = {
    RegionState.COMPLETED: "completed",
    RegionState.FAILED: "failed",
    RegionState.CANCELLED: "cancelled",
}


class Violation:
    """One broken invariant, with a deterministic, human-readable detail."""

    __slots__ = ("invariant", "detail", "target", "name")

    def __init__(
        self,
        invariant: str,
        detail: str,
        *,
        target: str | None = None,
        name: str | None = None,
    ) -> None:
        self.invariant = invariant
        self.detail = detail
        self.target = target
        self.name = name

    def key(self) -> tuple[str, str]:
        """Stable sort/dedup key: reports list violations in this order."""
        return (self.invariant, self.detail)

    def render(self) -> str:
        return f"[{self.invariant}] {self.detail}"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Violation) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Violation {self.render()}>"


class _ItemTally:
    """Per-item (region id) event counts accumulated in one pass."""

    __slots__ = (
        "enqueues", "dequeues", "cancels", "inlines", "caller_runs",
        "exec_begins", "last_end_arg", "label", "target",
    )

    def __init__(self) -> None:
        self.enqueues = 0
        self.dequeues = 0
        self.cancels = 0
        self.inlines = 0
        self.caller_runs = 0
        self.exec_begins = 0
        self.last_end_arg: object = None
        self.label: str | None = None
        self.target: str | None = None

    def note(self, event: TraceEvent) -> None:
        if event.name is not None:
            self.label = event.name
        if event.target is not None:
            self.target = event.target

    def describe(self, rid: int) -> str:
        return self.label if self.label is not None else f"region #{rid}"


def _span_label(kind: EventKind, region: int | None, name: str | None) -> str:
    what = kind.name.rsplit("_", 1)[0]
    bits = [what]
    if name is not None:
        bits.append(name)
    elif region is not None:
        bits.append(f"#{region}")
    return " ".join(bits)


def verify_events(events: Sequence[TraceEvent]) -> list[Violation]:
    """Check the lifecycle and nesting invariants over one merged timeline.

    *events* must be time-ordered (what :meth:`TraceSession.events` returns).
    Returns violations sorted by :meth:`Violation.key`, deduplicated.
    """
    tallies: dict[int, _ItemTally] = {}
    stacks: dict[str, list[tuple[EventKind, int | None, str | None]]] = {}
    out: list[Violation] = []

    for e in events:
        kind = e.kind
        rid = e.region
        tally = None
        if rid is not None:
            tally = tallies.get(rid)
            if tally is None:
                tally = tallies[rid] = _ItemTally()
            tally.note(e)

        if kind is EventKind.ENQUEUE:
            if tally is not None:
                tally.enqueues += 1
        elif kind is EventKind.DEQUEUE:
            if tally is not None:
                tally.dequeues += 1
        elif kind is EventKind.CANCEL:
            if tally is not None:
                tally.cancels += 1
        elif kind is EventKind.INLINE_ELIDE:
            if tally is not None:
                tally.inlines += 1
        elif kind is EventKind.REJECT:
            if tally is not None and e.arg == "caller_runs":
                tally.caller_runs += 1
        elif kind is EventKind.QUEUE_DEPTH:
            if not isinstance(e.arg, int) or e.arg < 0:
                out.append(Violation(
                    "negative-depth",
                    f"QUEUE_DEPTH sample of {e.arg!r} on target {e.target!r}",
                    target=e.target,
                ))
        elif kind.is_span_begin:
            if kind is EventKind.EXEC_BEGIN and tally is not None:
                tally.exec_begins += 1
            stacks.setdefault(e.thread, []).append((kind, rid, e.name))
        elif kind.is_span_end:
            if kind is EventKind.EXEC_END:
                if e.arg not in EXEC_OUTCOMES:
                    out.append(Violation(
                        "invalid-outcome",
                        f"EXEC_END for {_span_label(kind, rid, e.name)!r} carries "
                        f"outcome {e.arg!r} (expected one of {', '.join(EXEC_OUTCOMES)})",
                        target=e.target, name=e.name,
                    ))
                if tally is not None:
                    tally.last_end_arg = e.arg
            begin = _SPAN_BEGIN_FOR[kind]
            stack = stacks.setdefault(e.thread, [])
            frame = (begin, rid, e.name)
            if stack and stack[-1] == frame:
                stack.pop()
            else:
                out.append(Violation(
                    "span-mismatch",
                    f"{_span_label(kind, rid, e.name)} closed while "
                    + (f"{_span_label(*stack[-1])} was innermost"
                       if stack else "no span was open"),
                    target=e.target, name=e.name,
                ))
                # Resync: drop the matching frame if it is open somewhere
                # deeper, so one tear does not cascade into N reports.
                if frame in stack:
                    stack.remove(frame)

    for thread_stack in stacks.values():
        for kind, rid, name in thread_stack:
            out.append(Violation(
                "span-unclosed",
                f"{_span_label(kind, rid, name)} was opened but never closed",
                name=name,
            ))

    for rid, tally in tallies.items():
        label = tally.describe(rid)
        if tally.dequeues > tally.enqueues:
            out.append(Violation(
                "dequeue-without-enqueue",
                f"{label}: dequeued {tally.dequeues}x but enqueued only "
                f"{tally.enqueues}x (target {tally.target!r})",
                target=tally.target, name=tally.label,
            ))
        elif tally.enqueues > tally.dequeues + tally.cancels:
            out.append(Violation(
                "enqueue-unresolved",
                f"{label}: enqueued {tally.enqueues}x, dequeued {tally.dequeues}x, "
                f"cancelled {tally.cancels}x — work swallowed by target "
                f"{tally.target!r}",
                target=tally.target, name=tally.label,
            ))
        if tally.exec_begins > 1:
            out.append(Violation(
                "double-exec",
                f"{label}: body started {tally.exec_begins}x (must run at most once)",
                target=tally.target, name=tally.label,
            ))
        if (
            tally.exec_begins > 0
            and tally.dequeues == 0
            and tally.inlines == 0
            and tally.caller_runs == 0
        ):
            out.append(Violation(
                "exec-without-dequeue",
                f"{label}: executed without a DEQUEUE, INLINE_ELIDE or "
                f"caller_runs REJECT (target {tally.target!r})",
                target=tally.target, name=tally.label,
            ))
        if tally.cancels > 0 and tally.exec_begins > 0 and tally.last_end_arg != "cancelled":
            out.append(Violation(
                "exec-after-cancel",
                f"{label}: executed after CANCEL with outcome "
                f"{tally.last_end_arg!r} (a cancelled item may only produce a "
                f"no-op span stamped 'cancelled')",
                target=tally.target, name=tally.label,
            ))

    return _finalize(out)


def verify_quiescence(targets: Iterable[Any]) -> list[Violation]:
    """After shutdown+join, no target may still hold work.

    Control sentinels (re-posted shutdown markers, barrier wakeups) are
    excluded by construction: the check reads ``work_count()``, the
    sentinel-free backlog figure.
    """
    out: list[Violation] = []
    for target in targets:
        count = target.work_count()
        if count != 0:
            out.append(Violation(
                "backlog-leak",
                f"target {target.name!r} still holds {count} work item(s) "
                "at quiescence",
                target=target.name,
            ))
    return _finalize(out)


def crosscheck_outcomes(
    events: Sequence[TraceEvent],
    regions: Iterable[tuple[str, TargetRegion]] = (),
    callables: Mapping[int, tuple[str, str]] | None = None,
) -> list[Violation]:
    """Compare trace-recorded ``EXEC_END`` outcomes against ground truth.

    *regions* are ``(label, region)`` pairs the harness still holds; each
    region's terminal state is authoritative.  *callables* maps the
    ``_trace_id`` of an instrumented plain callable to ``(label, outcome)``
    recorded by the callable body itself.  An execution the trace never saw
    finish (no ``EXEC_END``) is only an error for callables that provably ran
    — regions may legitimately have been cancelled before executing.
    """
    ends: dict[int, TraceEvent] = {}
    for e in events:
        if e.kind is EventKind.EXEC_END and e.region is not None:
            ends.setdefault(e.region, e)

    out: list[Violation] = []
    for label, region in regions:
        state = region.state
        if not state.is_terminal:
            out.append(Violation(
                "nonterminal-at-quiescence",
                f"region {label!r} is still {state.value!r} after quiescence",
                name=label,
            ))
            continue
        end = ends.get(region.seq)
        if end is None:
            continue  # cancelled before executing, or executed untraced
        expected = _STATE_OUTCOME[state]
        if end.arg != expected:
            out.append(Violation(
                "outcome-lie",
                f"trace records outcome {end.arg!r} for region {label!r} but "
                f"its terminal state is {state.value!r}",
                target=end.target, name=label,
            ))
    for tid, (label, outcome) in (callables or {}).items():
        end = ends.get(tid)
        if end is None:
            out.append(Violation(
                "missing-exec-end",
                f"callable {label!r} ran but the trace has no EXEC_END for it",
                name=label,
            ))
        elif end.arg != outcome:
            out.append(Violation(
                "outcome-lie",
                f"trace records outcome {end.arg!r} for callable {label!r} "
                f"but it actually {outcome}",
                target=end.target, name=label,
            ))
    return _finalize(out)


def _finalize(violations: list[Violation]) -> list[Violation]:
    """Sort by stable key and drop duplicates (idempotent)."""
    seen: set[tuple[str, str]] = set()
    out: list[Violation] = []
    for v in sorted(violations, key=Violation.key):
        if v.key() not in seen:
            seen.add(v.key())
            out.append(v)
    return out
