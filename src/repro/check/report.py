"""Deterministic result containers and report rendering for ``repro check``.

The report printed to stdout is part of the harness's contract: running
``python -m repro check --seed N ...`` twice must produce byte-identical
output, so a failure seed pasted into a bug report is a complete repro.
Everything here therefore renders only seed-deterministic material —
profile/seed/op counts, phase labels, and :class:`Violation` lines (which by
construction avoid timestamps, thread names and raw region ids).
Nondeterministic telemetry (event counts, rejection tallies) belongs on
stderr, not here.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .invariants import Violation

__all__ = ["PhaseOutcome", "CheckResult", "render_report"]


@dataclass
class PhaseOutcome:
    """One verified phase: a stress iteration, or the process-target phase."""

    label: str
    violations: list[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclass
class CheckResult:
    """Everything ``repro check`` learned from one run."""

    profile: str
    seed: int
    ops: int
    inject: str | None
    phases: list[PhaseOutcome] = field(default_factory=list)

    @property
    def violations(self) -> list[Violation]:
        return [v for phase in self.phases for v in phase.violations]

    @property
    def ok(self) -> bool:
        return not self.violations


def render_report(result: CheckResult) -> str:
    """The deterministic stdout report (one line per phase, findings nested)."""
    header = (
        f"repro check: profile={result.profile} seed={result.seed} "
        f"iterations={sum(1 for p in result.phases if p.label.isdigit())} "
        f"ops={result.ops}"
    )
    if result.inject:
        header += f" inject={result.inject}"
    lines = [header]
    for phase in result.phases:
        # Numbered phases are stress iterations; named ones ("dist",
        # "serve") are the special phases.
        what = "iteration" if phase.label.isdigit() else "phase"
        if phase.ok:
            lines.append(f"{what} {phase.label}: ok")
        else:
            lines.append(
                f"{what} {phase.label}: FAIL ({len(phase.violations)} violation(s))"
            )
            lines.extend(f"  {v.render()}" for v in phase.violations)
    total = len(result.violations)
    if total:
        lines.append(
            f"FAIL: {total} violation(s) across {len(result.phases)} phase(s) "
            f"— replay with --seed {result.seed}"
        )
    else:
        lines.append(f"OK: 0 violations across {len(result.phases)} phase(s)")
    return "\n".join(lines)
