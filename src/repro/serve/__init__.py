"""A live event-driven HTTP server on virtual targets (paper Fig. 9).

Figure 9 of the paper sketches its flagship use case: an HTTP server whose
main thread is the event dispatch thread and whose request handlers are
``#omp target virtual(...)`` regions.  ``repro.sim`` models that server
analytically; this package stands it up on real sockets:

* :mod:`server` — the asyncio HTTP/1.1 server (keep-alive, bounded
  admission under all three rejection policies, per-request deadlines,
  graceful drain) whose CPU work is dispatched to thread- or
  process-backed virtual targets;
* :mod:`loadgen` — in-process open-/closed-loop load generation at
  10⁵–10⁶-request scale with full latency distributions;
* :mod:`stats` — request-lifecycle counters and the bridge into
  ``repro.bench/v1`` documents and ``repro.obs`` Chrome traces;
* :mod:`soak` — the ``repro check`` phase that kills a worker process
  under live load and verifies errors-not-hangs.

Entry point: ``python -m repro serve`` (see ``docs/SERVING.md``).
"""

from .loadgen import LoadResult, make_payload, run_closed_loop, run_open_loop
from .server import HttpServer, ServeConfig, encrypt_payload
from .stats import ServerStats, export_trace, latency_entry, serve_document

__all__ = [
    "HttpServer",
    "ServeConfig",
    "encrypt_payload",
    "LoadResult",
    "run_closed_loop",
    "run_open_loop",
    "make_payload",
    "ServerStats",
    "latency_entry",
    "serve_document",
    "export_trace",
]
