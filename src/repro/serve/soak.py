"""The ``repro check`` serve phase: live HTTP under a worker kill.

Stands up a real process-backend :class:`~repro.serve.server.HttpServer`,
drives a closed-loop burst through it, hard-kills one worker process while
requests are in flight (:func:`repro.check.faults.kill_worker` — the same
fault the dist phase injects), and then checks the serving-level contract:

* **no hangs** — every issued request produced a response (the whole
  scenario runs under a hard timeout; tripping it is itself a violation);
* **errors, not resets** — a crashed worker surfaces as a 5xx response on a
  healthy connection, never as a dropped transport;
* **clean drain** — after the burst the graceful drain completes inside its
  grace period without downgrading to cancellation;
* **no backlog leaks** — post-shutdown, the CPU target's queue is empty and
  its members are gone (:func:`repro.check.invariants.verify_quiescence`).

Violation messages stay seed-deterministic in the common case (counts, not
timestamps or pids) so a failing ``repro check --serve`` report is
replayable like every other phase.
"""

from __future__ import annotations

import asyncio
from typing import TYPE_CHECKING

from ..check.faults import kill_worker
from ..check.invariants import Violation, verify_quiescence
from ..check.report import PhaseOutcome
from .loadgen import run_closed_loop
from .server import HttpServer, ServeConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..check.stress import StressProfile

__all__ = ["run_serve_phase"]

#: Responses a burst overlapping a worker kill may legitimately produce:
#: success, crash fail-over (500), admission rejection (503), deadline (504).
_ACCEPTABLE = {200, 500, 503, 504}

_SCENARIO_TIMEOUT = 90.0


async def _scenario(profile: "StressProfile", seed: int,
                    violations: list[Violation]) -> None:
    cfg = ServeConfig(
        backend="process",
        workers=2,
        queue_capacity=64,
        policy="reject",
        request_timeout=20.0,
        drain_grace=10.0,
        rounds=10,                 # ~tens of ms per request: a kill window
        edt_name="serve-edt",
        cpu_target="serve-cpu",
    )
    n_requests = 40
    server = HttpServer(cfg)
    await server.start()
    target = server.runtime.get_target(cfg.cpu_target)
    try:
        load = asyncio.create_task(run_closed_loop(
            "127.0.0.1", server.port,
            requests=n_requests, concurrency=8, payload_bytes=4096,
        ))
        await asyncio.sleep(0.3)   # let both workers pick up requests
        try:
            kill_worker(target, seed % cfg.workers)
        except Exception:  # noqa: BLE001 - lane already down is acceptable
            pass
        result = await load
        answered = result.requests + result.errors
        if answered != n_requests:
            violations.append(Violation(
                "serve-hang",
                f"{n_requests - answered} of {n_requests} requests never "
                "completed (no response, no error)",
            ))
        if result.errors:
            violations.append(Violation(
                "serve-transport-error",
                f"{result.errors} request(s) died at the transport level; a "
                "worker crash must surface as a 5xx response, not a reset",
            ))
        bad = {s: n for s, n in result.statuses.items() if s not in _ACCEPTABLE}
        if bad:
            violations.append(Violation(
                "serve-bad-status",
                f"unexpected status codes in kill burst: {sorted(bad)}",
            ))
        if not result.statuses.get(200):
            violations.append(Violation(
                "serve-no-success",
                "no request succeeded around the worker kill; fail-over or "
                "respawn is not working",
            ))
    finally:
        await server.stop()
    if server._drain_clean is False:
        violations.append(Violation(
            "serve-unclean-drain",
            "graceful drain missed its grace period and downgraded to cancel",
        ))
    violations.extend(verify_quiescence([target]))


def run_serve_phase(profile: "StressProfile", seed: int) -> PhaseOutcome:
    """Run the live-serving phase; returns its :class:`PhaseOutcome`."""
    violations: list[Violation] = []
    try:
        asyncio.run(
            asyncio.wait_for(_scenario(profile, seed, violations),
                             _SCENARIO_TIMEOUT)
        )
    except asyncio.TimeoutError:
        violations.append(Violation(
            "serve-hang",
            f"serve scenario exceeded its {_SCENARIO_TIMEOUT:.0f}s budget; "
            "something in the request/drain path is stuck",
        ))
    return PhaseOutcome("serve", violations)
