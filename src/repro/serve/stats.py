"""Request-lifecycle statistics and their export surfaces.

Three consumers read a served workload:

* the ``/stats`` endpoint and the CLI summary — :class:`ServerStats`
  counters plus p50/p99 latency over the recorded samples;
* ``repro.bench`` — :func:`latency_entry`/:func:`serve_document` shape a
  live run into a ``repro.bench/v1`` document, so the live server's numbers
  live in the same schema (and the same ``--compare`` machinery) as the
  Figure 9 simulation;
* ``repro.obs`` — every request is dispatched as a :class:`TargetRegion`
  through ``invoke_target_block``, so with tracing on the trace already
  carries one ``REGION_SUBMIT → ENQUEUE → DEQUEUE → EXEC`` flow arrow per
  request and per-target ``QUEUE_DEPTH`` counter tracks; :func:`export_trace`
  snapshots the session into a Chrome/Perfetto file.
"""

from __future__ import annotations

import threading
from typing import Any

from ..bench.env import environment_fingerprint
from ..bench.harness import percentile
from ..bench.report import SCHEMA

__all__ = ["ServerStats", "latency_entry", "serve_document", "export_trace"]


class ServerStats:
    """Counters and latency samples for one server lifetime.

    Mutated from the event-loop thread (request lifecycle) and read from
    arbitrary threads (``/stats``, CLI, tests); the lock keeps multi-field
    snapshots consistent without mattering on the hot path (one acquisition
    per request).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.connections = 0
        self.requests = 0
        self.statuses: dict[int, int] = {}
        self.rejected = 0          # bounded admission said no (503)
        self.timeouts = 0          # request deadline expired (504)
        self.failures = 0          # handler region failed (500)
        self.draining_rejects = 0  # request arrived during drain (503)
        self.bytes_in = 0
        self.bytes_out = 0
        self.latencies_s: list[float] = []

    def record(self, status: int | None = None, latency_s: float | None = None,
               *, counter: str | None = None, bytes_in: int = 0,
               bytes_out: int = 0) -> None:
        """The single mutation path: every counter update goes through here.

        One lock acquisition covers the whole read-modify-write, whether the
        call logs a finished request (*status* + *latency_s*) or bumps a
        named event *counter* — no field is ever incremented outside this
        guard.
        """
        with self._lock:
            if counter is not None:
                setattr(self, counter, getattr(self, counter) + 1)
            if status is not None:
                self.requests += 1
                self.statuses[status] = self.statuses.get(status, 0) + 1
                self.bytes_in += bytes_in
                self.bytes_out += bytes_out
                self.latencies_s.append(0.0 if latency_s is None else latency_s)

    def bump(self, counter: str) -> None:
        """Convenience spelling of ``record(counter=...)``."""
        self.record(counter=counter)

    def snapshot(self) -> dict[str, Any]:
        """Consistent view of every counter plus latency percentiles."""
        with self._lock:
            lat = list(self.latencies_s)
            snap: dict[str, Any] = {
                "connections": self.connections,
                "requests": self.requests,
                "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
                "rejected": self.rejected,
                "timeouts": self.timeouts,
                "failures": self.failures,
                "draining_rejects": self.draining_rejects,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
            }
        if lat:
            snap["latency_ms"] = {
                "p50": round(percentile(lat, 50.0) * 1e3, 3),
                "p99": round(percentile(lat, 99.0) * 1e3, 3),
                "max": round(max(lat) * 1e3, 3),
            }
        return snap


def latency_entry(latencies_s: list[float], *, group: str = "serve",
                  sample_cap: int = 512) -> dict[str, Any]:
    """One ``benchmarks`` entry of a ``repro.bench/v1`` document.

    Statistics (including the gate-relevant ``p50_ns``) are computed over
    the *full* latency distribution; only ``sample_cap`` evenly-strided raw
    samples are stored, so a 10⁵-request run doesn't balloon the JSON.  The
    extra ``p99_ns`` key is the serving-specific tail figure — harmless to
    schema consumers that don't know it.
    """
    if not latencies_s:
        raise ValueError("latency_entry needs at least one sample")
    ns = [s * 1e9 for s in latencies_s]
    stride = max(1, len(ns) // sample_cap)
    return {
        "group": group,
        "number": 1,
        "repeats": len(ns),
        "trimmed": 0,
        "samples_ns": [round(s, 1) for s in ns[::stride][:sample_cap]],
        "min_ns": round(min(ns), 3),
        "mean_ns": round(sum(ns) / len(ns), 3),
        "p50_ns": round(percentile(ns, 50.0), 3),
        "p95_ns": round(percentile(ns, 95.0), 3),
        "p99_ns": round(percentile(ns, 99.0), 3),
        "max_ns": round(max(ns), 3),
    }


def serve_document(entries: dict[str, dict[str, Any]],
                   serve: dict[str, Any]) -> dict[str, Any]:
    """A ``repro.bench/v1`` document for a live serving run.

    *entries* are benchmark-shaped latency distributions (see
    :func:`latency_entry`); *serve* carries the serving-specific results —
    per-backend throughput, status tallies, drain verdicts — under a
    top-level ``"serve"`` key that schema consumers ignore.
    """
    import datetime

    return {
        "schema": SCHEMA,
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "env": environment_fingerprint(),
        "protocol": {"warmup": 0, "repeats": 1, "trim": 0.0},
        "benchmarks": entries,
        "serve": serve,
    }


def export_trace(path: str) -> int:
    """Write the current trace session as a Chrome trace; returns event count.

    With ``REPRO_TRACE=1`` (or ``--trace`` on the CLI) a served workload
    exports the same flow-arrow timeline every other workload does: one
    submit→exec arrow per request region, queue-depth counter tracks per
    target, worker lifecycle instants for process backends.
    """
    from .. import obs

    events = obs.session().events()
    obs.write_chrome_trace(path, events)
    return len(events)
