"""In-process asyncio load generator for the Fig. 9 server.

Two shapes, matching the serving-benchmark literature:

* **closed loop** (:func:`run_closed_loop`) — *concurrency* workers, each
  owning one keep-alive connection, fire the next request the moment the
  previous response lands.  Measures saturation throughput: offered load
  self-adjusts to what the server sustains.
* **open loop** (:func:`run_open_loop`) — requests arrive on a fixed
  schedule (*rate* per second) regardless of completions, the honest way to
  observe queueing delay and rejection under overload.

Both run inside the same process/loop as the caller (no external tooling),
scale to 10⁵–10⁶ requests, and produce a :class:`LoadResult` with the full
latency distribution, status tallies, and achieved throughput — the raw
material for ``repro.serve.stats.latency_entry``.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Any

from ..bench.harness import percentile

__all__ = ["LoadResult", "run_closed_loop", "run_open_loop", "make_payload"]


def make_payload(n_bytes: int = 64) -> bytes:
    """A deterministic /encrypt payload (multiple of the 8-byte block)."""
    n = max(8, (n_bytes + 7) // 8 * 8)
    return bytes(i & 0xFF for i in range(n))


@dataclass
class LoadResult:
    """Outcome of one load-generation run."""

    mode: str
    requests: int = 0                 # responses fully received
    errors: int = 0                   # transport-level failures
    dropped: int = 0                  # open loop: arrivals past max_outstanding
    statuses: dict[int, int] = field(default_factory=dict)
    latencies_s: list[float] = field(default_factory=list)
    duration_s: float = 0.0

    def record(self, status: int, latency_s: float) -> None:
        self.requests += 1
        self.statuses[status] = self.statuses.get(status, 0) + 1
        self.latencies_s.append(latency_s)

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def ok(self) -> int:
        return self.statuses.get(200, 0)

    def summary(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "mode": self.mode,
            "requests": self.requests,
            "errors": self.errors,
            "dropped": self.dropped,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "duration_s": round(self.duration_s, 3),
            "throughput_rps": round(self.throughput_rps, 1),
        }
        if self.latencies_s:
            out["latency_ms"] = {
                "p50": round(percentile(self.latencies_s, 50.0) * 1e3, 3),
                "p99": round(percentile(self.latencies_s, 99.0) * 1e3, 3),
                "max": round(max(self.latencies_s) * 1e3, 3),
            }
        return out


class _Client:
    """One keep-alive HTTP/1.1 connection with lazy (re)connect."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self.reader: asyncio.StreamReader | None = None
        self.writer: asyncio.StreamWriter | None = None
        #: Headers of the most recent response (tests inspect e.g. the
        #: X-Rejected-By rejection diagnostics).
        self.last_headers: dict[str, str] = {}

    async def _connect(self) -> None:
        self.reader, self.writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def request(
        self, method: str, path: str, body: bytes = b""
    ) -> tuple[int, bytes, bool]:
        """Send one request; returns (status, body, keep_alive)."""
        if self.writer is None or self.writer.is_closing():
            await self._connect()
        assert self.reader is not None and self.writer is not None
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode("latin-1")
        self.writer.write(head + body)
        await self.writer.drain()
        return await self._read_response(self.reader)

    async def _read_response(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, bytes, bool]:
        line = await reader.readline()
        if not line:
            raise ConnectionResetError("server closed the connection")
        status = int(line.split(None, 2)[1])
        length = 0
        keep_alive = True
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            key, _, value = raw.decode("latin-1").partition(":")
            key = key.strip().lower()
            headers[key] = value.strip()
            if key == "content-length":
                length = int(value.strip())
            elif key == "connection" and value.strip().lower() == "close":
                keep_alive = False
        self.last_headers = headers
        payload = await reader.readexactly(length) if length else b""
        if not keep_alive:
            await self.close()
        return status, payload, keep_alive

    async def close(self) -> None:
        if self.writer is not None:
            try:
                self.writer.close()
                await self.writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        self.reader = self.writer = None


async def run_closed_loop(
    host: str,
    port: int,
    *,
    requests: int,
    concurrency: int = 64,
    payload_bytes: int = 64,
    path: str = "/encrypt",
    method: str = "POST",
) -> LoadResult:
    """Closed-loop run: *concurrency* keep-alive workers, *requests* total."""
    result = LoadResult(mode="closed")
    payload = make_payload(payload_bytes) if method == "POST" else b""
    remaining = requests
    lock = asyncio.Lock()

    async def take() -> bool:
        nonlocal remaining
        async with lock:
            if remaining <= 0:
                return False
            remaining -= 1
            return True

    async def worker() -> None:
        client = _Client(host, port)
        while await take():
            t0 = time.perf_counter()
            try:
                status, _, _ = await client.request(method, path, payload)
            except (ConnectionError, asyncio.IncompleteReadError, OSError):
                result.errors += 1
                await client.close()
                continue
            result.record(status, time.perf_counter() - t0)
        await client.close()

    t_start = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(max(1, concurrency))))
    result.duration_s = time.perf_counter() - t_start
    return result


async def run_open_loop(
    host: str,
    port: int,
    *,
    rate: float,
    duration: float,
    payload_bytes: int = 64,
    path: str = "/encrypt",
    method: str = "POST",
    max_outstanding: int = 1024,
) -> LoadResult:
    """Open-loop run: fixed arrival schedule of *rate* requests/second.

    Arrivals beyond *max_outstanding* in-flight requests are counted as
    ``dropped`` rather than spawned — an fd-exhaustion guard that also
    makes severe overload visible in the result instead of in the OS.
    """
    result = LoadResult(mode="open")
    payload = make_payload(payload_bytes) if method == "POST" else b""
    pool: list[_Client] = []
    tasks: set[asyncio.Task[None]] = set()

    async def one() -> None:
        client = pool.pop() if pool else _Client(host, port)
        t0 = time.perf_counter()
        try:
            status, _, keep = await client.request(method, path, payload)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            result.errors += 1
            await client.close()
            return
        result.record(status, time.perf_counter() - t0)
        if keep:
            pool.append(client)

    interval = 1.0 / max(rate, 1e-9)
    t_start = time.perf_counter()
    n = 0
    while time.perf_counter() - t_start < duration:
        next_at = t_start + n * interval
        delay = next_at - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        n += 1
        if len(tasks) >= max_outstanding:
            result.dropped += 1
            continue
        task = asyncio.create_task(one())
        tasks.add(task)
        task.add_done_callback(tasks.discard)
    if tasks:
        await asyncio.gather(*tasks, return_exceptions=True)
    result.duration_s = time.perf_counter() - t_start
    for client in pool:
        await client.close()
    return result
