"""A live event-driven HTTP server on virtual targets (paper Fig. 9, real).

The paper's Figure 9 sketches an HTTP server whose accept loop is the event
dispatch thread and whose request handlers are ``#omp target virtual(...)``
regions.  ``repro.sim`` models that shape analytically; this module *runs*
it, on real sockets:

* the asyncio event loop is registered as an EDT virtual target
  (:func:`repro.adapters.register_asyncio_edt`) — the accept loop and all
  request parsing/response writing live on it;
* CPU-bound handler work (the IDEA crypt kernel) is dispatched as
  ``nowait`` target regions to a thread- or process-backed worker target
  through the ordinary :meth:`PjRuntime.invoke_target_block` surface and
  awaited via :func:`as_future` — the loop keeps serving while kernels run;
* admission control is the targets' own bounded queues: a full queue under
  ``reject`` (or ``block`` past its timeout) surfaces as a structured
  :class:`QueueFullError` which the server maps to HTTP 503, while
  ``caller_runs`` degrades to inline execution on the loop (legal, logged,
  measurably bad for tail latency — see ``docs/SERVING.md``);
* per-request deadlines ride the same ``timeout=`` clause every dispatch
  has: expiry withdraws a queued region (or flags a running one's cancel
  token) and the client sees 504;
* graceful drain mirrors ``shutdown(wait=True)`` semantics: stop accepting,
  503 new requests, wait for in-flight ones up to a grace deadline, then
  downgrade to cancellation with a ``describe()`` diagnostic.

Protocol support is deliberately small — HTTP/1.1 with keep-alive, fixed
Content-Length bodies, no chunked encoding, no TLS — enough to point real
tools (curl, ab, the bundled :mod:`repro.serve.loadgen`) at the runtime
without dragging in a web framework.
"""

from __future__ import annotations

import asyncio
import json
import logging
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..adapters import as_future, register_asyncio_edt
from ..core import PjRuntime, TargetRegion
from ..core.errors import QueueFullError, RegionFailedError, WorkerCrashedError
from ..kernels import crypt
from .stats import ServerStats

__all__ = ["ServeConfig", "HttpServer", "encrypt_payload", "REASONS"]

_logger = logging.getLogger(__name__)

REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

# Cached per interpreter: in a process-backed worker each OS process expands
# the key schedule once, on first request, and reuses it after.
_SUBKEYS: np.ndarray | None = None


def _subkeys() -> np.ndarray:
    global _SUBKEYS
    if _SUBKEYS is None:
        _SUBKEYS = crypt.encryption_subkeys(crypt.generate_key())
    return _SUBKEYS


def encrypt_payload(data: bytes, rounds: int = 1) -> bytes:
    """The CPU-bound request handler body: IDEA-encrypt *data*.

    Module-level (not a closure) so process targets can ship it by
    reference; takes and returns ``bytes`` so the payload crosses process
    boundaries without numpy in the pickle.  *data* length must be a
    multiple of 8 (the cipher's block size) — the server validates that
    before dispatch so malformed payloads cost a 400, not a worker round
    trip.
    """
    buf = np.frombuffer(data, dtype=np.uint8)
    keys = _subkeys()
    for _ in range(max(1, rounds)):
        buf = crypt.encrypt(buf, keys)
    return buf.tobytes()


@dataclass
class ServeConfig:
    """Everything that shapes one server instance."""

    host: str = "127.0.0.1"
    port: int = 0                    # 0: let the OS pick (tests, CI)
    backend: str = "thread"          # "thread" | "process" | "cluster"
    cluster_endpoints: tuple[str, ...] = ()  # agent host:port list (cluster)
    workers: int = 4
    queue_capacity: int = 64
    policy: str = "reject"           # block | reject | caller_runs
    admission_timeout: float = 0.5   # bounds a block-policy post from the loop
    request_timeout: float = 10.0    # deadline until 504
    drain_grace: float = 5.0         # graceful-drain budget before hard cancel
    rounds: int = 1                  # encrypt passes per request (CPU knob)
    max_request_bytes: int = 1 << 20
    edt_name: str = "http-edt"
    cpu_target: str = "http-cpu"

    def __post_init__(self) -> None:
        if self.backend not in ("thread", "process", "cluster"):
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.backend == "cluster" and not self.cluster_endpoints:
            raise ValueError("backend 'cluster' needs cluster_endpoints")


@dataclass
class _Conn:
    """Per-connection bookkeeping for the drain protocol."""

    writer: asyncio.StreamWriter
    busy: bool = False               # a request is mid-flight on it
    opened: float = field(default_factory=time.monotonic)


class HttpServer:
    """The Fig. 9 server: accept loop as EDT, handlers as target regions.

    Lifecycle: construct with a :class:`ServeConfig`, ``await start()``
    inside a running loop, serve, then ``await stop()`` (graceful) or
    ``await stop(drain=False)`` (immediate cancel).  Tests and the CLI can
    also reach the listening port via :attr:`port` after ``start()``.
    """

    def __init__(self, config: ServeConfig, *, runtime: PjRuntime | None = None):
        self.config = config
        self.runtime = runtime if runtime is not None else PjRuntime()
        self._owns_runtime = runtime is None
        self.stats = ServerStats()
        self._server: asyncio.base_events.Server | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._conns: dict[int, _Conn] = {}
        self._draining = False
        self._stopped = False
        self._drain_clean: bool | None = None  # verdict of the last drain
        self._inflight: set[TargetRegion] = set()

    # ---------------------------------------------------------------- lifecycle

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        """Create the targets and start listening.

        Must run inside the loop that will serve — that loop becomes the
        EDT virtual target, exactly the paper's 'main thread registers
        itself as the event dispatch thread'.
        """
        cfg = self.config
        self._loop = asyncio.get_running_loop()
        if cfg.backend == "cluster":
            self.runtime.create_cluster(
                cfg.cpu_target,
                list(cfg.cluster_endpoints),
                shards=max(1, cfg.workers // len(cfg.cluster_endpoints)),
                queue_capacity=cfg.queue_capacity,
                rejection_policy=cfg.policy,
            )
        elif cfg.backend == "process":
            self.runtime.create_process_worker(
                cfg.cpu_target,
                cfg.workers,
                queue_capacity=cfg.queue_capacity,
                rejection_policy=cfg.policy,
            )
        else:
            self.runtime.create_worker(
                cfg.cpu_target,
                cfg.workers,
                queue_capacity=cfg.queue_capacity,
                rejection_policy=cfg.policy,
            )
        register_asyncio_edt(self.runtime, cfg.edt_name, self._loop)
        self._server = await asyncio.start_server(
            self._handle_connection, cfg.host, cfg.port,
            reuse_address=True,
        )
        _logger.info(
            "repro.serve listening on %s:%d (backend=%s workers=%d "
            "capacity=%d policy=%s)",
            cfg.host, self.port, cfg.backend, cfg.workers,
            cfg.queue_capacity, cfg.policy,
        )

    def request_stop(self) -> None:
        """Thread-safe stop request, routed *through the EDT target*.

        Signal handlers and foreign threads post a region onto the asyncio
        EDT — the same ``virtual(edt)`` path a target block would take — and
        the region body schedules the drain on the loop.
        """
        def _post_stop() -> None:
            asyncio.ensure_future(self.stop())

        self.runtime.invoke_target_block(
            self.config.edt_name, TargetRegion(_post_stop, name="serve-stop"),
            "nowait",
        )

    async def stop(self, *, drain: bool = True) -> None:
        """Stop listening and tear down; optionally drain in-flight work."""
        if self._stopped:
            return
        self._stopped = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        clean = False
        if drain:
            clean = await self.drain(self.config.drain_grace)
        else:
            self._hard_cancel("stop(drain=False)")
        # Target teardown joins worker threads/processes — off the loop.  A
        # downgraded drain also downgrades the join: cancelled work must not
        # re-block teardown on the very regions it just gave up on.
        await asyncio.get_running_loop().run_in_executor(
            None, self._shutdown_runtime, clean
        )

    def _shutdown_runtime(self, wait: bool) -> None:
        if self._owns_runtime:
            self.runtime.shutdown(wait=wait)
        else:
            for name in (self.config.cpu_target, self.config.edt_name):
                if self.runtime.has_target(name):
                    self.runtime.unregister_target(name, wait=wait)

    async def drain(self, grace: float) -> bool:
        """Graceful drain: the server-side ``shutdown(wait=True)``.

        New requests get 503 + ``Connection: close``; idle keep-alive
        connections are closed immediately; busy ones get until *grace*
        to finish.  Past the deadline the drain downgrades — in-flight
        regions get ``request_cancel`` and lingering transports are
        aborted — and the diagnostic logs each target's ``describe()``,
        mirroring the EDT ack-timeout warning.  Returns True iff the
        drain was clean (no downgrade).
        """
        self._draining = True
        for conn in list(self._conns.values()):
            if not conn.busy:
                self._close_writer(conn.writer)
        deadline = time.monotonic() + grace
        while any(c.busy for c in self._conns.values()):
            if time.monotonic() >= deadline:
                self._hard_cancel(f"drain grace {grace:.1f}s expired")
                self._drain_clean = False
                return False
            await asyncio.sleep(0.01)
        self._drain_clean = True
        return True

    def _hard_cancel(self, why: str) -> None:
        pending = [r for r in self._inflight if not r.done]
        if pending or self._conns:
            described = ", ".join(
                self.runtime.get_target(n).describe()
                for n in (self.config.cpu_target, self.config.edt_name)
                if self.runtime.has_target(n)
            )
            _logger.warning(
                "repro.serve downgrading drain to cancel (%s): "
                "%d region(s) in flight, %d connection(s) open; %s",
                why, len(pending), len(self._conns), described,
            )
        for region in pending:
            region.request_cancel()
        for conn in list(self._conns.values()):
            transport = conn.writer.transport
            if transport is not None:
                transport.abort()

    def _close_writer(self, writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except RuntimeError:  # pragma: no cover - loop already closing
            pass

    # --------------------------------------------------------------- connection

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(writer)
        self._conns[id(conn)] = conn
        self.stats.bump("connections")
        try:
            while not self._stopped:
                try:
                    request = await self._read_request(reader)
                except asyncio.IncompleteReadError:
                    break
                except ConnectionError:
                    break
                if request is None:  # EOF between requests: clean close
                    break
                conn.busy = True
                try:
                    keep_alive = await self._handle_request(request, writer)
                finally:
                    conn.busy = False
                if not keep_alive or self._draining:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conns.pop(id(conn), None)
            self._close_writer(writer)

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> dict[str, Any] | None:
        """Parse one HTTP/1.x request; None on clean EOF."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, version = line.decode("latin-1").split(None, 2)
        except ValueError:
            return {"error": 400, "detail": "malformed request line"}
        headers: dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            if b":" in raw:
                k, _, v = raw.decode("latin-1").partition(":")
                headers[k.strip().lower()] = v.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > self.config.max_request_bytes:
            return {"error": 413,
                    "detail": f"body of {length} bytes exceeds limit"}
        body = await reader.readexactly(length) if length else b""
        return {
            "method": method.upper(),
            "path": path,
            "version": version.strip(),
            "headers": headers,
            "body": body,
        }

    # ------------------------------------------------------------------ request

    async def _handle_request(
        self, request: dict[str, Any], writer: asyncio.StreamWriter
    ) -> bool:
        t0 = time.monotonic()
        extra_headers: list[tuple[str, str]] = []
        if "error" in request:
            status, payload = request["error"], request["detail"].encode()
            keep_alive = False
        else:
            keep_alive = self._wants_keep_alive(request)
            if self._draining:
                self.stats.bump("draining_rejects")
                status, payload = 503, b"server is draining"
                keep_alive = False
            else:
                status, payload, hdrs = await self._route(request)
                extra_headers.extend(hdrs)
        if not keep_alive or self._draining:
            extra_headers.append(("Connection", "close"))
            keep_alive = False
        out = self._render_response(status, payload, extra_headers)
        try:
            writer.write(out)
            await writer.drain()
        except ConnectionError:
            keep_alive = False
        self.stats.record(
            status, time.monotonic() - t0,
            bytes_in=len(request.get("body", b"")), bytes_out=len(out),
        )
        return keep_alive

    def _wants_keep_alive(self, request: dict[str, Any]) -> bool:
        tok = request["headers"].get("connection", "").lower()
        if request["version"].endswith("1.0"):
            return tok == "keep-alive"
        return tok != "close"

    def _render_response(
        self, status: int, payload: bytes,
        extra_headers: list[tuple[str, str]],
    ) -> bytes:
        reason = REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}",
                 f"Content-Length: {len(payload)}"]
        lines.extend(f"{k}: {v}" for k, v in extra_headers)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + payload

    async def _route(
        self, request: dict[str, Any]
    ) -> tuple[int, bytes, list[tuple[str, str]]]:
        method, path = request["method"], request["path"].split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            return 200, b"ok", []
        if path == "/stats" and method == "GET":
            body = json.dumps(self._stats_payload(), indent=2).encode()
            return 200, body, [("Content-Type", "application/json")]
        if path == "/encrypt" and method == "POST":
            return await self._handle_encrypt(request)
        if path == "/" and method == "GET":
            body = (
                b"repro.serve: event-driven HTTP on virtual targets\n"
                b"POST /encrypt (body length % 8 == 0) | GET /stats | "
                b"GET /healthz\n"
            )
            return 200, body, []
        return 404, f"no route for {method} {path}".encode(), []

    def _stats_payload(self) -> dict[str, Any]:
        snap = self.stats.snapshot()
        # Uniform across thread/process/cluster: clients key on one field
        # instead of sniffing target kinds out of the describe() strings.
        snap["backend"] = self.config.backend
        snap["targets"] = {
            name: self.runtime.get_target(name).describe()
            for name in (self.config.cpu_target, self.config.edt_name)
            if self.runtime.has_target(name)
        }
        snap["draining"] = self._draining
        return snap

    async def _handle_encrypt(
        self, request: dict[str, Any]
    ) -> tuple[int, bytes, list[tuple[str, str]]]:
        """Dispatch the crypt kernel to the CPU target; the Fig. 9 handler.

        The whole policy surface of the runtime shows up here:

        * ``nowait`` dispatch + ``as_future`` keeps the loop free;
        * ``QueueFullError`` (reject, or block past ``admission_timeout``)
          becomes 503 with the refusing target and policy in headers;
        * ``asyncio.wait_for`` past ``request_timeout`` becomes 504 and the
          region is withdrawn (pending) or flagged (running);
        * a worker crash mid-request becomes 500 with the crash detail —
          an error response, never a hang.
        """
        body = request["body"]
        if not body or len(body) % 8:
            return (400,
                    b"payload must be a non-empty multiple of 8 bytes",
                    [])
        cfg = self.config
        region = TargetRegion(encrypt_payload, body, cfg.rounds,
                              name="http-encrypt")
        try:
            self.runtime.invoke_target_block(
                cfg.cpu_target, region, "nowait",
                timeout=cfg.admission_timeout,
            )
        except QueueFullError as exc:
            self.stats.bump("rejected")
            return 503, str(exc).encode(), [
                ("Retry-After", "0"),
                ("X-Rejected-By", exc.name),
                ("X-Rejection-Policy", exc.policy or "unknown"),
            ]
        self._inflight.add(region)
        try:
            encrypted = await asyncio.wait_for(
                as_future(region), timeout=cfg.request_timeout
            )
        except asyncio.TimeoutError:
            self.stats.bump("timeouts")
            region.request_cancel()
            return (504,
                    f"encrypt exceeded {cfg.request_timeout:.1f}s".encode(),
                    [])
        except RegionFailedError as exc:  # RegionCancelledError included
            self.stats.bump("failures")
            if isinstance(exc.cause, WorkerCrashedError):
                return (500, str(exc.cause).encode(),
                        [("X-Worker-Fault", "crash")])
            return 500, str(exc).encode(), []
        finally:
            self._inflight.discard(region)
        return 200, encrypted, [("Content-Type", "application/octet-stream")]


def probe_port(host: str, port: int, timeout: float = 0.5) -> bool:
    """True if something accepts TCP connections at host:port (CI probe)."""
    try:
        with socket.create_connection((host, port), timeout=timeout):
            return True
    except OSError:
        return False
