"""Directive-runtime overhead vs hand-written executor code (§III/IV claim).

The paper argues the directive approach costs no more than the manual
ExecutorService pattern it replaces.  Here we measure, on real threads:

* dispatch+join through ``invoke_target_block`` (Algorithm 1), vs
* dispatch+join through the plain ExecutorService baseline, vs
* the compiled-pragma path (``@omp`` output calling the same runtime).

The three should be within the same order of magnitude; Algorithm 1 adds a
registry lookup and a context check on top of the queue hand-off.

Each measurement is registered once with :mod:`repro.bench` (so
``python -m repro bench --filter overhead`` runs it under the shared
protocol) and the pytest entry points below are thin wrappers over the same
registrations.
"""

from __future__ import annotations

from repro import bench as hbench
from repro.compiler import exec_omp
from repro.core import PjRuntime
from repro.eventloop import ExecutorService


def _worker_runtime() -> PjRuntime:
    rt = PjRuntime()
    rt.create_worker("worker", 2)
    return rt


@hbench.benchmark("overhead_pyjama_dispatch", group="overhead", number=50)
def _pyjama_dispatch():
    """Algorithm 1 dispatch+join round trip on a 2-thread worker target."""
    rt = _worker_runtime()
    op = lambda: rt.invoke_target_block("worker", lambda: 42).result()
    return op, lambda: rt.shutdown(wait=False)


@hbench.benchmark("overhead_manual_executor", group="overhead", number=50)
def _manual_executor():
    """The hand-written ExecutorService submit+get baseline."""
    pool = ExecutorService(2, name="manual")
    op = lambda: pool.submit(lambda: 42).get()
    return op, pool.shutdown_now


@hbench.benchmark("overhead_compiled_pragma", group="overhead", number=50)
def _compiled_pragma():
    """The ``#omp target virtual`` pragma compiled down to the same runtime."""
    rt = _worker_runtime()
    ns = exec_omp(
        "def f():\n"
        "    #omp target virtual(worker)\n"
        "    x = 42\n"
        "    return x\n",
        runtime=rt,
    )
    return ns["f"], lambda: rt.shutdown(wait=False)


@hbench.benchmark("overhead_inline_short_circuit", group="overhead", number=50)
def _inline_short_circuit():
    """Thread-context awareness: a member thread pays no queue round trip."""
    rt = _worker_runtime()

    def member_dispatch():
        return rt.invoke_target_block(
            "worker",
            lambda: rt.invoke_target_block("worker", lambda: 42).result(),
        ).result()

    return member_dispatch, lambda: rt.shutdown(wait=False)


def _run_registered(benchmark, name: str, expect=None):
    op, cleanup = hbench.get(name).build()
    try:
        if expect is not None:
            assert op() == expect
        benchmark(op)
    finally:
        cleanup()


def test_overhead_pyjama_dispatch(benchmark):
    _run_registered(benchmark, "overhead_pyjama_dispatch", expect=42)


def test_overhead_manual_executor(benchmark):
    _run_registered(benchmark, "overhead_manual_executor", expect=42)


def test_overhead_compiled_pragma(benchmark):
    _run_registered(benchmark, "overhead_compiled_pragma", expect=42)


def test_overhead_inline_short_circuit(benchmark):
    _run_registered(benchmark, "overhead_inline_short_circuit", expect=42)
