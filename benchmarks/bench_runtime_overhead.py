"""Directive-runtime overhead vs hand-written executor code (§III/IV claim).

The paper argues the directive approach costs no more than the manual
ExecutorService pattern it replaces.  Here we measure, on real threads:

* dispatch+join through ``invoke_target_block`` (Algorithm 1), vs
* dispatch+join through the plain ExecutorService baseline, vs
* the compiled-pragma path (``@omp`` output calling the same runtime).

The three should be within the same order of magnitude; Algorithm 1 adds a
registry lookup and a context check on top of the queue hand-off.
"""

from __future__ import annotations

import pytest

from repro.compiler import exec_omp
from repro.core import PjRuntime
from repro.eventloop import ExecutorService


@pytest.fixture()
def rt():
    runtime = PjRuntime()
    runtime.create_worker("worker", 2)
    yield runtime
    runtime.shutdown(wait=False)


@pytest.fixture()
def pool():
    p = ExecutorService(2, name="manual")
    yield p
    p.shutdown_now()


def test_overhead_pyjama_dispatch(benchmark, rt):
    benchmark(lambda: rt.invoke_target_block("worker", lambda: 42).result())


def test_overhead_manual_executor(benchmark, pool):
    benchmark(lambda: pool.submit(lambda: 42).get())


def test_overhead_compiled_pragma(benchmark, rt):
    ns = exec_omp(
        "def f():\n"
        "    #omp target virtual(worker)\n"
        "    x = 42\n"
        "    return x\n",
        runtime=rt,
    )
    f = ns["f"]
    assert f() == 42
    benchmark(f)


def test_overhead_inline_short_circuit(benchmark, rt):
    """Thread-context awareness: a member thread pays no queue round trip."""

    def member_dispatch():
        return rt.invoke_target_block(
            "worker",
            lambda: rt.invoke_target_block("worker", lambda: 42).result(),
        ).result()

    benchmark(member_dispatch)
