"""Ablation — thread-context-aware inlining (Algorithm 1, lines 6-7).

When the encountering thread already belongs to the named virtual target,
Algorithm 1 runs the block synchronously instead of posting it.  This
ablation measures the cost of disabling that rule: every member-thread
dispatch pays a queue round trip (and, on a single-member EDT, would even
deadlock for waiting modes — which is why the rule exists).

Both variants are registered with :mod:`repro.bench`
(``python -m repro bench --filter ablation_inline``); the pytest entry
points wrap the same registrations.
"""

from __future__ import annotations

from repro import bench as hbench
from repro.core import PjRuntime, TargetRegion

DEPTH = 8


def _worker_runtime() -> PjRuntime:
    rt = PjRuntime()
    rt.create_worker("worker", 2)
    return rt


def _nested_dispatch_inline(rt: PjRuntime, depth: int) -> int:
    """Member thread re-dispatches to its own target `depth` times; the
    context-awareness rule makes every level inline."""

    def level(d: int):
        if d == 0:
            return 0
        return rt.invoke_target_block("worker", lambda: level(d - 1)).result() + 1

    return rt.invoke_target_block("worker", lambda: level(depth)).result()


def _nested_dispatch_posted(rt: PjRuntime, depth: int) -> int:
    """The ablated variant: force a queue round trip per level by posting
    regions directly (bypassing the contains() check)."""

    target = rt.get_target("worker")

    def level(d: int):
        if d == 0:
            return 0
        region = TargetRegion(lambda: level(d - 1))
        target.post(region)
        return region.result(timeout=10) + 1

    region = TargetRegion(lambda: level(depth))
    target.post(region)
    return region.result(timeout=10)


@hbench.benchmark("ablation_inline_enabled", group="ablation", number=10)
def _inline_enabled():
    """Nested member-thread dispatch with the inlining rule active."""
    rt = _worker_runtime()
    return (
        lambda: _nested_dispatch_inline(rt, DEPTH),
        lambda: rt.shutdown(wait=False),
    )


@hbench.benchmark("ablation_inline_disabled", group="ablation", number=10)
def _inline_disabled():
    """The ablated variant: every nesting level pays a queue round trip.

    Needs a pool wider than the nesting depth to avoid self-deadlock —
    itself a demonstration of why Algorithm 1 inlines.
    """
    rt = PjRuntime()
    rt.create_worker("worker", DEPTH + 2)
    return (
        lambda: _nested_dispatch_posted(rt, DEPTH),
        lambda: rt.shutdown(wait=False),
    )


def _run_registered(benchmark, name: str):
    op, cleanup = hbench.get(name).build()
    try:
        assert op() == DEPTH
        benchmark(op)
    finally:
        cleanup()


def test_ablation_inline_enabled(benchmark):
    _run_registered(benchmark, "ablation_inline_enabled")


def test_ablation_inline_disabled(benchmark):
    _run_registered(benchmark, "ablation_inline_disabled")


def test_ablation_inline_prevents_deadlock():
    """With a 1-thread pool, nested waiting dispatch only works because of
    the inline rule; the posted variant would starve."""
    rt = PjRuntime()
    rt.create_worker("worker", 1)
    try:
        def nested():
            return rt.invoke_target_block("worker", lambda: "inner").result()

        handle = rt.invoke_target_block("worker", nested, "nowait")
        assert handle.result(timeout=5) == "inner"
    finally:
        rt.shutdown(wait=False)
