"""Micro-benchmarks — OpenMP tasks vs virtual-target dispatch.

The paper's motivating contrast (§I): OpenMP tasks are confined to parallel
regions, while target blocks dispatch from anywhere.  These benchmarks
quantify both mechanisms' overheads on real threads:

* orphaned task (sequential inline execution — what confinement degrades to),
* deferred task spawn+taskwait inside a team,
* a virtual-target nowait dispatch for comparison.
"""

from __future__ import annotations

import pytest

import repro.openmp as omp
from repro.core import PjRuntime


@pytest.fixture()
def rt():
    runtime = PjRuntime()
    runtime.create_worker("worker", 2)
    yield runtime
    runtime.shutdown(wait=False)


def test_task_orphaned_inline(benchmark):
    benchmark(lambda: omp.task(lambda: 1).result())


def test_task_deferred_spawn_and_taskwait(benchmark):
    def region():
        def body():
            def spawn():
                for _ in range(8):
                    omp.task(lambda: 1)

            omp.single(spawn, nowait=True)
            omp.taskwait()

        omp.parallel(body, num_threads=2)

    benchmark(region)


def test_target_nowait_dispatch_for_comparison(benchmark, rt):
    def dispatch_batch():
        handles = [
            rt.invoke_target_block("worker", lambda: 1, "nowait") for _ in range(8)
        ]
        for h in handles:
            h.wait(5)

    benchmark(dispatch_batch)


def test_region_fork_join_overhead(benchmark):
    """The cost the EDT would pay per sync-parallel event (paper §V-A)."""
    benchmark(lambda: omp.parallel(lambda: None, num_threads=4))
