"""Micro-benchmarks — OpenMP tasks vs virtual-target dispatch.

The paper's motivating contrast (§I): OpenMP tasks are confined to parallel
regions, while target blocks dispatch from anywhere.  These benchmarks
quantify both mechanisms' overheads on real threads:

* orphaned task (sequential inline execution — what confinement degrades to),
* deferred task spawn+taskwait inside a team,
* a virtual-target nowait dispatch for comparison.

All four measurements are registered with :mod:`repro.bench`
(``python -m repro bench --filter tasking``); the pytest entry points wrap
the same registrations.
"""

from __future__ import annotations

import repro.openmp as omp
from repro import bench as hbench
from repro.core import PjRuntime


@hbench.benchmark("task_orphaned_inline", group="tasking", number=200)
def _task_orphaned():
    """Orphaned task outside any parallel region: runs inline, sequentially."""
    return lambda: omp.task(lambda: 1).result()


@hbench.benchmark("task_deferred_taskwait", group="tasking", number=5)
def _task_deferred():
    """8 deferred tasks spawned via single-nowait inside a 2-thread team,
    then a taskwait barrier."""

    def region():
        def body():
            def spawn():
                for _ in range(8):
                    omp.task(lambda: 1)

            omp.single(spawn, nowait=True)
            omp.taskwait()

        omp.parallel(body, num_threads=2)

    return region


@hbench.benchmark("target_nowait_batch", group="tasking", number=10)
def _target_nowait_batch():
    """The virtual-target counterpart: 8 nowait dispatches then a join."""
    rt = PjRuntime()
    rt.create_worker("worker", 2)

    def dispatch_batch():
        handles = [
            rt.invoke_target_block("worker", lambda: 1, "nowait") for _ in range(8)
        ]
        for h in handles:
            h.wait(5)

    return dispatch_batch, lambda: rt.shutdown(wait=False)


@hbench.benchmark("parallel_fork_join", group="tasking", number=5)
def _parallel_fork_join():
    """The cost the EDT would pay per sync-parallel event (paper §V-A)."""
    return lambda: omp.parallel(lambda: None, num_threads=4)


def _run_registered(benchmark, name: str):
    op, cleanup = hbench.get(name).build()
    try:
        benchmark(op)
    finally:
        cleanup()


def test_task_orphaned_inline(benchmark):
    _run_registered(benchmark, "task_orphaned_inline")


def test_task_deferred_spawn_and_taskwait(benchmark):
    _run_registered(benchmark, "task_deferred_taskwait")


def test_target_nowait_dispatch_for_comparison(benchmark):
    _run_registered(benchmark, "target_nowait_batch")


def test_region_fork_join_overhead(benchmark):
    _run_registered(benchmark, "parallel_fork_join")
