"""Live serving benchmark — the measured counterpart of the Fig. 9 simulation.

Stands up the real :mod:`repro.serve` HTTP server (asyncio accept loop as
the EDT target, crypt-kernel handlers dispatched to a thread- or
process-backed CPU target) in a background thread, then drives it closed-
loop over real sockets from this thread's own event loop.  Reported
numbers are *this host's*: they measure the runtime's dispatch path plus a
real TCP round trip, and are **not comparable** to the simulated 16-core
figures in ``bench_fig9_http_throughput.py``.

No baseline gate: live throughput depends on the host's core count and
load, so CI archives the JSON (``python -m repro serve --bench``) without a
``--max-regress`` comparison until enough history exists to set one.
"""

from __future__ import annotations

import asyncio
import threading

from repro import bench as hbench
from repro.serve import HttpServer, ServeConfig, run_closed_loop

HOST = "127.0.0.1"


class _BackgroundServer:
    """An HttpServer running its own asyncio loop in a daemon thread."""

    def __init__(self, backend: str, **cfg_kwargs):
        self.config = ServeConfig(
            backend=backend, port=0, workers=4, queue_capacity=256,
            policy="reject", **cfg_kwargs,
        )
        self.port: int | None = None
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()),
            name=f"serve-bench-{backend}", daemon=True,
        )

    async def _main(self) -> None:
        server = HttpServer(self.config)
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await server.start()
        self.port = server.port
        self._started.set()
        await self._stop.wait()
        await server.stop()

    def start(self) -> "_BackgroundServer":
        self._thread.start()
        if not self._started.wait(timeout=60.0):
            raise RuntimeError("background server failed to start")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=60.0)


def burst(port: int, requests: int = 400, concurrency: int = 16):
    """One closed-loop burst from a fresh client loop over real sockets."""
    return asyncio.run(run_closed_loop(
        HOST, port, requests=requests, concurrency=concurrency,
        payload_bytes=64,
    ))


def test_serve_live_roundtrip(benchmark, report):
    server = _BackgroundServer("thread").start()
    try:
        result = benchmark.pedantic(
            lambda: burst(server.port, requests=1000, concurrency=32),
            rounds=1, iterations=1,
        )
    finally:
        server.stop()

    lines = [
        "Live serving [measured on this host — not comparable to the "
        "simulated Figure 9]:",
        f"backend=thread workers=4 policy=reject, closed loop "
        f"(1000 requests, 32 connections, 64-byte /encrypt)",
        f"    responses : {result.requests} "
        f"({result.ok} ok, {result.errors} transport errors)",
        f"    throughput: {result.throughput_rps:,.0f} req/s",
    ]
    if result.latencies_s:
        lat = result.summary()["latency_ms"]
        lines.append(
            f"    latency   : p50 {lat['p50']:.2f} ms, "
            f"p99 {lat['p99']:.2f} ms, max {lat['max']:.2f} ms"
        )
    report("serve_live", lines)

    assert result.requests == 1000
    assert result.ok == 1000, result.statuses
    assert result.errors == 0
    assert result.throughput_rps > 0


def _register(backend: str) -> None:
    @hbench.benchmark(
        f"serve_live_{backend}", group="serve", slow=True,
        description=f"closed-loop HTTP burst against the live {backend}-"
                    "backend Fig. 9 server (400 requests, 16 connections)",
    )
    def _setup():
        server = _BackgroundServer(backend).start()
        return (lambda: burst(server.port)), server.stop


for _backend in ("thread", "process"):
    _register(_backend)
