"""Process-backed vs thread-backed targets on real kernels.

The dividend the dist layer exists to pay: a CPU-bound kernel split across a
*process* pool escapes the GIL, while the same split across a *thread* pool
serializes on it (numpy sections release the GIL, pure-Python bookkeeping
does not).  This benchmark runs montecarlo and SOR chunks through identical
directive-level code against both backends at pool sizes 1/2/4 and archives
the timings as machine-readable JSON
(``benchmarks/results/process_vs_thread.json``) for EXPERIMENTS.md.

Honesty note: the speedup assertion is gated on the host actually having
more than one usable core.  On a single-core container the process pool
cannot beat the one-thread baseline no matter how well the runtime works —
the JSON records ``host.usable_cores`` so a reader can tell the two apart.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pathlib
import time

import pytest

from repro import bench as hbench
from repro.core import PjRuntime
from repro.core.region import TargetRegion
from repro.dist.wire import HAVE_CLOUDPICKLE
from repro.kernels.montecarlo import MonteCarloConfig, simulate_paths
from repro.kernels.sor import run as sor_run

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Work is always split into this many chunks, whatever the pool size —
#: the split is the directive-level constant, the pool is the resource knob.
N_CHUNKS = 4
POOL_SIZES = (1, 2, 4)

_MC_CFG = MonteCarloConfig(n_paths=600, n_steps=400)
_SOR_N = 120
_SOR_ITERS = 60


def mc_chunk(chunk_index: int) -> float:
    """One quarter of the montecarlo path sweep (module-level: picklable)."""
    count = _MC_CFG.n_paths // N_CHUNKS
    result = simulate_paths(_MC_CFG, chunk_index * count, count)
    return result.mean_final_price


def sor_chunk(chunk_index: int) -> float:
    """One independent SOR relaxation (distinct seed per chunk)."""
    grid = sor_run(_SOR_N, iterations=_SOR_ITERS, seed=20160816 + chunk_index)
    return float(grid.sum())


KERNELS = {"montecarlo": mc_chunk, "sor": sor_chunk}


def usable_cores() -> int:
    """Cores this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _time_backend(backend: str, pool: int, chunk_fn) -> float:
    rt = PjRuntime()
    try:
        if backend == "process":
            rt.create_process_worker("bench", pool)
        else:
            rt.create_worker("bench", pool)
        # Warmup: absorbs worker-process spawn + import cost so the timing
        # measures steady-state execution, the regime that matters.  Wait
        # for the whole pool to come up, not just one lane.
        if backend == "process":
            target = rt.get_target("bench")
            deadline = time.monotonic() + 120.0
            while (
                any(pid is None for pid in target.worker_pids)
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
        # One warmup chunk per lane: every worker pays its first-use costs
        # (kernel module import, allocator warm-up) outside the timed window.
        warmups = [
            rt.invoke_target_block("bench", TargetRegion(chunk_fn, 0), "nowait")
            for _ in range(pool)
        ]
        for handle in warmups:
            handle.result(timeout=300)
        start = time.perf_counter()
        handles = [
            rt.invoke_target_block("bench", TargetRegion(chunk_fn, i), "nowait")
            for i in range(N_CHUNKS)
        ]
        for handle in handles:
            handle.result(timeout=300)
        return time.perf_counter() - start
    finally:
        rt.shutdown(wait=False)


@hbench.benchmark("process_vs_thread_montecarlo", group="dist", slow=True)
def _process_vs_thread_registered():
    """Montecarlo chunks: 1-thread pool vs 2-process pool (pool spawn and
    warmup happen inside the timed op; see the pytest entry point for the
    full sweep with per-backend warmup separation)."""
    return lambda: {
        "thread_pool1_s": _time_backend("thread", 1, mc_chunk),
        "process_pool2_s": _time_backend("process", 2, mc_chunk),
    }


def test_process_vs_thread_kernels(report):
    cores = usable_cores()
    runs = []
    lines = [f"{'kernel':<12} {'backend':<8} {'pool':>4} {'seconds':>9} {'vs thread@1':>11}"]
    for kernel, chunk_fn in KERNELS.items():
        baseline = None
        for backend in ("thread", "process"):
            for pool in POOL_SIZES:
                seconds = _time_backend(backend, pool, chunk_fn)
                if backend == "thread" and pool == 1:
                    baseline = seconds
                speedup = baseline / seconds if baseline else None
                runs.append({
                    "kernel": kernel, "backend": backend, "pool": pool,
                    "chunks": N_CHUNKS, "seconds": round(seconds, 4),
                    "speedup_vs_thread1": round(speedup, 3) if speedup else None,
                })
                lines.append(
                    f"{kernel:<12} {backend:<8} {pool:>4} {seconds:>9.3f} "
                    f"{(f'{speedup:.2f}x' if speedup else '--'):>11}"
                )
    doc = {
        "benchmark": "process_vs_thread",
        "host": {
            "cpu_count": os.cpu_count(),
            "usable_cores": cores,
            "start_method_default": "spawn",
            "available_start_methods": multiprocessing.get_all_start_methods(),
            "cloudpickle": HAVE_CLOUDPICKLE,
        },
        "workload": {
            "chunks": N_CHUNKS,
            "montecarlo": {"n_paths": _MC_CFG.n_paths, "n_steps": _MC_CFG.n_steps},
            "sor": {"n": _SOR_N, "iterations": _SOR_ITERS},
        },
        "runs": runs,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "process_vs_thread.json").write_text(
        json.dumps(doc, indent=2) + "\n"
    )
    lines.append(f"host: cpu_count={os.cpu_count()} usable_cores={cores}")
    report("process_vs_thread", lines)

    if cores >= 2:
        # With real parallelism available, the process pool must beat the
        # single-thread baseline on the CPU-bound kernel.
        for kernel in KERNELS:
            thread1 = next(
                r["seconds"] for r in runs
                if r["kernel"] == kernel and r["backend"] == "thread" and r["pool"] == 1
            )
            best_proc = min(
                r["seconds"] for r in runs
                if r["kernel"] == kernel and r["backend"] == "process"
            )
            assert best_proc < thread1, (
                f"{kernel}: process pool ({best_proc:.3f}s) failed to beat "
                f"the 1-thread baseline ({thread1:.3f}s) on a {cores}-core host"
            )
    else:
        pytest.skip(
            f"speedup assertion needs >= 2 usable cores, host has {cores} "
            "(timings recorded in process_vs_thread.json regardless)"
        )
