"""Java Grande kernel timings on this host (real computation, size A).

Not a paper figure by itself — these timings ground the simulator's cost
models (see ``repro.sim.costmodel.calibrate_from_host``) and document what
one event handler costs in our Python ports.
"""

from __future__ import annotations

import pytest

from repro.bench import Benchmark, register
from repro.kernels import KERNELS, get_kernel


def _kernel_setup(name: str):
    def setup():
        spec = get_kernel(name)
        size = spec.sizes["A"]
        return lambda: spec.run_sequential(size)

    return setup


# Real computation, so these run only with --slow (or by exact name).
for _name in sorted(KERNELS):
    register(
        Benchmark(
            name=f"kernel_{_name}",
            setup=_kernel_setup(_name),
            group="kernels",
            number=1,
            slow=True,
            description=f"Java Grande {_name} size A, sequential",
        )
    )


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_sequential_size_a(benchmark, name):
    spec = get_kernel(name)
    size = spec.sizes["A"]
    benchmark(spec.run_sequential, size)


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_single_chunk_of_four(benchmark, name):
    """One quarter of the kernel — the per-thread share of a 4-way team."""
    spec = get_kernel(name)
    size = spec.sizes["A"]
    benchmark(spec.run_chunk, size, 0, 4)
