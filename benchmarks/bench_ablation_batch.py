"""Ablation — the adaptive runtime policies (docs/TUNING.md evidence).

Two sweeps over the real runtime (no simulator), measuring a burst of
fire-and-forget regions through worker targets:

* **dequeue batching** — the same 1-lane worker draining a 200-region
  no-op burst with ``batch_max`` 1 / 4 / 16.  Every item pays an ENQUEUE;
  batching amortizes the queue lock and condition-variable hand-off across
  up to ``batch_max`` dequeues, so the per-item overhead is what moves.
* **work stealing** — a 40-region burst of 1 ms sleep bodies posted to one
  1-lane worker while an idle 1-lane sibling sits in the same runtime.
  With ``REPRO_STEAL`` off the sibling is dead weight; with it on, the
  sibling's idle poll (10 ms) turns into steals and the two lanes overlap
  their sleeps — the burst finishes in roughly half the wall time even on
  a single core, because sleeping releases the GIL.

Each case is a registered harness entry (group ``policy``), so
``python -m repro bench --filter ablation`` (or ``--filter policy``)
measures them under the shared protocol, and CI gates the no-regression
claim with ``--compare`` against
``benchmarks/results/bench_policy_ablation_baseline.json``.  The pytest
entry point regenerates the archived table + JSON under
``benchmarks/results/``; the summary table lives in docs/TUNING.md.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro import bench as hbench
from repro.core import PjRuntime

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BATCH_BURST = 200          # no-op regions per timed batching sample
STEAL_BURST = 40           # sleeping regions per timed stealing sample
STEAL_SLEEP_S = 0.001


def _nop() -> None:
    return None


def _nap() -> None:
    time.sleep(STEAL_SLEEP_S)


def _burst(rt: PjRuntime, target: str, body, n: int) -> None:
    handles = [rt.invoke_target_block(target, body, "nowait") for _ in range(n)]
    for h in handles:
        if not h.wait(timeout=30.0):
            raise TimeoutError(f"burst region never resolved on {target!r}")


def _batch_case(batch_max: int):
    """A 1-lane worker draining the no-op burst at the given batch bound."""
    rt = PjRuntime()
    rt.create_worker("w", 1, batch_max=batch_max)
    _burst(rt, "w", _nop, BATCH_BURST)  # warm the lane + allocator
    op = lambda: _burst(rt, "w", _nop, BATCH_BURST)  # noqa: E731
    return op, lambda: rt.shutdown(wait=False)


@hbench.benchmark(
    "ablation_batch_b1", group="policy", tags=("ablation", "batch"),
    description=f"{BATCH_BURST}-region no-op burst, batch_max=1 (the default)",
)
def _ablation_batch_b1():
    return _batch_case(1)


@hbench.benchmark(
    "ablation_batch_b4", group="policy", tags=("ablation", "batch"),
    description=f"{BATCH_BURST}-region no-op burst, batch_max=4",
)
def _ablation_batch_b4():
    return _batch_case(4)


@hbench.benchmark(
    "ablation_batch_b16", group="policy", tags=("ablation", "batch"),
    description=f"{BATCH_BURST}-region no-op burst, batch_max=16",
)
def _ablation_batch_b16():
    return _batch_case(16)


def _steal_case(steal: bool):
    """Burst to a 1-lane worker with an idle 1-lane sibling (thief or not)."""
    rt = PjRuntime()
    rt.create_worker("prime", 1, steal=steal)
    rt.create_worker("wing", 1, steal=steal)
    _burst(rt, "prime", _nap, 4)  # warm both pools
    op = lambda: _burst(rt, "prime", _nap, STEAL_BURST)  # noqa: E731
    return op, lambda: rt.shutdown(wait=False)


@hbench.benchmark(
    "ablation_steal_off", group="policy", tags=("ablation", "steal"),
    description=f"{STEAL_BURST}x{STEAL_SLEEP_S * 1000:.0f}ms burst, idle sibling, stealing off",
)
def _ablation_steal_off():
    return _steal_case(False)


@hbench.benchmark(
    "ablation_steal_on", group="policy", tags=("ablation", "steal"),
    description=f"{STEAL_BURST}x{STEAL_SLEEP_S * 1000:.0f}ms burst, idle sibling, stealing on",
)
def _ablation_steal_on():
    return _steal_case(True)


_ENTRIES = (
    "ablation_batch_b1",
    "ablation_batch_b4",
    "ablation_batch_b16",
    "ablation_steal_off",
    "ablation_steal_on",
)


def test_ablation_policies(report):
    """Regenerate the archived policy-ablation table and JSON document."""
    protocol = hbench.Protocol(warmup=1, repeats=8, trim=0.125)
    results = [hbench.run_benchmark(hbench.get(n), protocol) for n in _ENTRIES]
    by_name = {r.name: r for r in results}

    header = f"{'case':<20} {'p50 (ms/burst)':>15} {'p95 (ms/burst)':>15} {'vs default':>11}"
    lines = [
        "Ablation: adaptive runtime policies (real runtime, see docs/TUNING.md)",
        f"batching: {BATCH_BURST} no-op regions, 1 lane; "
        f"stealing: {STEAL_BURST}x{STEAL_SLEEP_S * 1000:.0f}ms sleeps, 1+1 lanes",
        header,
        "-" * len(header),
    ]
    base = {"batch": by_name["ablation_batch_b1"], "steal": by_name["ablation_steal_off"]}
    for r in results:
        ref = base["batch" if "batch" in r.name else "steal"]
        lines.append(
            f"{r.name:<20} {r.p50_ns / 1e6:>15.2f} {r.p95_ns / 1e6:>15.2f} "
            f"{ref.p50_ns / r.p50_ns:>10.2f}x"
        )

    doc = hbench.results_document(results, protocol)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_policy_ablation.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    report("ablation_policies", lines)

    # Sanity floor, not a perf gate: with sleeping bodies even one stolen
    # region overlaps wall time, so stealing must beat the idle sibling.
    off = by_name["ablation_steal_off"].p50_ns
    on = by_name["ablation_steal_on"].p50_ns
    assert on < off, (
        f"stealing burst p50 {on / 1e6:.2f}ms did not beat "
        f"steal-off p50 {off / 1e6:.2f}ms"
    )
