"""Table I — the scheduling clauses, measured on the real-thread runtime.

Table I defines the four scheduling-property clauses semantically; this
benchmark quantifies what each costs on the real-thread runtime:

* how long the encountering thread is held at the directive, and
* the full completion latency of a trivial target block,

for default / nowait / name_as(+wait) / await.  The fire-and-forget modes
must hold the encountering thread for microseconds; the waiting modes pay a
queue round-trip.

The four mode costs are registered with :mod:`repro.bench`
(``python -m repro bench --filter table1``); the pytest entry points wrap
the same registrations.
"""

from __future__ import annotations

import time

import pytest

from repro import bench as hbench
from repro.core import PjRuntime


def _worker_runtime() -> PjRuntime:
    rt = PjRuntime()
    rt.create_worker("worker", 2)
    return rt


@pytest.fixture()
def rt():
    runtime = _worker_runtime()
    yield runtime
    runtime.shutdown(wait=False)


@hbench.benchmark("table1_default", group="table1", number=50)
def _table1_default():
    """Default clause: encountering thread blocks until the block completes."""
    rt = _worker_runtime()
    op = lambda: rt.invoke_target_block("worker", lambda: None, "default")
    return op, lambda: rt.shutdown(wait=False)


@hbench.benchmark("table1_nowait", group="table1", number=200)
def _table1_nowait():
    """Nowait clause: only the encountering thread's hold time; completion
    is asynchronous by design."""
    rt = _worker_runtime()
    op = lambda: rt.invoke_target_block("worker", lambda: None, "nowait")
    return op, lambda: rt.shutdown(wait=False)


@hbench.benchmark("table1_name_as_wait", group="table1", number=50)
def _table1_name_as_wait():
    """name_as tag registration plus an explicit wait_tag barrier."""
    rt = _worker_runtime()

    def cycle():
        rt.invoke_target_block("worker", lambda: None, "name_as", tag="t1bench")
        rt.wait_tag("t1bench")

    return cycle, lambda: rt.shutdown(wait=False)


@hbench.benchmark("table1_await", group="table1", number=50)
def _table1_await():
    """Await from a non-member thread degrades to a blocking wait (documented
    in Algorithm 1's implementation); measures the full round trip."""
    rt = _worker_runtime()
    op = lambda: rt.invoke_target_block("worker", lambda: None, "await")
    return op, lambda: rt.shutdown(wait=False)


def _run_registered(benchmark, name: str):
    op, cleanup = hbench.get(name).build()
    try:
        benchmark(op)
    finally:
        cleanup()


def test_table1_default_mode_cost(benchmark):
    _run_registered(benchmark, "table1_default")


def test_table1_nowait_mode_cost(benchmark):
    _run_registered(benchmark, "table1_nowait")


def test_table1_name_as_plus_wait_cost(benchmark):
    _run_registered(benchmark, "table1_name_as_wait")


def test_table1_await_mode_cost(benchmark):
    _run_registered(benchmark, "table1_await")


def test_table1_fire_and_forget_returns_fast(rt, report):
    """The nowait clause must hold the caller far shorter than the block's
    execution: the defining property of rows 2-3 of Table I."""
    block_time = 0.030
    t0 = time.perf_counter()
    handle = rt.invoke_target_block(
        "worker", lambda: time.sleep(block_time), "nowait"
    )
    held = time.perf_counter() - t0
    handle.wait(timeout=5)
    report(
        "table1_nowait_hold_time",
        [
            "Table I: encountering-thread hold time for a 30ms block",
            f"nowait hold: {held * 1e6:.0f} µs (block itself: {block_time * 1e3:.0f} ms)",
        ],
    )
    assert held < block_time / 10
