"""Table I — the scheduling clauses, measured on the real-thread runtime.

Table I defines the four scheduling-property clauses semantically; this
benchmark quantifies what each costs on the real-thread runtime:

* how long the encountering thread is held at the directive, and
* the full completion latency of a trivial target block,

for default / nowait / name_as(+wait) / await.  The fire-and-forget modes
must hold the encountering thread for microseconds; the waiting modes pay a
queue round-trip.
"""

from __future__ import annotations

import time

import pytest

from repro.core import PjRuntime


@pytest.fixture()
def rt():
    runtime = PjRuntime()
    runtime.create_worker("worker", 2)
    yield runtime
    runtime.shutdown(wait=False)


def test_table1_default_mode_cost(benchmark, rt):
    benchmark(lambda: rt.invoke_target_block("worker", lambda: None, "default"))


def test_table1_nowait_mode_cost(benchmark, rt):
    # Measures only the encountering thread's hold time; completion is
    # asynchronous by design.
    benchmark(lambda: rt.invoke_target_block("worker", lambda: None, "nowait"))


def test_table1_name_as_plus_wait_cost(benchmark, rt):
    def cycle():
        rt.invoke_target_block("worker", lambda: None, "name_as", tag="t1bench")
        rt.wait_tag("t1bench")

    benchmark(cycle)


def test_table1_await_mode_cost(benchmark, rt):
    # From a non-member thread await degrades to a blocking wait (documented
    # in Algorithm 1's implementation); measures the full round trip.
    benchmark(lambda: rt.invoke_target_block("worker", lambda: None, "await"))


def test_table1_fire_and_forget_returns_fast(rt, report):
    """The nowait clause must hold the caller far shorter than the block's
    execution: the defining property of rows 2-3 of Table I."""
    block_time = 0.030
    t0 = time.perf_counter()
    handle = rt.invoke_target_block(
        "worker", lambda: time.sleep(block_time), "nowait"
    )
    held = time.perf_counter() - t0
    handle.wait(timeout=5)
    report(
        "table1_nowait_hold_time",
        [
            "Table I: encountering-thread hold time for a 30ms block",
            f"nowait hold: {held * 1e6:.0f} µs (block itself: {block_time * 1e3:.0f} ms)",
        ],
    )
    assert held < block_time / 10
