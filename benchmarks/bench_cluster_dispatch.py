"""Cluster dispatch: loopback-TCP latency and shard-scaling throughput.

What the socket hop costs, measured against the backends it generalizes:
the same no-op/sleep regions dispatched to a thread pool (one GIL, no
serialization), a process pool (pipes + pickle), and a cluster target
(TCP frames + pickle to a separate agent process on loopback).  Two views:

* **dispatch latency** — a ``default``-mode (await) round trip per backend;
  the cluster row is the paper-model dispatch cost plus one pickle and two
  localhost socket hops;
* **shard scaling** — wall time for a batch of 10 ms sleep regions as the
  cluster target widens from 1 to 4 lanes over two agents; sleeps release
  everything, so scaling here isolates the *protocol's* concurrency (lanes
  ship and await independently) from kernel compute.

Results are archived as ``benchmarks/results/bench_cluster_dispatch.json``
(plus the paper-style text table); the registered ``cluster_dispatch_tcp``
benchmark feeds ``python -m repro bench --filter cluster`` so CI can gate
regressions with ``--compare`` against
``benchmarks/results/bench_cluster_dispatch_baseline.json``.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro import bench as hbench
from repro.cluster import spawn_agent_process
from repro.core import PjRuntime
from repro.core.region import TargetRegion

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_SLEEP_S = 0.01
_BATCH = 12
SHARD_POINTS = (1, 2)  # lanes per endpoint over two agents -> 2 and 4 lanes


def _nop() -> int:
    """Module-level (picklable) no-op body for latency probes."""
    return 0


def _nap() -> float:
    """Module-level (picklable) fixed sleep for throughput probes."""
    time.sleep(_SLEEP_S)
    return _SLEEP_S


def _await_roundtrip(rt: PjRuntime, name: str) -> None:
    rt.invoke_target_block(name, TargetRegion(_nop))


@hbench.benchmark(
    "cluster_dispatch_tcp", group="cluster", slow=True,
    tags=("cluster", "dist"),
)
def _cluster_dispatch_registered():
    """Await-mode round trip to a single-lane cluster target over loopback
    TCP (agent spawn + connect happen in setup, outside the timed window)."""
    agent = spawn_agent_process()
    rt = PjRuntime()
    rt.create_cluster("bench-cluster", [agent.endpoint])
    _await_roundtrip(rt, "bench-cluster")  # connect + first-use costs

    def cleanup() -> None:
        rt.shutdown(wait=False)
        agent.close()

    return (lambda: _await_roundtrip(rt, "bench-cluster")), cleanup


def _latency_ns(rt: PjRuntime, name: str, repeats: int = 30) -> list[float]:
    _await_roundtrip(rt, name)  # warm the lane
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter_ns()
        _await_roundtrip(rt, name)
        samples.append(float(time.perf_counter_ns() - t0))
    return samples


def _batch_seconds(rt: PjRuntime, name: str) -> float:
    start = time.perf_counter()
    handles = [
        rt.invoke_target_block(name, TargetRegion(_nap), "nowait")
        for _ in range(_BATCH)
    ]
    for h in handles:
        h.result(timeout=120.0)
    return time.perf_counter() - start


def test_cluster_dispatch(report):
    agents = [spawn_agent_process(), spawn_agent_process()]
    endpoints = [a.endpoint for a in agents]
    runs: list[dict] = []
    lines = [f"{'case':<28} {'p50 ms':>8} {'batch s':>8} {'note':>24}"]
    entries: dict[str, dict] = {}
    try:
        # ---- dispatch latency per backend (await round trip)
        for backend in ("thread", "process", "cluster"):
            rt = PjRuntime()
            try:
                if backend == "thread":
                    rt.create_worker("lat", 1)
                elif backend == "process":
                    rt.create_process_worker("lat", 1)
                else:
                    rt.create_cluster("lat", endpoints[:1])
                samples = _latency_ns(rt, "lat")
                p50 = hbench.percentile(samples, 50.0)
                runs.append({
                    "case": f"latency_{backend}",
                    "p50_ns": round(p50, 1),
                    "samples": len(samples),
                })
                entries[f"cluster_suite_latency_{backend}"] = {
                    "group": "cluster",
                    "number": 1,
                    "repeats": len(samples),
                    "trimmed": 0,
                    "samples_ns": [round(s, 1) for s in samples],
                    "min_ns": round(min(samples), 1),
                    "mean_ns": round(sum(samples) / len(samples), 1),
                    "p50_ns": round(p50, 1),
                    "p95_ns": round(hbench.percentile(samples, 95.0), 1),
                    "max_ns": round(max(samples), 1),
                }
                lines.append(
                    f"{'latency ' + backend:<28} {p50 / 1e6:>8.3f} {'--':>8} "
                    f"{'await round trip':>24}"
                )
            finally:
                rt.shutdown(wait=False)

        # ---- shard scaling: 2 endpoints, widening lanes
        base_s = None
        for shards in SHARD_POINTS:
            rt = PjRuntime()
            try:
                rt.create_cluster("wide", endpoints, shards=shards)
                # Warm every lane before timing.
                warm = [
                    rt.invoke_target_block("wide", TargetRegion(_nop), "nowait")
                    for _ in range(len(endpoints) * shards)
                ]
                for h in warm:
                    h.result(timeout=120.0)
                seconds = _batch_seconds(rt, "wide")
                lanes = len(endpoints) * shards
                if base_s is None:
                    base_s = seconds
                runs.append({
                    "case": f"shards_{shards}x{len(endpoints)}",
                    "lanes": lanes,
                    "batch": _BATCH,
                    "sleep_s": _SLEEP_S,
                    "seconds": round(seconds, 4),
                    "speedup_vs_min_lanes": round(base_s / seconds, 3),
                })
                lines.append(
                    f"{f'shards {shards}x{len(endpoints)} ({lanes} lanes)':<28} "
                    f"{'--':>8} {seconds:>8.3f} "
                    f"{f'{base_s / seconds:.2f}x vs {len(endpoints)} lanes':>24}"
                )
            finally:
                rt.shutdown(wait=False)
    finally:
        for a in agents:
            a.close()

    doc = {
        "schema": "repro.bench/v1",
        "created": None,  # stamped by CI artifacts, not the run
        "env": hbench.environment_fingerprint(),
        "protocol": {"warmup": 1, "repeats": 30, "trim": 0.0},
        "benchmarks": entries,
        "cluster": {"runs": runs, "endpoints": len(endpoints)},
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "bench_cluster_dispatch.json").write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n"
    )
    report("bench_cluster_dispatch", lines)

    # Sanity floor, not a performance gate: the batch must beat serial
    # execution (lanes overlap their sleeps), and latency must be sane.
    serial_s = _BATCH * _SLEEP_S
    widest = runs[-1]
    assert widest["seconds"] < serial_s, (
        f"{widest['lanes']} lanes took {widest['seconds']:.3f}s for "
        f"{serial_s:.2f}s of serial sleep — no overlap at all"
    )
