"""Ablation — worker-pool sizing for GUI offloading (the SwingWorker bound).

The paper points out SwingWorker's hard-coded 10-thread pool.  On a 4-core
machine, is 10 a good number?  This ablation sweeps the offload pool size at
a saturating request load: undersized pools queue; oversized pools
oversubscribe the cores (visible once the per-event work is parallel).
"""

from __future__ import annotations

from repro import bench as hbench
from repro.sim import GUI_KERNELS, GuiBenchConfig, run_gui_benchmark

POOL_SIZES = [1, 2, 4, 8, 10, 16, 32]
RATE = 95.0
N_EVENTS = 200


def sweep() -> dict[str, list[float]]:
    out: dict[str, list[float]] = {"plain": [], "parallel": []}
    for size in POOL_SIZES:
        plain = run_gui_benchmark(
            GuiBenchConfig(
                approach="executor",
                kernel=GUI_KERNELS["crypt"],
                rate=RATE,
                n_events=N_EVENTS,
                worker_pool=size,
            )
        )
        out["plain"].append(plain.response.mean * 1000)
        par = run_gui_benchmark(
            GuiBenchConfig(
                approach="async_parallel",
                kernel=GUI_KERNELS["crypt"],
                rate=RATE,
                n_events=N_EVENTS,
                worker_pool=size,
                parallel_threads=3,
            )
        )
        out["parallel"].append(par.response.mean * 1000)
    return out


def test_ablation_pool_size(benchmark, report):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)

    header = f"{'pool':>6} | {'offload (ms)':>12} | {'offload+par (ms)':>16}"
    lines = [
        f"Ablation: offload pool size at {RATE:.0f} req/s (crypt, 4 cores)",
        header,
        "-" * len(header),
    ]
    for i, size in enumerate(POOL_SIZES):
        lines.append(
            f"{size:>6} | {data['plain'][i]:>12.1f} | {data['parallel'][i]:>16.1f}"
        )
    report("ablation_pool_size", lines)

    plain = dict(zip(POOL_SIZES, data["plain"]))
    par = dict(zip(POOL_SIZES, data["parallel"]))

    # Undersized pools queue badly: 1 thread is far worse than 4.
    assert plain[1] > 5 * plain[4]
    # At/above the core count, plain offloading stops improving much.
    assert plain[10] >= plain[4] * 0.8
    # With per-event parallel teams, oversizing the pool multiplies the
    # runnable threads and hurts: 32 workers x 3-thread teams on 4 cores.
    assert par[32] >= par[4]
@hbench.benchmark("ablation_pool_size", group="sim", slow=True)
def _ablation_pool_registered():
    """Offload-pool size sweep at a saturating request load."""
    return sweep
