"""Figure 7 — GUI event handling: average response time vs request load.

Paper §V-A: per kernel (Crypt, RayTracer, MonteCarlo, Series), events fired
at 10..100 requests/sec; approaches compared: sequential, SwingWorker,
ExecutorService, Pyjama, plus the synchronous-parallel variant ("in default
using 3 worker threads").

We regenerate the series on the simulated quad-core i5 and assert the
paper's qualitative results:

1. the sequential EDT's response time explodes once the load passes its
   saturation rate (1 / kernel time);
2. every offloading approach stays near the unloaded handler latency far
   beyond that point;
3. Pyjama is "equal and often superior to manual implementations";
4. the sync-parallel EDT saturates earlier than the offloading approaches.
"""

from __future__ import annotations

import pytest

from repro import bench as hbench
from repro.sim import GUI_KERNELS, GuiBenchConfig, run_gui_benchmark

RATES = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
APPROACH_COLUMNS = [
    ("sequential", "seq"),
    ("swingworker", "swing"),
    ("executor", "exec"),
    ("pyjama_async", "pyjama"),
    ("sync_parallel", "syncpar"),
]
N_EVENTS = 200


def sweep(kernel_name: str) -> dict[str, list[float]]:
    """Mean response time (ms) per approach over the rate sweep."""
    kernel = GUI_KERNELS[kernel_name]
    data: dict[str, list[float]] = {}
    for approach, _ in APPROACH_COLUMNS:
        series = []
        for rate in RATES:
            result = run_gui_benchmark(
                GuiBenchConfig(
                    approach=approach,
                    kernel=kernel,
                    rate=float(rate),
                    n_events=N_EVENTS,
                )
            )
            series.append(result.response.mean * 1000.0)
        data[approach] = series
    return data


@pytest.mark.parametrize("kernel_name", sorted(GUI_KERNELS))
def test_fig7_response_time_vs_load(benchmark, report, kernel_name):
    data = benchmark.pedantic(sweep, args=(kernel_name,), rounds=1, iterations=1)

    kernel = GUI_KERNELS[kernel_name]
    header = f"{'req/s':>6} | " + " | ".join(f"{label:>10}" for _, label in APPROACH_COLUMNS)
    lines = [
        f"Figure 7 [{kernel_name}]: mean response time (ms), "
        f"kernel={kernel.serial_time * 1000:.0f}ms, {N_EVENTS} events/round",
        header,
        "-" * len(header),
    ]
    for i, rate in enumerate(RATES):
        lines.append(
            f"{rate:>6} | "
            + " | ".join(f"{data[a][i]:>10.1f}" for a, _ in APPROACH_COLUMNS)
        )
    report(f"fig7_{kernel_name}", lines)

    saturation = 1.0 / kernel.serial_time
    below = [r for r in RATES if r < 0.8 * saturation]
    above = [r for r in RATES if r > 1.3 * saturation]
    if below and above:
        i_lo, i_hi = RATES.index(below[-1]), RATES.index(above[0])
        # (1) sequential explodes past saturation
        assert data["sequential"][i_hi] > 5 * data["sequential"][i_lo]
        # (2) offloading approaches stay flat there
        for approach in ("swingworker", "executor", "pyjama_async"):
            assert data[approach][i_hi] < 2.5 * data[approach][i_lo]
            assert data[approach][i_hi] < data["sequential"][i_hi] / 3
    # (3) Pyjama tracks the best manual approach everywhere
    for i in range(len(RATES)):
        best_manual = min(data["swingworker"][i], data["executor"][i])
        assert data["pyjama_async"][i] <= best_manual * 1.10
    # (4) sync-parallel degrades before the async approaches once the load
    # exceeds what a 4-way parallel handler on the EDT can keep up with
    # (for the lightest kernel the sweep never reaches that point).
    sync_capacity = 1.0 / kernel.span(4)
    if RATES[-1] > 1.1 * sync_capacity:
        assert data["sync_parallel"][-1] > data["pyjama_async"][-1]
@hbench.benchmark("fig7_gui_sweep_crypt", group="sim", slow=True)
def _fig7_registered():
    """Figure 7 rate sweep for the crypt kernel, all five approaches."""
    return lambda: sweep("crypt")
