"""Shutdown-path latency: drain (wait=True) vs cancel (wait=False).

The lost-work fix changed both shutdown modes: ``wait=True`` still drains the
backlog FIFO before stopping, while ``wait=False`` now atomically withdraws
the backlog and cancels every queued region so waiters unblock.  This suite
measures what each mode costs as a function of queue depth:

* **drain latency** — time for ``shutdown(wait=True)`` to run N trivial
  queued regions to completion and join the pool;
* **cancel latency** — time for ``shutdown(wait=False)`` to withdraw N queued
  regions and return (waiters observe ``RegionCancelledError``).

Cancel latency should stay roughly flat (one locked drain + N state flips);
drain latency grows linearly with the backlog.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro import bench as hbench
from repro.core import RegionState, TargetRegion, WorkerTarget

DEPTHS = [10, 100, 1000]
REPEATS = 5


@hbench.benchmark("shutdown_drain_100", group="shutdown", slow=True)
def _shutdown_drain_100():
    """shutdown(wait=True) over a 100-region backlog (timing includes
    backlog construction; the drain dominates)."""
    return lambda: _timed_shutdown(100, wait=True)


@hbench.benchmark("shutdown_cancel_100", group="shutdown", slow=True)
def _shutdown_cancel_100():
    """shutdown(wait=False) over a 100-region backlog (timing includes
    backlog construction; cancel itself stays roughly flat)."""
    return lambda: _timed_shutdown(100, wait=False)


def _build_backlog(depth: int) -> tuple[WorkerTarget, list[TargetRegion]]:
    """A 1-thread target with *depth* trivial regions parked in its queue."""
    import threading

    target = WorkerTarget("bench-drain", 1)
    started = threading.Event()
    gate = threading.Event()
    target.post(TargetRegion(lambda: (started.set(), gate.wait())))
    started.wait(timeout=2)
    regions = [TargetRegion(lambda: None) for _ in range(depth)]
    for r in regions:
        target.post(r)
    gate.set()
    return target, regions


def _timed_shutdown(depth: int, wait: bool) -> float:
    target, _regions = _build_backlog(depth)
    t0 = time.perf_counter()
    target.shutdown(wait=wait)
    return time.perf_counter() - t0


@pytest.mark.parametrize("depth", DEPTHS)
def test_drain_completes_backlog(depth):
    target, regions = _build_backlog(depth)
    target.shutdown(wait=True)
    assert all(r.state is RegionState.COMPLETED for r in regions)


@pytest.mark.parametrize("depth", DEPTHS)
def test_cancel_withdraws_backlog(depth):
    target, regions = _build_backlog(depth)
    target.shutdown(wait=False)
    # The gate region may still be running; the queued backlog must be dead.
    assert all(r.done for r in regions)
    assert target.stats["cancelled_on_shutdown"] >= depth - 1


def test_report_drain_vs_cancel_latency(report):
    rows = [f"{'depth':>6} | {'drain (wait=True)':>18} | {'cancel (wait=False)':>19}"]
    rows.append("-" * len(rows[0]))
    for depth in DEPTHS:
        drain = statistics.median(
            _timed_shutdown(depth, wait=True) for _ in range(REPEATS)
        )
        cancel = statistics.median(
            _timed_shutdown(depth, wait=False) for _ in range(REPEATS)
        )
        rows.append(f"{depth:>6} | {drain * 1e3:>15.2f} ms | {cancel * 1e3:>16.2f} ms")
    report("shutdown_drain_latency", rows)
