"""Tracing-overhead budget: off / null-recorder / full-recorder dispatch.

The observability layer must be free when off — the instrumentation's
disabled path is a handful of ``session.enabled`` attribute checks per
dispatch, no allocation, no locking.  This bench quantifies all three modes
on the Algorithm 1 dispatch+join round trip and enforces the off-mode
budget:

* **off** — tracing disabled (the shipping default);
* **null** — session live, events counted then discarded (the guard plus
  the emit call, minus storage);
* **full** — ring-buffer recording, the real tracing cost.

The hard assertion bounds the *disabled-path* cost: the per-dispatch guard
overhead, measured directly, must stay under 2% of the dispatch round trip
itself.  The mode medians are archived for EXPERIMENTS.md; they are not
hard-asserted against each other because queue hand-off latency between two
real threads is far noisier than the nanosecond-scale guards being budgeted.
"""

from __future__ import annotations

import statistics
import time

import pytest

from repro import bench as hbench
from repro import obs
from repro.core import PjRuntime

# ``session.enabled`` checks on the off-mode dispatch path: submit guard in
# invoke_target_block, enqueue-timestamp guard + post-emit guard in post(),
# dequeue/exec guards in _dispatch(), cancel guard in region teardown —
# rounded up for headroom.
GUARDS_PER_DISPATCH = 8


@pytest.fixture()
def rt():
    obs.disable()
    runtime = PjRuntime()
    runtime.create_worker("worker", 2)
    yield runtime
    runtime.shutdown(wait=False)
    obs.disable()
    obs.session().clear()


def _noop() -> int:
    return 42


def _traced_dispatch_setup(mode: str):
    """Registry setup for one tracing mode on the real 2-thread round trip.

    The single-thread post+drain variants of these modes live in
    ``repro.bench.suites`` (``trace_off``/``trace_null``/``trace_ring...``);
    these cross-thread versions carry real queue hand-off noise and are
    therefore marked slow.
    """

    def setup():
        if mode == "off":
            obs.disable()
        elif mode == "null":
            obs.enable(null=True)
        else:
            obs.enable()
        rt = PjRuntime()
        rt.create_worker("worker", 2)

        def cleanup():
            rt.shutdown(wait=False)
            obs.disable()
            obs.session().clear()

        return lambda: rt.invoke_target_block("worker", _noop).result(), cleanup

    return setup


for _mode in ("off", "null", "full"):
    hbench.register(
        hbench.Benchmark(
            name=f"trace_dispatch_{_mode}",
            setup=_traced_dispatch_setup(_mode),
            group="trace",
            number=100,
            slow=True,
            description=f"2-thread dispatch+join with tracing {_mode}",
        )
    )


def _median_dispatch_s(rt: PjRuntime, n: int = 200, repeats: int = 5) -> float:
    """Median per-dispatch wall time of *repeats* batches of *n* round trips."""
    batches = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        for _ in range(n):
            rt.invoke_target_block("worker", _noop).result()
        batches.append((time.perf_counter() - t0) / n)
    return statistics.median(batches)


def _guard_cost_s(loops: int = 200_000) -> float:
    """Direct cost of one disabled ``session.enabled`` check."""
    session = obs.session()
    assert not session.enabled
    sink = 0
    t0 = time.perf_counter()
    for _ in range(loops):
        if session.enabled:  # the exact guard the hot paths use
            sink += 1
    elapsed = time.perf_counter() - t0
    assert sink == 0
    return elapsed / loops


def test_trace_overhead_modes(rt, report):
    # Warm the pool and code paths before timing anything.
    _median_dispatch_s(rt, n=50, repeats=1)

    off = _median_dispatch_s(rt)

    obs.enable(null=True)
    null = _median_dispatch_s(rt)

    obs.enable()  # full ring-buffer recording
    full = _median_dispatch_s(rt)
    recorded = obs.session().stats()["recorded"]

    obs.disable()
    guard = _guard_cost_s()
    guard_per_dispatch = guard * GUARDS_PER_DISPATCH

    def pct(x: float) -> str:
        return f"{(x / off - 1.0) * 100:+6.1f}%"

    report(
        "trace_overhead",
        [
            f"dispatch+join round trip, medians of 5x200 (worker pool of 2)",
            f"  off  : {off * 1e6:9.2f} us/dispatch",
            f"  null : {null * 1e6:9.2f} us/dispatch  ({pct(null)} vs off)",
            f"  full : {full * 1e6:9.2f} us/dispatch  ({pct(full)} vs off)"
            f"  [{recorded} events recorded]",
            f"disabled-path budget:",
            f"  guard check         : {guard * 1e9:7.1f} ns",
            f"  x{GUARDS_PER_DISPATCH} guards/dispatch  : "
            f"{guard_per_dispatch * 1e9:7.1f} ns "
            f"= {guard_per_dispatch / off * 100:.3f}% of off-mode dispatch",
        ],
    )

    # The acceptance bar: tracing-off overhead under 2% of a dispatch.
    assert guard_per_dispatch < 0.02 * off, (
        f"disabled-path guards cost {guard_per_dispatch * 1e9:.0f} ns/dispatch, "
        f">= 2% of the {off * 1e6:.1f} us off-mode dispatch"
    )
    # Full recording recorded something and stayed within sane bounds.
    assert recorded > 0
    assert full < 10 * off
