"""Figure 9 — HTTP service throughput vs number of worker threads (simulated).

Paper §V-B: an encryption web service on a 16-core Xeon, 100 virtual users;
four variants — Jetty, Pyjama, and each combined with per-request
``omp parallel``.  These numbers come from the **analytic simulation**
(:mod:`repro.sim`) — virtual time, modeled kernel costs, the paper's 16-core
machine.  The *live* counterpart — real sockets, real crypt kernel, this
host — is ``bench_serve_live.py`` / ``python -m repro serve --bench``; the
two are not comparable (different machine models, different clock).

Claims reproduced:

* Jetty and Pyjama scale comparably with worker threads ("both … have good
  scaling performance");
* the parallel variants start dramatically higher but level off "at just
  under 50 responses/sec" as per-request team spawning oversubscribes the
  machine.
"""

from __future__ import annotations

from repro import bench as hbench
from repro.sim import HttpBenchConfig, run_http_benchmark

WORKERS = [1, 2, 4, 8, 16, 32, 64]
PARALLEL_TEAM = 8
VARIANTS = [
    ("jetty", None, "jetty"),
    ("pyjama", None, "pyjama"),
    ("jetty", PARALLEL_TEAM, "jetty+par"),
    ("pyjama", PARALLEL_TEAM, "pyjama+par"),
]


def sweep() -> dict[str, dict[str, list[float]]]:
    data: dict[str, dict[str, list[float]]] = {}
    for server, par, label in VARIANTS:
        results = [
            run_http_benchmark(
                HttpBenchConfig(
                    server=server, worker_threads=w, parallel_threads=par
                )
            )
            for w in WORKERS
        ]
        data[label] = {
            "throughput": [r.throughput for r in results],
            "latency_p95": [r.response.percentile(95) for r in results],
        }
    return data


def test_fig9_throughput_vs_worker_threads(benchmark, report):
    raw = benchmark.pedantic(sweep, rounds=1, iterations=1)
    data = {label: series["throughput"] for label, series in raw.items()}

    header = f"{'workers':>8} | " + " | ".join(
        f"{label:>10}" for _, _, label in VARIANTS
    )
    lines = [
        "Figure 9 [simulated (repro.sim)]: throughput (responses/sec), "
        "100 virtual users, 16 cores, "
        f"encryption=320ms, parallel team={PARALLEL_TEAM}",
        header,
        "-" * len(header),
    ]
    for i, w in enumerate(WORKERS):
        lines.append(
            f"{w:>8} | "
            + " | ".join(f"{data[label][i]:>10.1f}" for _, _, label in VARIANTS)
        )
    lines.append("")
    lines.append(
        "NOTE: simulated (repro.sim) — modeled 16-core machine in virtual "
        "time, not live sockets.  For measured numbers on this host see "
        "bench_serve_live.py or `python -m repro serve --bench`; the two "
        "are not directly comparable."
    )
    lines.append("")
    lines.append("p95 response latency (s):")
    for i, w in enumerate(WORKERS):
        lines.append(
            f"{w:>8} | "
            + " | ".join(
                f"{raw[label]['latency_p95'][i]:>10.2f}" for _, _, label in VARIANTS
            )
        )
    report("fig9_http_throughput", lines)

    jetty, pyjama = data["jetty"], data["pyjama"]
    jetty_p, pyjama_p = data["jetty+par"], data["pyjama+par"]

    # Latency sanity: per-request parallelism slashes p95 at low workers
    # (each request finishes in ~1/team of the serial time).
    assert raw["pyjama+par"]["latency_p95"][0] < raw["pyjama"]["latency_p95"][0]

    # (1) Jetty ≈ Pyjama, plain and parallel alike.
    for a, b in ((jetty, pyjama), (jetty_p, pyjama_p)):
        for x, y in zip(a, b):
            assert y == (x if x == 0 else __import__("pytest").approx(x, rel=0.05))

    # (2) plain variants scale with worker threads up to the core count.
    for series in (jetty, pyjama):
        assert series[WORKERS.index(16)] > 3 * series[WORKERS.index(4)]
        assert series[WORKERS.index(4)] > 1.8 * series[WORKERS.index(2)]

    # (3) parallel variants dramatically better at low worker counts.
    idx2 = WORKERS.index(2)
    assert jetty_p[idx2] > 3 * jetty[idx2]
    assert pyjama_p[idx2] > 3 * pyjama[idx2]

    # (4) ... and level off at just under 50 responses/sec.
    plateau = [pyjama_p[WORKERS.index(w)] for w in (8, 16, 32, 64)]
    assert all(35 < v < 50 for v in plateau), plateau
    assert max(plateau) - min(plateau) < 0.15 * max(plateau)

    # (5) peak plain throughput reaches the machine ceiling (~50/s).
    assert 40 < max(pyjama) <= 50
@hbench.benchmark("fig9_http_throughput", group="sim", slow=True)
def _fig9_registered():
    """Figure 9 worker-thread sweep, all four server variants."""
    return sweep
