"""Ablation — `await` (logical barrier) vs a plain blocking wait.

DESIGN.md §6: what does the paper's key mechanism actually buy?  We compare
the extended model (EDT processes other events while a block runs) against a
"default-clause" variant where the EDT blocks at the directive, holding
everything else up.  The metric is the *dispatch latency* of other events —
the responsiveness the paper optimises for.
"""

from __future__ import annotations

from repro import bench as hbench
from repro.sim import GUI_KERNELS, GuiBenchConfig, run_gui_benchmark
from repro.sim.approaches import _HANDLERS, _World  # ablation taps internals
from repro.sim.costmodel import kernel_task
from repro.sim.threadsim import AwaitBlock


def _blocking_wait_handler(w: _World, finish):
    """pyjama_async with the await clause removed: the EDT stalls at the
    directive ('default' scheduling of Table I)."""
    yield w.machine.execute(w.cfg.gui_update, name="gui-update")
    block = w.pools["worker"].submit(kernel_task(w.machine, w.cfg.kernel))
    yield block  # plain yield = EDT blocked (no logical barrier)
    yield w.machine.execute(w.cfg.gui_update, name="gui-update")
    finish()


def run_variant(use_await: bool, rate: float):
    key = "pyjama_async" if use_await else "__blocking__"
    if not use_await:
        _HANDLERS["__blocking__"] = _blocking_wait_handler
    try:
        cfg = GuiBenchConfig(
            approach="pyjama_async",  # config validation; handler overridden
            kernel=GUI_KERNELS["crypt"],
            rate=rate,
            n_events=150,
        )
        # Swap the handler under the same world construction.
        original = _HANDLERS["pyjama_async"]
        if not use_await:
            _HANDLERS["pyjama_async"] = _blocking_wait_handler
        try:
            return run_gui_benchmark(cfg)
        finally:
            _HANDLERS["pyjama_async"] = original
    finally:
        _HANDLERS.pop("__blocking__", None)


def test_ablation_await_vs_blocking(benchmark, report):
    rates = [10, 20, 30, 50, 80]
    data = benchmark.pedantic(
        lambda: {
            "await": [run_variant(True, r) for r in rates],
            "blocking": [run_variant(False, r) for r in rates],
        },
        rounds=1,
        iterations=1,
    )

    header = f"{'req/s':>6} | {'await disp(ms)':>14} | {'block disp(ms)':>14} | {'await resp':>10} | {'block resp':>10}"
    lines = ["Ablation: await logical barrier vs blocking wait (crypt kernel)",
             header, "-" * len(header)]
    for i, r in enumerate(rates):
        a, b = data["await"][i], data["blocking"][i]
        lines.append(
            f"{r:>6} | {a.dispatch.mean * 1000:>14.2f} | {b.dispatch.mean * 1000:>14.2f} | "
            f"{a.response.mean * 1000:>10.1f} | {b.response.mean * 1000:>10.1f}"
        )
    report("ablation_await", lines)

    # Past the EDT saturation point the blocking variant behaves like the
    # sequential approach (the EDT is occupied for the kernel's duration),
    # while await keeps dispatch latency near zero.
    hi = len(rates) - 1
    assert data["await"][hi].dispatch.mean < 0.01
    assert data["blocking"][hi].dispatch.mean > 10 * data["await"][hi].dispatch.mean
    # At low load, response times are equivalent: the barrier costs nothing.
    assert data["await"][0].response.mean == __import__("pytest").approx(
        data["blocking"][0].response.mean, rel=0.05
    )


def test_ablation_pumping_vs_continuation_await(benchmark, report):
    """Algorithm 1's *pumping* barrier vs the idealised continuation barrier
    (the nesting finding; see EXPERIMENTS.md).  Dispatch latency — the
    responsiveness the paper optimises — is near-zero for both; measured
    response times inflate under pumping because overlapping handlers'
    continuations unwind LIFO."""
    from repro.sim import GUI_KERNELS, GuiBenchConfig, run_gui_benchmark

    rates = [10, 20, 40, 60, 80]

    def sweep():
        out = {}
        for style in ("continuation", "pumping"):
            out[style] = [
                run_gui_benchmark(
                    GuiBenchConfig(
                        approach="pyjama_async",
                        kernel=GUI_KERNELS["crypt"],
                        rate=float(r),
                        n_events=150,
                        await_style=style,
                    )
                )
                for r in rates
            ]
        return out

    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = (
        f"{'req/s':>6} | {'cont resp(ms)':>13} | {'pump resp(ms)':>13} | "
        f"{'cont disp':>9} | {'pump disp':>9}"
    )
    lines = ["Ablation: continuation vs pumping await (Algorithm 1 nesting)",
             header, "-" * len(header)]
    for i, r in enumerate(rates):
        c, p = data["continuation"][i], data["pumping"][i]
        lines.append(
            f"{r:>6} | {c.response.mean * 1000:>13.1f} | {p.response.mean * 1000:>13.1f} | "
            f"{c.dispatch.mean * 1000:>9.2f} | {p.dispatch.mean * 1000:>9.2f}"
        )
    report("ablation_await_styles", lines)

    # Responsiveness survives pumping (the paper's claim holds either way)...
    assert all(r.dispatch.mean < 0.01 for r in data["pumping"])
    # ...but continuation latency inflates once awaits overlap.
    assert (
        data["pumping"][-1].response.mean
        > 1.5 * data["continuation"][-1].response.mean
    )
    # No overlap at low rates: the styles agree.
    assert data["pumping"][0].response.mean == __import__("pytest").approx(
        data["continuation"][0].response.mean, rel=0.02
    )
@hbench.benchmark("ablation_await_vs_blocking", group="sim", slow=True)
def _ablation_await_registered():
    """Await-clause ablation at one saturating rate: extended model vs
    a default-clause EDT that stalls at the directive."""
    return lambda: {
        "await": run_variant(True, 50.0),
        "blocking": run_variant(False, 50.0),
    }
