"""Figure 8 — asynchronous vs asynchronous-parallel event handling.

Paper §V-A second comparison: offloading alone (``target virtual``)
vs offloading combined with per-event ``omp parallel`` (3 worker threads) —
the *asynchronous parallel* mode the extended model enables.

Expected shape: async-parallel cuts each response's latency by roughly the
kernel's 3-thread speedup while cores are idle; as the request load
approaches machine saturation the advantage shrinks (parallelism cannot add
capacity, only reduce per-event span).
"""

from __future__ import annotations

import pytest

from repro import bench as hbench
from repro.sim import GUI_KERNELS, GuiBenchConfig, run_gui_benchmark

RATES = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100]
N_EVENTS = 200
PARALLEL_THREADS = 3


def sweep(kernel_name: str) -> dict[str, list[float]]:
    kernel = GUI_KERNELS[kernel_name]
    out: dict[str, list[float]] = {}
    for approach in ("sequential", "pyjama_async", "async_parallel"):
        out[approach] = [
            run_gui_benchmark(
                GuiBenchConfig(
                    approach=approach,
                    kernel=kernel,
                    rate=float(rate),
                    n_events=N_EVENTS,
                    parallel_threads=PARALLEL_THREADS,
                )
            ).response.mean
            * 1000.0
            for rate in RATES
        ]
    return out


@pytest.mark.parametrize("kernel_name", sorted(GUI_KERNELS))
def test_fig8_async_vs_async_parallel(benchmark, report, kernel_name):
    data = benchmark.pedantic(sweep, args=(kernel_name,), rounds=1, iterations=1)
    kernel = GUI_KERNELS[kernel_name]

    header = f"{'req/s':>6} | {'sequential':>10} | {'async':>10} | {'async-par':>10} | {'gain':>6}"
    lines = [
        f"Figure 8 [{kernel_name}]: async vs async-parallel "
        f"({PARALLEL_THREADS} team threads), mean response (ms)",
        header,
        "-" * len(header),
    ]
    for i, rate in enumerate(RATES):
        gain = data["pyjama_async"][i] / data["async_parallel"][i]
        lines.append(
            f"{rate:>6} | {data['sequential'][i]:>10.1f} | "
            f"{data['pyjama_async'][i]:>10.1f} | {data['async_parallel'][i]:>10.1f} | "
            f"{gain:>5.2f}x"
        )
    report(f"fig8_{kernel_name}", lines)

    # Low load: async-parallel approaches the kernel's ideal team speedup.
    ideal = kernel.speedup(PARALLEL_THREADS)
    gain_low = data["pyjama_async"][0] / data["async_parallel"][0]
    assert gain_low > 1.0
    assert gain_low <= ideal * 1.05
    assert gain_low >= ideal * 0.45  # handler fixed costs dilute the ideal

    # High load: if the sweep actually saturates the machine, the advantage
    # shrinks; for a kernel light enough that 100 req/s never fills the
    # 4 cores, the gain simply persists.
    gain_high = data["pyjama_async"][-1] / data["async_parallel"][-1]
    demand_at_top = RATES[-1] * kernel.serial_time
    if demand_at_top > 0.9 * 4:  # cores in GuiBenchConfig default
        assert gain_high < gain_low
    else:
        assert gain_high == pytest.approx(gain_low, rel=0.10)

    # Both async modes beat sequential once the EDT saturates.
    sat_idx = next(
        (i for i, r in enumerate(RATES) if r > 1.3 / kernel.serial_time), None
    )
    if sat_idx is not None:
        assert data["pyjama_async"][sat_idx] < data["sequential"][sat_idx]
        assert data["async_parallel"][sat_idx] < data["sequential"][sat_idx]
@hbench.benchmark("fig8_async_parallel_crypt", group="sim", slow=True)
def _fig8_registered():
    """Figure 8 rate sweep for crypt: async vs async-parallel handling."""
    return lambda: sweep("crypt")
