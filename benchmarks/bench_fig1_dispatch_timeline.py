"""Figure 1 — single- vs multi-threaded event dispatching timelines.

Paper Figure 1: with single-threaded processing, request 2's handling is
"delayed until the handling of previous events are completed, resulting in
an unresponsive application"; multi-threaded processing (thread pool)
overlaps the handlers and restores responsiveness.

This benchmark replays the figure's scenario — three closely-spaced events
with long handlers — and prints both timelines.
"""

from __future__ import annotations

from repro import bench as hbench
from repro.sim import GuiBenchConfig, KernelCostModel, run_gui_benchmark

HANDLER = KernelCostModel("fig1-handler", serial_time=0.200, parallel_fraction=0.9)
SPACING = 0.050  # events arrive every 50 ms — far faster than one handler


def scenario(approach: str):
    cfg = GuiBenchConfig(
        approach=approach,
        kernel=HANDLER,
        rate=1.0 / SPACING,
        n_events=3,
    )
    return run_gui_benchmark(cfg)


@hbench.benchmark("fig1_dispatch_timeline", group="sim", slow=True)
def _fig1_registered():
    """Figure 1 scenario, both timelines (simulated time; wall cost is the
    simulator itself)."""
    return lambda: {a: scenario(a) for a in ("sequential", "executor")}


def test_fig1_dispatch_timelines(benchmark, report):
    results = benchmark.pedantic(
        lambda: {a: scenario(a) for a in ("sequential", "executor")},
        rounds=1,
        iterations=1,
    )
    seq, pooled = results["sequential"], results["executor"]

    lines = [
        "Figure 1: three 200ms-handler events fired 50ms apart",
        "",
        "(i) single-threaded event processing  — response times per event:",
    ]
    for i, rt in enumerate(seq.response.samples):
        lines.append(f"    request{i + 1}: fired at {i * SPACING * 1000:.0f}ms, "
                     f"responded after {rt * 1000:6.1f}ms")
    lines.append("(ii) multi-threaded (thread-pool) processing:")
    for i, rt in enumerate(pooled.response.samples):
        lines.append(f"    request{i + 1}: fired at {i * SPACING * 1000:.0f}ms, "
                     f"responded after {rt * 1000:6.1f}ms")
    report("fig1_dispatch_timeline", lines)

    s1, s2, s3 = seq.response.samples
    # Single-threaded: each event queues behind the previous handler.
    assert s2 > s1 + 0.5 * HANDLER.serial_time
    assert s3 > s2 + 0.5 * HANDLER.serial_time
    # Multi-threaded: handlers overlap; later events see no such pile-up.
    p1, p2, p3 = pooled.response.samples
    assert p3 < p1 + 0.5 * HANDLER.serial_time
    # Mean over the 3 events: sequential ≈ t, 2t, 3t; pooled ≈ t, t, t.
    assert pooled.response.mean < 0.7 * seq.response.mean
