"""Sensitivity — do the Figure 7 conclusions survive stochastic arrivals?

The paper fires events at constant rates; real event streams are bursty.
This benchmark re-runs the crypt cell with Poisson arrivals (three seeds)
and checks the qualitative ordering — sequential blows up past saturation,
offloading stays flat, Pyjama ≈ executor — is unchanged.
"""

from __future__ import annotations

from repro import bench as hbench
from repro.sim import GUI_KERNELS, GuiBenchConfig
from repro.sim.approaches import _HANDLERS, _build_world
from repro.sim.workload import fire_open_loop

RATES = [10, 20, 40, 60, 80]
SEEDS = [1, 2, 3]
N_EVENTS = 200


def run_poisson(approach: str, rate: float, seed: int):
    cfg = GuiBenchConfig(
        approach=approach, kernel=GUI_KERNELS["crypt"], rate=rate, n_events=N_EVENTS
    )
    w = _build_world(cfg)
    handler = _HANDLERS[approach]

    def fire(i: int) -> None:
        fired_at = w.sim.now

        def finish() -> None:
            w.stats.record(fired_at, w.sim.now)

        w.edt.post(lambda: handler(w, finish))

    fire_open_loop(w.sim, rate, N_EVENTS, fire, poisson=True, seed=seed)
    w.sim.run()
    return w.stats


def sweep() -> dict[str, dict[int, list[float]]]:
    data: dict[str, dict[int, list[float]]] = {}
    for approach in ("sequential", "executor", "pyjama_async"):
        data[approach] = {
            seed: [run_poisson(approach, float(r), seed).mean * 1000 for r in RATES]
            for seed in SEEDS
        }
    return data


def test_sensitivity_poisson_arrivals(benchmark, report):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)

    lines = ["Sensitivity: Poisson arrivals (crypt), mean response ms per seed"]
    for approach, by_seed in data.items():
        lines.append(f"  {approach}:")
        for seed, series in by_seed.items():
            lines.append(
                f"    seed {seed}: "
                + "  ".join(f"{r}/s={v:8.1f}" for r, v in zip(RATES, series))
            )
    report("sensitivity_poisson", lines)

    for seed in SEEDS:
        seq = data["sequential"][seed]
        pyj = data["pyjama_async"][seed]
        exc = data["executor"][seed]
        # Saturation blow-up persists under burstiness (crypt saturates ~25/s).
        assert seq[-1] > 5 * seq[0]
        # Offloading stays far below sequential at high load.
        assert pyj[-1] < seq[-1] / 3
        # Pyjama ≈ executor regardless of arrival pattern.
        for p, e in zip(pyj, exc):
            assert p <= e * 1.15 + 0.5
@hbench.benchmark("sensitivity_poisson", group="sim", slow=True)
def _sensitivity_registered():
    """Figure 7 crypt cell re-run with Poisson arrivals, three seeds."""
    return sweep
