"""Benchmark-suite fixtures: live table reporting + result archiving.

Every figure/table benchmark prints the paper-style rows through the
``report`` fixture so the regenerated data is visible in the benchmark run's
output and archived under ``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture()
def report(request, capsys):
    """Returns a callable: report(name, lines) — prints unbuffered and saves."""

    def _report(name: str, lines: list[str]) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        text = "\n".join(lines)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        with capsys.disabled():
            print(f"\n── {name} " + "─" * max(0, 66 - len(name)))
            print(text)

    return _report
