"""Classic fork-join OpenMP via pragmas: phase-parallel red-black SOR.

Run:  python examples/sor_worksharing.py

The extension kernels show the half of the paper's story that is plain
OpenMP: a `parallel` region with two worksharing loops per iteration (red
phase, black phase), where the loops' *implied barriers* are what keeps the
phases correct.  The compiled version is checked bit-for-bit against the
sequential kernel — the "directives don't change sequential correctness"
rule, applied to a numerically delicate stencil.
"""

import numpy as np

from repro.compiler import compile_source, exec_omp
from repro.core import PjRuntime
from repro.kernels import sor

SOURCE = '''
def sor_parallel(grid, bands, iterations, sweep_rows, RED, BLACK):
    #omp parallel num_threads(3)
    if True:
        for _ in range(iterations):
            #omp for schedule(static)
            for band in bands:
                sweep_rows(grid, RED, band[0], band[1])
            # implied barrier: every red cell updated before black reads it
            #omp for schedule(static)
            for band in bands:
                sweep_rows(grid, BLACK, band[0], band[1])
'''


def main() -> None:
    n, iterations = 48, 10
    rt = PjRuntime()

    print("generated code:")
    print("\n".join("  " + l for l in compile_source(SOURCE).splitlines()[:18]))
    print("  ...\n")

    ns = exec_omp(SOURCE, runtime=rt)

    grid = sor.initial_grid(n)
    interior = n - 2
    band_size = interior // 3
    bands = [
        (1 + i * band_size, 1 + (i + 1) * band_size if i < 2 else n - 1)
        for i in range(3)
    ]
    ns["sor_parallel"](grid, bands, iterations, sor.sweep_color_rows, sor.RED, sor.BLACK)

    expected = sor.run(n, iterations=iterations)
    match = np.allclose(grid, expected)
    print(f"grid {n}x{n}, {iterations} red-black iterations on 3 threads")
    print(f"checksum parallel  : {sor.checksum(grid):.6f}")
    print(f"checksum sequential: {sor.checksum(expected):.6f}")
    print(f"bitwise-equivalent : {match}")
    assert match
    rt.shutdown()


if __name__ == "__main__":
    main()
