"""Process-backed targets: GIL-free kernels, crashes, and stuck workers.

Run:  python examples/process_kernels.py

The directive-level code is identical to the thread examples — register a
target, ``run_on`` it — but the executor is a pool of worker OS *processes*
(``repro.dist``), so a CPU-bound pure-Python kernel actually scales with
cores instead of serializing on the GIL.  Also demonstrated: a worker that
dies mid-region surfaces ``WorkerCrashedError`` (never a hang) and the
supervisor restores the pool; a stuck worker is reclaimed by ``timeout=``.

On a single-core host the speedup section still runs and reports honestly —
there is no parallel dividend to collect without a second core.
"""

import os
import time

from repro.core import PjRuntime, run_on
from repro.core.errors import AwaitTimeoutError, RegionFailedError, WorkerCrashedError

POOL = 4
CHUNKS = 4
PRIME_LIMIT = 60_000


def count_primes(first: int, limit: int) -> int:
    """Pure-Python trial division — deliberately GIL-bound CPU work."""
    count = 0
    for n in range(max(first, 2), limit):
        if all(n % d for d in range(2, int(n ** 0.5) + 1)):
            count += 1
    return count


def crash_body() -> None:
    """Kill the worker process abruptly, mid-region."""
    os._exit(13)


def stubborn() -> None:
    """Ignore cooperative cancellation entirely."""
    time.sleep(300)


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:
        return os.cpu_count() or 1


def timed_chunks(rt: PjRuntime, target: str) -> tuple[float, int]:
    bounds = [
        (i * PRIME_LIMIT // CHUNKS, (i + 1) * PRIME_LIMIT // CHUNKS)
        for i in range(CHUNKS)
    ]
    start = time.perf_counter()
    handles = [
        run_on(target, count_primes, lo, hi, mode="nowait", runtime=rt)
        for lo, hi in bounds
    ]
    total = sum(h.result(timeout=600) for h in handles)
    return time.perf_counter() - start, total


def main() -> None:
    cores = usable_cores()
    rt = PjRuntime()
    rt.create_worker("threads", POOL)
    rt.create_process_worker("procs", POOL)

    # --- GIL-free offload -------------------------------------------------
    # Warm every process lane first (spawn + import cost is not the story).
    warm = [
        run_on("procs", count_primes, 0, 1000, mode="nowait", runtime=rt)
        for _ in range(POOL)
    ]
    for h in warm:
        h.result(timeout=600)

    t_thread, primes_t = timed_chunks(rt, "threads")
    t_proc, primes_p = timed_chunks(rt, "procs")
    assert primes_t == primes_p, "backends disagree on the prime count"
    speedup = t_thread / t_proc
    print(f"primes below {PRIME_LIMIT}: {primes_t}")
    print(f"{POOL}-thread pool : {t_thread:6.2f}s   (GIL-serialized)")
    print(f"{POOL}-process pool: {t_proc:6.2f}s   ({speedup:.2f}x vs threads)")
    if cores >= 2:
        assert speedup > 1.5, (
            f"expected >1.5x on a {cores}-core host, measured {speedup:.2f}x"
        )
        print(f"scaling dividend collected on {cores} usable cores")
    else:
        print("single-core host: no parallel dividend to collect (expected)")

    # --- crash containment ------------------------------------------------
    try:
        run_on("procs", crash_body, runtime=rt)
    except RegionFailedError as exc:
        crash = exc.__cause__
        assert isinstance(crash, WorkerCrashedError)
        print(f"crash surfaced : {crash}")
    survivor = run_on("procs", count_primes, 0, 100, runtime=rt)
    print(f"pool recovered : counted {survivor.result()} primes after the crash")
    print(f"target state   : {rt.get_target('procs').describe()}")

    # --- stuck-worker reclaim via timeout= --------------------------------
    try:
        run_on("procs", stubborn, timeout=1.5, runtime=rt)
    except AwaitTimeoutError:
        print("stuck worker   : timeout= fired; lane terminated and respawned")

    rt.shutdown()
    print("clean shutdown : all worker processes stopped")


if __name__ == "__main__":
    main()
