"""The paper's §V-A motivating app: a camera stream with AR processing.

Run:  python examples/camera_ar_stream.py

"Consider a mobile visual-realism application constantly capturing images
from the camera and then applying the image rendering or processing (e.g.
augmented reality) for the user.  In order to achieve a smooth user
experience, the processing of each frame should be as short as possible."

A Swing-style Timer fires frame events at a fixed FPS; each frame's handler
runs the RayTracer kernel as the "AR filter" and displays the result.  Two
handler versions run under the same load:

* sequential — the filter runs on the EDT; the Timer's *coalescing* then
  drops frames (the frozen-animation symptom);
* pyjama — the filter is offloaded via `target virtual(worker) nowait`,
  display hops back to the EDT; the Timer keeps its cadence.

Frame-drop counts make the difference visible without a screen.
"""

import threading
import time

from repro.compiler import exec_omp
from repro.core import PjRuntime
from repro.eventloop import EventLoop, Panel, Timer
from repro.kernels import raytracer

SCENE = raytracer.default_scene(12)
FPS = 30
DURATION_S = 2.0


def ar_filter(frame_no: int):
    img = raytracer.render(SCENE, width=20, height=20)
    return f"frame-{frame_no}(luma={raytracer.checksum(img):.1f})"


PRAGMA_SOURCE = '''
def make_frame_handler(panel, ar_filter, state):
    def on_frame():
        state["frame"] += 1
        n = state["frame"]
        #omp target virtual(worker) nowait
        if True:
            rendered = ar_filter(n)
            #omp target virtual(edt) nowait
            panel.display_img(rendered)
    return on_frame
'''


def run_version(name: str, use_pragmas: bool) -> None:
    rt = PjRuntime()
    loop = EventLoop(rt, "edt")
    rt.create_worker("worker", 3)
    panel = Panel(loop)
    state = {"frame": 0}

    if use_pragmas:
        ns = exec_omp(PRAGMA_SOURCE, runtime=rt)
        on_frame = ns["make_frame_handler"](panel, ar_filter, state)
    else:
        def on_frame():
            state["frame"] += 1
            panel.display_img(ar_filter(state["frame"]))

    timer = Timer(loop, 1.0 / FPS, on_frame)
    timer.start()
    time.sleep(DURATION_S)
    timer.stop()
    # Let in-flight frames land.
    deadline = time.monotonic() + 5
    while len(panel.images) < timer.dispatched and time.monotonic() < deadline:
        time.sleep(0.02)

    expected = int(DURATION_S * FPS)
    print(f"[{name}]")
    print(f"  timer expirations : {timer.fired} (~{expected} expected at {FPS} fps)")
    print(f"  frames dispatched : {timer.dispatched}")
    print(f"  frames coalesced  : {timer.coalesced}  <- dropped by a busy EDT")
    print(f"  frames displayed  : {len(panel.images)}")
    rt.shutdown(wait=False)


def main() -> None:
    print(f"camera stream: {FPS} fps for {DURATION_S:.0f}s, "
          "raytraced AR filter per frame\n")
    run_version("sequential (filter on the EDT)", use_pragmas=False)
    run_version("pyjama (filter offloaded)     ", use_pragmas=True)
    print("\nCoalesced frames are the 'frozen animation' the paper's intro "
          "warns about; offloading keeps the frame cadence.")


if __name__ == "__main__":
    main()
