"""Figure 2's S1→S2→S3→S4 pipeline, three ways.

Run:  python examples/progress_pipeline.py

The paper's Figure 2 logic: background work (S1), a foreground progress
update (S2), more background work (S3), then a foreground completion update
(S4).  Implemented with:

1. SwingWorker (Figure 3's structure) — publish/process/done callbacks;
2. hand-rolled ExecutorService + invoke_later (CPS, Figure 4's structure);
3. compiled ``#omp target virtual`` pragmas (Figure 6's structure) — the
   same flow reads top-to-bottom as sequential code.

All three drive the same ProgressBar + Label; the journals prove every GUI
touch happened on the EDT.
"""

import threading
import time

from repro.compiler import exec_omp
from repro.core import PjRuntime
from repro.eventloop import EventLoop, ExecutorService, Label, ProgressBar, SwingWorker
from repro.kernels import montecarlo


def work_half(seed: int) -> float:
    cfg = montecarlo.MonteCarloConfig(n_paths=40, seed=seed)
    return montecarlo.run(cfg).mean_final_price


def with_swingworker(loop: EventLoop, label: Label, bar: ProgressBar, done_evt):
    class PipelineWorker(SwingWorker):
        def do_in_background(self):
            s1 = work_half(1)            # S1
            self.publish(50)
            s3 = work_half(2)            # S3
            return s1 + s3

        def process(self, chunks):       # S2 (on the EDT)
            bar.set_value(chunks[-1])

        def done(self):                  # S4 (on the EDT)
            label.set_text("done (swingworker)")
            bar.set_value(100)
            done_evt.set()

    loop.invoke_later(lambda: PipelineWorker(loop).execute())


def with_executor(loop: EventLoop, label: Label, bar: ProgressBar, done_evt):
    pool = ExecutorService(2, name="manual")

    def background():
        s1 = work_half(1)                                   # S1
        loop.invoke_later(lambda: bar.set_value(50))        # S2 via CPS hop
        s3 = work_half(2)                                   # S3

        def s4():                                           # S4, another hop
            label.set_text("done (executor)")
            bar.set_value(100)
            done_evt.set()

        loop.invoke_later(s4)

    pool.submit(background)


PRAGMA_SOURCE = '''
def pipeline(label, bar, work_half, done_evt):
    #omp target virtual(worker) nowait
    if True:
        s1 = work_half(1)                    # S1
        #omp target virtual(edt) nowait
        bar.set_value(50)                    # S2
        s3 = work_half(2)                    # S3
        #omp target virtual(edt) nowait
        if True:
            label.set_text("done (pyjama)")  # S4
            bar.set_value(100)
            done_evt.set()
'''


def with_pragmas(rt, loop: EventLoop, label: Label, bar: ProgressBar, done_evt):
    ns = exec_omp(PRAGMA_SOURCE, runtime=rt)
    loop.invoke_later(lambda: ns["pipeline"](label, bar, work_half, done_evt))


def run_one(name: str, runner) -> None:
    rt = PjRuntime()
    loop = EventLoop(rt, "edt")
    rt.create_worker("worker", 2)
    label = Label(loop)
    bar = ProgressBar(loop)
    done_evt = threading.Event()

    t0 = time.perf_counter()
    if runner is with_pragmas:
        runner(rt, loop, label, bar, done_evt)
    else:
        runner(loop, label, bar, done_evt)
    finished = done_evt.wait(timeout=30)
    elapsed = time.perf_counter() - t0

    assert finished, f"{name}: pipeline never completed"
    print(f"[{name:12s}] {elapsed * 1000:7.1f} ms  "
          f"label={label.text!r}  progress journal={[v for _, v in bar.journal]}")
    rt.shutdown(wait=False)


def main() -> None:
    print("Figure 2 pipeline (S1 bg → S2 fg → S3 bg → S4 fg), three ways:\n")
    run_one("swingworker", with_swingworker)
    run_one("executor", with_executor)
    run_one("pyjama", with_pragmas)
    print("\nSame flow; only the pyjama version reads as straight-line code.")


if __name__ == "__main__":
    main()
