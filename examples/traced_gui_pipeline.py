"""A GUI pipeline instrumented for tracing — the `repro.obs` showcase.

Run either way:

    python examples/traced_gui_pipeline.py
    python -m repro trace examples/traced_gui_pipeline.py -o trace.json

A burst of "job" events hits the EDT; each handler offloads its compute to
the worker target with the ``await`` clause, so the EDT pumps its own queue
inside the logical barrier and the interleaved "tick" events are handled
*during* the waits.  Open the resulting ``trace.json`` in Perfetto
(https://ui.perfetto.dev) or ``chrome://tracing``:

* one process track per virtual target (``edt``, ``worker``) plus ``app``;
* submit→exec flow arrows from the firing thread to the worker slices;
* ``BARRIER`` spans on the EDT with ``PUMP_STEAL`` instants inside them —
  the paper's Figure 7 behaviour, visible on a timeline.

When run standalone the script enables tracing itself and writes
``trace.json``; under ``python -m repro trace`` it detects the already-live
session and leaves recording to the CLI.
"""

import time

from repro import obs
from repro.compiler import exec_omp
from repro.core import PjRuntime
from repro.eventloop import EventLoop

HANDLER_SOURCE = '''
def make_handler(transform, results):
    def on_job(event):
        #omp target virtual(worker) await
        if True:
            out = transform(event.payload)
        results.append(out)
    return on_job
'''


def transform(payload: int) -> int:
    time.sleep(0.004)  # the "download"
    return sum(i * i for i in range(5_000)) ^ payload  # the "processing"


def run_pipeline(jobs: int = 8, ticks_every: int = 2) -> None:
    rt = PjRuntime()
    loop = EventLoop(rt, "edt")
    rt.create_worker("worker", 2)

    results: list[int] = []
    ticks: list[int] = []
    ns = exec_omp(HANDLER_SOURCE, runtime=rt)
    loop.on("job", ns["make_handler"](transform, results))
    loop.on("tick", lambda event: ticks.append(event.payload))

    for i in range(jobs):
        loop.fire("job", i)
        if i % ticks_every == 0:
            loop.fire("tick", i)  # should be stolen during a barrier pump

    assert loop.wait_all_finished(timeout=30)
    rt.shutdown(wait=True)

    print(f"jobs completed      : {len(results)}/{jobs}")
    print(f"ticks handled       : {len(ticks)}")


def main() -> None:
    standalone = not obs.is_enabled()
    if standalone:
        obs.enable()
    try:
        run_pipeline()
    finally:
        if standalone:
            obs.disable()
    if standalone:
        events = obs.session().events()
        obs.write_chrome_trace("trace.json", events)
        print(f"trace written       : trace.json ({len(events)} events)")
        print()
        print(obs.format_metrics(obs.compute_metrics(events)))


if __name__ == "__main__":
    main()
