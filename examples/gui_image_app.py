"""The paper's Figure 6 application, end to end on real threads.

Run:  python examples/gui_image_app.py

A (headless) GUI app: clicking the button kicks off a "download + image
processing" pipeline.  Two handler versions are compared under a burst of
clicks:

* ``sequential`` — everything on the EDT (pragmas ignored, as a
  non-supporting compiler would);
* ``pyjama`` — the compiled version: compute offloaded to the worker
  virtual target, GUI updates hopping back to the EDT.

The app prints each event's response time and — the paper's point — how
quickly the EDT handled an unrelated "quick" event fired mid-burst.
"""

import time

from repro.compiler import exec_omp
from repro.core import PjRuntime
from repro.eventloop import Button, EventLoop, Panel
from repro.kernels import raytracer

HANDLER_SOURCE = '''
def make_handler(panel, get_hash_code, download_and_compute):
    def button_on_click(event):
        panel.show_msg("Started EDT handling")
        info = panel.collect_input()
        #omp target virtual(worker) nowait
        if True:
            hscode = get_hash_code(info)
            img = download_and_compute(hscode)
            #omp target virtual(edt) nowait
            if True:
                panel.display_img(img)
                panel.show_msg("Finished!")
                event.record.mark_finished()
    return button_on_click
'''

SCENE = raytracer.default_scene(16)


def get_hash_code(info) -> int:
    return hash(str(info)) & 0xFFFF


def download_and_compute(hscode: int):
    time.sleep(0.01)  # the network download
    image = raytracer.render(SCENE, width=24, height=24)  # the processing
    return f"image(checksum={raytracer.checksum(image):.2f})"


def run_version(name: str, use_pragmas: bool, clicks: int = 6) -> None:
    rt = PjRuntime()
    loop = EventLoop(rt, "edt")
    rt.create_worker("worker", 3)
    panel = Panel(loop)
    button = Button(loop)
    loop.invoke_and_wait(lambda: panel.set_input({"query": "sunset"}))

    if use_pragmas:
        ns = exec_omp(HANDLER_SOURCE, runtime=rt)
        handler = ns["make_handler"](panel, get_hash_code, download_and_compute)
        button.on_click(EventLoop.defer_completion(handler))
    else:
        def handler(event):  # what a non-supporting compiler executes
            panel.show_msg("Started EDT handling")
            info = panel.collect_input()
            img = download_and_compute(get_hash_code(info))
            panel.display_img(img)
            panel.show_msg("Finished!")

        button.on_click(handler)

    records = [button.click() for _ in range(clicks)]
    # An unrelated event in the middle of the burst: the responsiveness probe.
    time.sleep(0.005)
    t0 = time.perf_counter()
    probe = {}
    loop.invoke_later(lambda: probe.__setitem__("latency", time.perf_counter() - t0))

    assert loop.wait_all_finished(timeout=30)
    deadline = time.monotonic() + 5
    while "latency" not in probe and time.monotonic() < deadline:
        time.sleep(0.005)

    mean_rt = sum(r.response_time for r in records) / len(records)
    print(f"[{name}]")
    print(f"  mean click response : {mean_rt * 1000:8.1f} ms over {clicks} clicks")
    print(f"  EDT probe latency   : {probe.get('latency', float('nan')) * 1000:8.1f} ms")
    print(f"  images rendered     : {len(panel.images)}")
    rt.shutdown(wait=False)


def main() -> None:
    print("Figure 6 app: burst of clicks, download+raytrace per click\n")
    run_version("sequential (pragmas ignored)", use_pragmas=False)
    run_version("pyjama (compiled pragmas)   ", use_pragmas=True)
    print(
        "\nNote: identical code modulo comments; with pragmas compiled, the "
        "EDT probe is answered immediately while the renders run in the pool."
    )


if __name__ == "__main__":
    main()
