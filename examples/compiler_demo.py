"""Source-to-source compilation, shown the way the paper shows it (§IV-A).

Run:  python examples/compiler_demo.py

Prints the generated code for the paper's running example — the compiler
lifts each target block into a region function (Pyjama's ``TargetRegion``
classes) and replaces it with a runtime dispatch call — then executes it.
"""

from repro.compiler import compile_source, exec_omp
from repro.core import PjRuntime

PAPER_SNIPPET = '''
def handler(label, compute_half1, compute_half2):
    label.append("Start Processing Task!")
    #omp target virtual(worker) await
    if True:
        s1 = compute_half1()
        #omp target virtual(edt) nowait
        label.append("Task half finished")
        s3 = compute_half2()
    label.append(f"Task finished: {s1 + s3}")
'''

CLASSIC_COMBO = '''
def norm(vector):
    total = 0.0
    #omp parallel for num_threads(4) schedule(static) reduction(+:total)
    for x in vector:
        total += x * x
    return total ** 0.5
'''


def show(title: str, source: str) -> None:
    print(f"═══ {title} " + "═" * max(0, 60 - len(title)))
    print("--- input " + "-" * 50)
    print(source.strip())
    print("--- generated " + "-" * 46)
    print(compile_source(source))
    print()


def main() -> None:
    show("paper §IV-A target blocks", PAPER_SNIPPET)
    show("classic fork-join combo", CLASSIC_COMBO)

    print("═══ executing both " + "═" * 41)
    rt = PjRuntime()
    rt.start_edt("edt")
    rt.create_worker("worker", 3)

    ns = exec_omp(PAPER_SNIPPET + CLASSIC_COMBO, runtime=rt)
    label: list[str] = []
    # Run the handler on the EDT, exactly as an event framework would.
    rt.invoke_target_block(
        "edt",
        lambda: ns["handler"](label, lambda: 20, lambda: 22),
        "nowait",
    ).wait(timeout=10)
    import time

    time.sleep(0.1)  # let the nowait EDT update land
    print("label journal:", label)
    print("norm([3,4])  :", ns["norm"]([3.0, 4.0]))
    rt.shutdown()


if __name__ == "__main__":
    main()
