"""Quickstart: the event-driven OpenMP extension in five minutes.

Run:  python examples/quickstart.py

Covers: creating virtual targets (paper Table II), the four scheduling
clauses (Table I), the decorator API, and the source-to-source compiler.
"""

import time

from repro.compiler import compiled_source_of, omp
from repro.core import (
    PjRuntime,
    on_target,
    run_on,
    wait_for,
)


def main() -> None:
    rt = PjRuntime()

    # --- Table II: register the executors -------------------------------
    rt.create_worker("worker", 4)           # virtual_target_create_worker
    rt.start_edt("edt")                    # a headless event-dispatch thread

    # --- default clause: offload and wait --------------------------------
    handle = run_on("worker", lambda: sum(range(1_000_00)), runtime=rt)
    print(f"default  : result={handle.result()} (caller waited)")

    # --- nowait: fire and forget -----------------------------------------
    handle = run_on(
        "worker", lambda: time.sleep(0.05) or "finished-later",
        mode="nowait", runtime=rt,
    )
    print(f"nowait   : returned immediately, done={handle.done}")
    print(f"           ... later: {handle.result(timeout=2)}")

    # --- name_as + wait: join a named task group --------------------------
    results = []
    for i in range(4):
        run_on(
            "worker", lambda i=i: results.append(i * i),
            mode="name_as", tag="squares", runtime=rt,
        )
    wait_for("squares", runtime=rt)
    print(f"name_as  : group finished, results={sorted(results)}")

    # --- decorator API -----------------------------------------------------
    @on_target("worker", runtime=rt)
    def heavy(n: int) -> int:
        return sum(i * i for i in range(n))

    print(f"decorator: heavy(1000)={heavy(1000)} (ran on the pool)")

    # --- the compiler: pragmas in plain Python ----------------------------
    @omp(runtime=rt)
    def pragma_demo(n):
        total = 0
        #omp parallel for num_threads(4) reduction(+:total)
        for i in range(n):
            total += i
        #omp target virtual(worker)
        message = f"sum(0..{n}) = {total}"
        return message

    print(f"compiler : {pragma_demo(100)}")
    print("--- generated code (excerpt) ---")
    for line in compiled_source_of(pragma_demo).splitlines()[:12]:
        print("   ", line)

    rt.shutdown()
    print("done.")


if __name__ == "__main__":
    main()
