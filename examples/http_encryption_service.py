"""The paper's §V-B scenario: an HTTP-style encryption service.

Run:  python examples/http_encryption_service.py

Part 1 — a real-thread miniature of the service: requests carry byte
payloads, handlers encrypt with the IDEA (Crypt) kernel on a worker virtual
target, and a closed loop of clients measures throughput.

Part 2 — the virtual-time Figure 9 sweep: throughput vs worker threads for
Jetty-style vs Pyjama-style servers, with and without per-request
``omp parallel``.
"""

import threading
import time

import numpy as np

from repro.core import PjRuntime
from repro.kernels import crypt
from repro.sim import HttpBenchConfig, run_http_benchmark


def part1_real_threads(n_clients: int = 8, requests_each: int = 5) -> None:
    print("Part 1: real-thread encryption service (Crypt kernel)")
    rt = PjRuntime()
    rt.create_worker("http-workers", 4)
    key = crypt.generate_key()
    ek = crypt.encryption_subkeys(key)
    dk = crypt.decryption_subkeys(ek)

    completed = []
    lock = threading.Lock()

    def serve(payload: np.ndarray):
        """One request: encrypt on the worker target, return ciphertext."""
        return rt.invoke_target_block(
            "http-workers", lambda: crypt.encrypt(payload, ek), "nowait"
        )

    def client(cid: int) -> None:
        rng = np.random.default_rng(cid)
        for _ in range(requests_each):
            payload = rng.integers(0, 256, size=8 * 2048, dtype=np.uint8)
            response = serve(payload).result(timeout=30)
            # Verify the service's answer like a paranoid client would.
            assert np.array_equal(crypt.decrypt(response, dk), payload)
            with lock:
                completed.append(cid)

    t0 = time.perf_counter()
    threads = [threading.Thread(target=client, args=(c,)) for c in range(n_clients)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - t0
    total = len(completed)
    print(f"  {total} requests by {n_clients} clients in {elapsed:.2f}s "
          f"→ {total / elapsed:.1f} responses/sec (GIL-bound; shape only)")
    rt.shutdown()


def part2_figure9_sweep() -> None:
    print("\nPart 2: Figure 9 on the virtual-time 16-core machine")
    workers = [1, 2, 4, 8, 16, 32]
    print(f"  {'workers':>8} | {'jetty':>7} | {'pyjama':>7} | {'jetty+par':>9} | {'pyjama+par':>10}")
    for w in workers:
        row = []
        for server, par in (("jetty", None), ("pyjama", None),
                            ("jetty", 8), ("pyjama", 8)):
            r = run_http_benchmark(
                HttpBenchConfig(server=server, worker_threads=w, parallel_threads=par)
            )
            row.append(r.throughput)
        print(f"  {w:>8} | {row[0]:>7.1f} | {row[1]:>7.1f} | {row[2]:>9.1f} | {row[3]:>10.1f}")
    print("  (responses/sec; parallel variants level off just under 50)")


def main() -> None:
    part1_real_threads()
    part2_figure9_sweep()


if __name__ == "__main__":
    main()
