"""The paper's future work, realised: virtual targets inside asyncio.

Run:  python examples/asyncio_integration.py

The conclusion of the paper names two extensions: supporting more
event-driven frameworks, and integrating non-blocking/asynchronous I/O.
This example registers an asyncio event loop as the EDT virtual target and
drives the Figure 6 pipeline from a coroutine:

* blocking "downloads" run on a worker virtual target via
  ``run_blocking_io`` (the loop keeps serving other coroutines);
* the CPU kernel (MonteCarlo) runs on the worker target and is awaited with
  ``as_future`` — the coroutine spelling of the ``await`` clause;
* "widget" updates are posted back with ``target virtual(edt)`` semantics
  and verified to run on the loop thread.
"""

import asyncio
import threading
import time

from repro.adapters import as_future, register_asyncio_edt, run_blocking_io
from repro.core import PjRuntime
from repro.kernels import montecarlo


class LoopConfinedLabel:
    """A widget-like object that only accepts updates on the loop thread."""

    def __init__(self) -> None:
        self.loop_thread = threading.current_thread()
        self.lines: list[str] = []

    def set_text(self, text: str) -> None:
        assert threading.current_thread() is self.loop_thread, (
            "widget touched off the event loop!"
        )
        self.lines.append(text)
        print(f"  [label] {text}")


def fake_download(name: str) -> bytes:
    time.sleep(0.05)  # blocking I/O stand-in
    return f"payload:{name}".encode()


def price_simulation(seed: int) -> float:
    cfg = montecarlo.MonteCarloConfig(n_paths=150, seed=seed)
    return montecarlo.run(cfg).mean_final_price


async def handle_request(rt: PjRuntime, label: LoopConfinedLabel, name: str) -> float:
    label.set_text(f"request {name}: started")

    payload = await run_blocking_io(rt, "worker", fake_download, name)
    label.set_text(f"request {name}: downloaded {len(payload)} bytes")

    handle = rt.invoke_target_block(
        "worker", lambda: price_simulation(len(payload)), "nowait"
    )
    price = await as_future(handle)  # the await clause, coroutine-style

    # target virtual(edt)-equivalent: we're already on the loop -> inline.
    rt.invoke_target_block("edt", lambda: label.set_text(
        f"request {name}: price {price:.2f}"
    ))
    return price


async def heartbeat(beats: list) -> None:
    """Proof of responsiveness: ticks while downloads/kernels run."""
    for _ in range(10):
        beats.append(asyncio.get_running_loop().time())
        await asyncio.sleep(0.02)


async def main() -> None:
    rt = PjRuntime()
    rt.create_worker("worker", 4)
    register_asyncio_edt(rt, "edt")
    await asyncio.sleep(0)  # let the loop thread register as the EDT

    label = LoopConfinedLabel()
    beats: list = []

    t0 = time.perf_counter()
    results = await asyncio.gather(
        handle_request(rt, label, "alpha"),
        handle_request(rt, label, "beta"),
        handle_request(rt, label, "gamma"),
        heartbeat(beats),
    )
    elapsed = time.perf_counter() - t0

    print(f"\n3 requests handled concurrently in {elapsed * 1000:.0f} ms "
          f"(serial would be ≥ {3 * 50:.0f} ms of I/O alone)")
    print(f"heartbeat ticked {len(beats)} times while requests ran")
    print(f"prices: {[f'{p:.2f}' for p in results[:3]]}")
    rt.shutdown(wait=False)


if __name__ == "__main__":
    asyncio.run(main())
