"""Every ``repro.*`` dotted name the docs mention must actually exist.

Docs drift silently: a renamed function or module keeps its markdown
mentions until a reader trips over them.  This test extracts every
``repro.something[.more]`` reference from the documentation set and resolves
it — import the longest importable module prefix, then getattr the rest.
"""

from __future__ import annotations

import importlib
import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parents[1]
DOC_FILES = sorted(
    [
        REPO / "README.md",
        REPO / "DESIGN.md",
        REPO / "CONTRIBUTING.md",
        *(REPO / "docs").glob("*.md"),
    ]
)

_NAME = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")


def _documented_names() -> dict[str, list[str]]:
    """name -> list of files mentioning it."""
    seen: dict[str, list[str]] = {}
    for path in DOC_FILES:
        text = path.read_text()
        for match in _NAME.finditer(text):
            seen.setdefault(match.group(0), []).append(path.name)
    return seen


def _resolve(dotted: str) -> None:
    """Import/getattr *dotted*; raises if any component is missing."""
    parts = dotted.split(".")
    obj = None
    mod_end = 0
    for i in range(len(parts), 0, -1):
        try:
            obj = importlib.import_module(".".join(parts[:i]))
            mod_end = i
            break
        except ImportError:
            continue
    if obj is None:
        raise ImportError(f"no importable prefix of {dotted!r}")
    for attr in parts[mod_end:]:
        obj = getattr(obj, attr)


def test_doc_files_exist():
    for path in DOC_FILES:
        assert path.exists(), path


def test_docs_mention_resolvable_symbols():
    names = _documented_names()
    assert names, "no repro.* references found in any doc — extraction broke?"
    failures = []
    for dotted, files in sorted(names.items()):
        try:
            _resolve(dotted)
        except (ImportError, AttributeError) as exc:
            failures.append(f"{dotted} (in {', '.join(sorted(set(files)))}): {exc}")
    assert not failures, "documented names that do not resolve:\n" + "\n".join(failures)


@pytest.mark.parametrize(
    "dotted",
    [
        "repro.core.PjRuntime",
        "repro.core.PjRuntime.invoke_target_block",
        "repro.bench.run_benchmark",
        "repro.bench.compare",
        "repro.obs.enable",
        "repro.openmp.task",
    ],
)
def test_key_api_names_resolve(dotted):
    """A hand-picked floor under the extraction test: even if the docs stop
    mentioning these, the public API must keep them."""
    _resolve(dotted)
