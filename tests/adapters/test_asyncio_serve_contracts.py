"""Satellite contracts the serve subsystem leans on in the asyncio adapter.

* rejection is *structured*: a full bounded queue raises
  :class:`QueueFullError` carrying the target name, capacity and policy,
  so an admission layer (the HTTP 503 mapping) never parses messages;
* ``caller_runs`` landing on the event-loop thread is legal but hazardous
  — the adapter logs a warning naming the region and the better options;
* ``shutdown(wait=True)`` with stuck in-flight regions downgrades to
  cancellation after a drain grace instead of deadlocking, and says so
  with a ``describe()`` diagnostic.
"""

from __future__ import annotations

import asyncio
import logging
import time

import pytest

from repro import obs
from repro.adapters import register_asyncio_edt
from repro.core import PjRuntime, QueueFullError
from repro.core import injection
from repro.core.region import RegionState, TargetRegion

_ADAPTER_LOGGER = "repro.adapters.asyncio_target"


@pytest.fixture(autouse=True)
def _clean():
    obs.disable()
    obs.session().clear()
    injection.uninstall()
    yield
    obs.disable()
    obs.session().clear()
    injection.uninstall()


@pytest.fixture()
def rt():
    runtime = PjRuntime()
    yield runtime
    runtime.shutdown(wait=False)


class _AlwaysFull:
    def __call__(self, owner: str) -> bool:
        return True


class TestStructuredRejection:
    def test_reject_error_carries_name_capacity_policy(self, rt):
        injection.install(injection.InjectionHooks(force_queue_full=_AlwaysFull()))

        async def main():
            target = register_asyncio_edt(
                rt, "aio", queue_capacity=3, rejection_policy="reject"
            )
            await asyncio.sleep(0)
            with pytest.raises(QueueFullError) as exc_info:
                target.post(TargetRegion(lambda: None, name="r1"))
            return exc_info.value

        exc = asyncio.run(main())
        assert exc.name == "aio"
        assert exc.capacity == 3
        assert exc.policy == "reject"

    def test_block_timeout_error_carries_block_policy(self, rt):
        injection.install(injection.InjectionHooks(force_queue_full=_AlwaysFull()))

        async def main():
            target = register_asyncio_edt(
                rt, "aio", queue_capacity=2, rejection_policy="block"
            )
            await asyncio.sleep(0)
            with pytest.raises(QueueFullError) as exc_info:
                target.post(TargetRegion(lambda: None, name="r1"),
                            timeout=0.05)
            return exc_info.value, target.stats["rejected"]

        exc, rejected = asyncio.run(main())
        assert exc.policy == "block"
        assert exc.name == "aio"
        assert rejected == 1  # a blown block-timeout counts as a rejection


class TestCallerRunsOnLoopWarning:
    def test_caller_runs_on_the_loop_thread_warns(self, rt, caplog):
        injection.install(injection.InjectionHooks(force_queue_full=_AlwaysFull()))

        async def main():
            target = register_asyncio_edt(
                rt, "aio", queue_capacity=2, rejection_policy="caller_runs"
            )
            await asyncio.sleep(0)
            region = TargetRegion(lambda: "inline", name="loop-hazard")
            target.post(region)  # full -> caller_runs on the loop thread
            return region.result(timeout=1)

        with caplog.at_level(logging.WARNING, logger=_ADAPTER_LOGGER):
            assert asyncio.run(main()) == "inline"
        hazard = [r for r in caplog.records
                  if "event loop thread" in r.message]
        assert hazard, "expected a caller_runs-on-loop hazard warning"
        assert "loop-hazard" in hazard[0].message

    def test_caller_runs_off_loop_does_not_warn(self, rt, caplog):
        injection.install(injection.InjectionHooks(force_queue_full=_AlwaysFull()))

        async def main():
            target = register_asyncio_edt(
                rt, "aio", queue_capacity=2, rejection_policy="caller_runs"
            )
            await asyncio.sleep(0)
            region = TargetRegion(lambda: "inline", name="off-loop")
            # Post from a foreign (executor) thread: inline execution there
            # is exactly what caller_runs promises; no hazard.
            await asyncio.get_running_loop().run_in_executor(
                None, target.post, region
            )
            return region.result(timeout=1)

        with caplog.at_level(logging.WARNING, logger=_ADAPTER_LOGGER):
            assert asyncio.run(main()) == "inline"
        assert not [r for r in caplog.records
                    if "event loop thread" in r.message]


class TestDrainDeadline:
    def test_shutdown_wait_downgrades_after_grace(self, rt, caplog):
        """A shutdown(wait=True) whose in-flight region cannot run (the
        loop is busy) must give up after the drain grace, cancel the
        region, and leave a diagnostic — not deadlock the caller."""

        async def main():
            target = register_asyncio_edt(rt, "aio")
            target._drain_grace = 0.2
            await asyncio.sleep(0)
            region = TargetRegion(lambda: "never", name="stuck")
            target.post(region)  # queued behind the current callback
            waiter = asyncio.get_running_loop().run_in_executor(
                None, lambda: target.shutdown(wait=True)
            )
            t0 = time.monotonic()
            # Block the loop so the region's callback cannot run and the
            # off-loop shutdown has to hit its drain deadline.
            time.sleep(0.6)
            await waiter
            return region, target.stats, time.monotonic() - t0

        with caplog.at_level(logging.WARNING, logger=_ADAPTER_LOGGER):
            region, stats, elapsed = asyncio.run(main())
        assert region.state is RegionState.CANCELLED
        assert stats["cancelled_on_shutdown"] == 1
        assert elapsed < 5.0  # returned at the grace, not the default ack
        downgrades = [r for r in caplog.records
                      if "did not drain" in r.message]
        assert downgrades, "expected the drain-downgrade warning"
        assert "aio" in downgrades[0].message

    def test_shutdown_wait_clean_drain_does_not_warn(self, rt, caplog):
        async def main():
            target = register_asyncio_edt(rt, "aio")
            await asyncio.sleep(0)
            region = TargetRegion(lambda: "ok", name="r1")
            target.post(region)
            await asyncio.sleep(0.05)  # let it run
            await asyncio.get_running_loop().run_in_executor(
                None, lambda: target.shutdown(wait=True)
            )
            return region.result(timeout=1)

        with caplog.at_level(logging.WARNING, logger=_ADAPTER_LOGGER):
            assert asyncio.run(main()) == "ok"
        assert not [r for r in caplog.records
                    if "did not drain" in r.message]
