"""Tests for the asyncio adapter (the paper's future-work item)."""

import asyncio
import threading
import time

import pytest

from repro.adapters import as_future, register_asyncio_edt, run_blocking_io
from repro.core import PjRuntime, RegionFailedError, RuntimeStateError, TargetShutdownError


@pytest.fixture()
def rt():
    runtime = PjRuntime()
    runtime.create_worker("worker", 2)
    yield runtime
    runtime.shutdown(wait=False)


def run_async(coro):
    return asyncio.run(coro)


class TestRegistration:
    def test_loop_thread_becomes_member(self, rt):
        async def main():
            target = register_asyncio_edt(rt, "aio")
            await asyncio.sleep(0)  # let the bind callback run
            return target.contains(), threading.current_thread()

        contains, loop_thread = run_async(main())
        assert contains
        assert loop_thread is threading.current_thread()

    def test_post_from_worker_lands_on_loop(self, rt):
        async def main():
            register_asyncio_edt(rt, "aio")
            await asyncio.sleep(0)
            loop_thread = threading.current_thread()
            seen = []
            done = asyncio.Event()

            def worker_side():
                # From the pool: dispatch a GUI-style update to the loop.
                rt.invoke_target_block(
                    "aio",
                    lambda: (seen.append(threading.current_thread()), done.set()),
                    "nowait",
                )

            rt.invoke_target_block("worker", worker_side, "nowait")
            await asyncio.wait_for(done.wait(), timeout=5)
            return seen, loop_thread

        seen, loop_thread = run_async(main())
        assert seen == [loop_thread]

    def test_inline_when_already_on_loop(self, rt):
        async def main():
            register_asyncio_edt(rt, "aio")
            await asyncio.sleep(0)
            h = rt.invoke_target_block("aio", threading.current_thread)
            return h.result()

        assert run_async(main()) is threading.current_thread()

    def test_await_mode_rejected_from_loop(self, rt):
        async def main():
            register_asyncio_edt(rt, "aio")
            await asyncio.sleep(0)
            with pytest.raises(RuntimeStateError, match="as_future"):
                rt.invoke_target_block("worker", lambda: 1, "await")

        run_async(main())

    def test_process_one_rejected(self, rt):
        async def main():
            target = register_asyncio_edt(rt, "aio")
            await asyncio.sleep(0)
            with pytest.raises(RuntimeStateError):
                target.process_one()

        run_async(main())

    def test_post_after_shutdown(self, rt):
        async def main():
            target = register_asyncio_edt(rt, "aio")
            await asyncio.sleep(0)
            target.shutdown()
            with pytest.raises(TargetShutdownError):
                target.post(lambda: None)

        run_async(main())


class TestAsFuture:
    def test_awaiting_worker_result(self, rt):
        async def main():
            register_asyncio_edt(rt, "aio")
            h = rt.invoke_target_block("worker", lambda: 6 * 7, "nowait")
            return await as_future(h)

        assert run_async(main()) == 42

    def test_loop_stays_responsive_while_awaiting(self, rt):
        """The coroutine spelling of the logical barrier: other coroutines
        run while the offloaded block computes."""

        async def main():
            register_asyncio_edt(rt, "aio")
            ticks = []

            async def ticker():
                for _ in range(5):
                    ticks.append(time.perf_counter())
                    await asyncio.sleep(0.01)

            tick_task = asyncio.ensure_future(ticker())
            h = rt.invoke_target_block(
                "worker", lambda: (time.sleep(0.15), "slow-result")[1], "nowait"
            )
            result = await as_future(h)
            await tick_task
            return result, ticks

        result, ticks = run_async(main())
        assert result == "slow-result"
        assert len(ticks) == 5  # ticker made progress during the block

    def test_exception_propagates(self, rt):
        async def main():
            register_asyncio_edt(rt, "aio")
            h = rt.invoke_target_block("worker", lambda: 1 / 0, "nowait")
            with pytest.raises(RegionFailedError):
                await as_future(h)

        run_async(main())

    def test_cancelled_future_is_safe(self, rt):
        async def main():
            register_asyncio_edt(rt, "aio")
            gate = threading.Event()
            h = rt.invoke_target_block("worker", gate.wait, "nowait")
            fut = as_future(h)
            fut.cancel()
            gate.set()
            h.wait(timeout=5)
            await asyncio.sleep(0.05)  # resolve callback must not explode
            return fut.cancelled()

        assert run_async(main())


class TestRunBlockingIo:
    def test_offloads_and_returns(self, rt):
        def blocking_read(path_like):
            time.sleep(0.02)  # pretend disk latency
            return f"contents-of-{path_like}"

        async def main():
            register_asyncio_edt(rt, "aio")
            return await run_blocking_io(rt, "worker", blocking_read, "data.bin")

        assert run_async(main()) == "contents-of-data.bin"

    def test_concurrent_io_overlaps(self, rt):
        async def main():
            register_asyncio_edt(rt, "aio")
            t0 = time.perf_counter()
            results = await asyncio.gather(
                run_blocking_io(rt, "worker", lambda: (time.sleep(0.1), "a")[1]),
                run_blocking_io(rt, "worker", lambda: (time.sleep(0.1), "b")[1]),
            )
            return results, time.perf_counter() - t0

        results, elapsed = run_async(main())
        assert results == ["a", "b"]
        assert elapsed < 0.19  # the two 100 ms sleeps overlapped

    def test_io_error_propagates(self, rt):
        async def main():
            register_asyncio_edt(rt, "aio")
            with pytest.raises(RegionFailedError) as ei:
                await run_blocking_io(rt, "worker", lambda: open("/nonexistent-path-xyz"))
            return ei.value

        err = run_async(main())
        assert isinstance(err.cause, FileNotFoundError)
