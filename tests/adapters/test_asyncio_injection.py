"""Injection seam coverage for the asyncio adapter's post path.

``AsyncioEdtTarget.post`` bypasses the base ``_TargetQueue`` entirely, so
every seam the stress/exploration harnesses rely on has to be wired into
the adapter by hand.  These tests pin that wiring: the ``"post"`` seam
fires on this path, ``force_queue_full`` drives the rejection policies for
bounded adapters, and an unbounded adapter never consults the hook.
"""

from __future__ import annotations

import asyncio

import pytest

from repro import obs
from repro.adapters import register_asyncio_edt
from repro.core import PjRuntime, QueueFullError
from repro.core import injection
from repro.core.region import TargetRegion


@pytest.fixture(autouse=True)
def _clean():
    obs.disable()
    obs.session().clear()
    injection.uninstall()
    yield
    obs.disable()
    obs.session().clear()
    injection.uninstall()


@pytest.fixture()
def rt():
    runtime = PjRuntime()
    yield runtime
    runtime.shutdown(wait=False)


def run_async(coro):
    return asyncio.run(coro)


class _FullHook:
    def __init__(self, verdict: bool = True) -> None:
        self.verdict = verdict
        self.calls: list[str] = []

    def __call__(self, owner: str) -> bool:
        self.calls.append(owner)
        return self.verdict


class TestPostSeam:
    def test_region_post_crosses_the_seam(self, rt):
        crossings: list[tuple[str, str]] = []
        injection.install(injection.InjectionHooks(
            decision=lambda point, name: crossings.append((point, name))
        ))

        async def main():
            target = register_asyncio_edt(rt, "aio")
            await asyncio.sleep(0)
            region = TargetRegion(lambda: "ok", name="r1")
            target.post(region)
            await asyncio.sleep(0)
            return region.result(timeout=5)

        assert run_async(main()) == "ok"
        assert ("post", "aio") in crossings

    def test_callable_post_crosses_the_seam(self, rt):
        # The bare-callable branch shares the entry; it must not dodge the
        # seam just because it skips the admission machinery.
        crossings: list[tuple[str, str]] = []
        injection.install(injection.InjectionHooks(
            decision=lambda point, name: crossings.append((point, name))
        ))

        async def main():
            target = register_asyncio_edt(rt, "aio")
            await asyncio.sleep(0)
            done = asyncio.Event()
            target.post(done.set)
            await asyncio.wait_for(done.wait(), timeout=5)

        run_async(main())
        assert ("post", "aio") in crossings


class TestForcedFull:
    def test_unbounded_adapter_never_consults_the_hook(self, rt):
        hook = _FullHook(verdict=True)
        injection.install(injection.InjectionHooks(force_queue_full=hook))

        async def main():
            target = register_asyncio_edt(rt, "aio")
            await asyncio.sleep(0)
            region = TargetRegion(lambda: "ok", name="r1")
            target.post(region)
            await asyncio.sleep(0)
            return region.result(timeout=5)

        assert run_async(main()) == "ok"
        assert hook.calls == []

    def test_bounded_reject_policy(self, rt):
        hook = _FullHook(verdict=True)
        injection.install(injection.InjectionHooks(force_queue_full=hook))

        async def main():
            target = register_asyncio_edt(
                rt, "aio", queue_capacity=4, rejection_policy="reject"
            )
            await asyncio.sleep(0)
            with pytest.raises(QueueFullError):
                target.post(TargetRegion(lambda: None, name="r1"))
            return target.stats["rejected"]

        assert run_async(main()) == 1
        assert hook.calls == ["aio"]

    def test_bounded_caller_runs_policy(self, rt):
        hook = _FullHook(verdict=True)
        injection.install(injection.InjectionHooks(force_queue_full=hook))

        async def main():
            target = register_asyncio_edt(
                rt, "aio", queue_capacity=4, rejection_policy="caller_runs"
            )
            await asyncio.sleep(0)
            region = TargetRegion(lambda: "inline", name="r1")
            target.post(region)  # forced full: runs in the posting thread
            return region.result(timeout=1), target.stats["caller_runs"]

        result, caller_runs = run_async(main())
        assert result == "inline"
        assert caller_runs == 1
        assert hook.calls == ["aio"]

    def test_bounded_caller_runs_drops_corpse(self, rt):
        # Satellite-1 contract, adapter side: a region cancelled before the
        # forced-full verdict must not take the caller_runs path.
        hook = _FullHook(verdict=True)
        injection.install(injection.InjectionHooks(force_queue_full=hook))

        async def main():
            target = register_asyncio_edt(
                rt, "aio", queue_capacity=4, rejection_policy="caller_runs"
            )
            await asyncio.sleep(0)
            region = TargetRegion(lambda: "never", name="r1")
            region.cancel()
            target.post(region)  # corpse: silent no-op
            return target.stats["caller_runs"]

        assert run_async(main()) == 0
        assert hook.calls == ["aio"]
