"""EXEC_END must record what actually happened — regression tests for the
bug where a plain callable that raised was still traced as ``completed``
(the dispatch loop swallows the exception by design, but the trace must
not inherit the lie)."""

from __future__ import annotations

import logging

import pytest

from repro.core.region import TargetRegion
from repro.core.targets import EdtTarget
from repro.obs.events import EventKind


@pytest.fixture()
def edt():
    t = EdtTarget("outcome-edt")
    t.register_current_thread()
    yield t
    t._exit_member()


def exec_ends(session, name):
    return [
        e for e in session.events()
        if e.kind is EventKind.EXEC_END and e.name == name
    ]


def test_raising_callable_traced_as_failed(tracing, edt, caplog):
    def boom():
        raise RuntimeError("deliberate")

    boom._trace_id = -7
    boom._trace_name = "boom"
    edt.post(boom)
    with caplog.at_level(logging.CRITICAL, logger="repro.core.targets"):
        assert edt.drain() == 1
    ends = exec_ends(tracing, "boom")
    assert [e.arg for e in ends] == ["failed"]
    assert ends[0].region == -7


def test_successful_callable_traced_as_completed(tracing, edt):
    ok = lambda: None  # noqa: E731
    ok._trace_id = -8
    ok._trace_name = "ok"
    edt.post(ok)
    edt.drain()
    assert [e.arg for e in exec_ends(tracing, "ok")] == ["completed"]


def test_failing_region_traced_as_failed(tracing, edt):
    region = TargetRegion(lambda: 1 / 0, name="div")
    edt.post(region)
    edt.drain()
    assert [e.arg for e in exec_ends(tracing, "div")] == ["failed"]
    assert region.exception is not None


def test_cancelled_corpse_gets_no_exec_span(tracing, edt):
    region = TargetRegion(lambda: None, name="corpse")
    edt.post(region)
    region.cancel()
    edt.drain()
    kinds = [e.kind for e in tracing.events() if e.name == "corpse"]
    assert EventKind.DEQUEUE in kinds
    assert EventKind.EXEC_BEGIN not in kinds
    assert EventKind.EXEC_END not in kinds
