"""Latency aggregation: percentile math on synthetic streams, end-to-end
sanity on a real run, and the diagnostic_dump integration."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.obs import (
    EventKind,
    LatencyStats,
    TraceEvent,
    compute_metrics,
    format_metrics,
)


def _ev(kind, ts, *, target="w", region=0, thread="t", name=None, arg=None):
    return TraceEvent(kind, ts, thread, target, region, name, arg)


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats.from_ns([])
        assert stats.count == 0
        assert stats.p99 == 0.0

    def test_single_sample(self):
        stats = LatencyStats.from_ns([2_000_000])
        assert stats.count == 1
        assert stats.mean == stats.p50 == stats.p99 == stats.max == 2.0

    def test_percentiles_on_uniform_ramp(self):
        # 1..100 ms: p50 interpolates to 50.5, p95 to 95.05, max is 100.
        stats = LatencyStats.from_ns([i * 1_000_000 for i in range(1, 101)])
        assert stats.count == 100
        assert stats.p50 == pytest.approx(50.5)
        assert stats.p95 == pytest.approx(95.05)
        assert stats.p99 == pytest.approx(99.01)
        assert stats.max == 100.0
        assert stats.p50 <= stats.p95 <= stats.p99 <= stats.max


class TestComputeMetrics:
    def test_full_lifecycle_intervals(self):
        ns = 1_000_000  # 1 ms
        events = [
            _ev(EventKind.REGION_SUBMIT, 0 * ns),
            _ev(EventKind.ENQUEUE, 1 * ns),
            _ev(EventKind.DEQUEUE, 4 * ns),
            _ev(EventKind.EXEC_BEGIN, 5 * ns),
            _ev(EventKind.EXEC_END, 10 * ns, arg="completed"),
        ]
        m = compute_metrics(events)
        assert m.regions_seen == 1
        assert m.overall.queue_wait.mean == pytest.approx(3.0)
        assert m.overall.execution.mean == pytest.approx(5.0)
        assert m.overall.end_to_end.mean == pytest.approx(10.0)
        assert m.per_target["w"].execution.count == 1

    def test_incomplete_lifecycle_contributes_partial_intervals(self):
        ns = 1_000_000
        events = [
            _ev(EventKind.REGION_SUBMIT, 0),
            _ev(EventKind.ENQUEUE, 1 * ns),
            # dequeue/exec lost (wraparound or still running)
        ]
        m = compute_metrics(events)
        assert m.regions_seen == 1
        assert m.overall.queue_wait.count == 0
        assert m.overall.end_to_end.count == 0

    def test_barrier_events_do_not_steal_target_attribution(self):
        ns = 1_000_000
        events = [
            _ev(EventKind.REGION_SUBMIT, 0, target="worker"),
            _ev(EventKind.ENQUEUE, 1 * ns, target="worker"),
            _ev(EventKind.BARRIER_ENTER, 2 * ns, target="edt"),
            _ev(EventKind.DEQUEUE, 3 * ns, target="worker"),
            _ev(EventKind.EXEC_BEGIN, 4 * ns, target="worker"),
            _ev(EventKind.EXEC_END, 5 * ns, target="worker"),
            _ev(EventKind.BARRIER_EXIT, 6 * ns, target="edt"),
        ]
        m = compute_metrics(events)
        assert list(m.per_target) == ["worker"]

    def test_counts_inline_and_steals(self):
        events = [
            _ev(EventKind.INLINE_ELIDE, 1, region=1),
            _ev(EventKind.PUMP_STEAL, 2, region=2),
            _ev(EventKind.PUMP_STEAL, 3, region=2),
        ]
        m = compute_metrics(events)
        assert m.inline_elided == 1
        assert m.pump_steals == 2
        assert m.kind_counts["PUMP_STEAL"] == 2


def test_real_run_metrics_sane(tracing, worker_rt):
    for _ in range(10):
        worker_rt.invoke_target_block("worker", lambda: time.sleep(0.001))
    obs.disable()
    m = compute_metrics(obs.session().events())
    assert m.regions_seen == 10
    assert m.overall.execution.count == 10
    assert m.overall.execution.p50 >= 1.0  # each body slept >= 1 ms
    # end-to-end >= execution for every sample population
    assert m.overall.end_to_end.mean >= m.overall.execution.mean
    text = format_metrics(m)
    assert "queue-wait" in text and "target 'worker'" in text


def test_diagnostic_dump_reports_trace_state(tracing, worker_rt):
    worker_rt.invoke_target_block("worker", lambda: None)
    dump = worker_rt.diagnostic_dump()
    assert "trace: on" in dump
    obs.disable()
    assert "trace: off" in worker_rt.diagnostic_dump()


def test_trace_enabled_icv_proxies_global_session(rt):
    assert rt.trace_enabled_var is False
    rt.trace_enabled_var = True
    try:
        assert obs.is_enabled()
        assert rt.trace_enabled_var is True
    finally:
        rt.trace_enabled_var = False
    assert not obs.is_enabled()
