"""Trace-session isolation: the obs session is process-global, so every
test in this package gets a fresh recording window and leaves the session
disabled and empty for the rest of the suite."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _clean_session():
    obs.disable()
    obs.session().clear()
    yield
    obs.disable()
    obs.session().clear()
    obs.session().buffer_size = obs.DEFAULT_BUFFER_SIZE


@pytest.fixture()
def tracing(_clean_session):
    """An enabled trace session, torn down by ``_clean_session``."""
    return obs.enable()
