"""Chrome trace-event JSON schema checks: the file must be loadable by
Perfetto / chrome://tracing, with per-target process tracks, complete
slices, flow arrows and counters."""

from __future__ import annotations

import json
import time

import pytest

from repro import obs
from repro.obs import EventKind, to_chrome_trace, to_text_timeline, write_chrome_trace


@pytest.fixture()
def traced_run(tracing, worker_rt):
    regions = [
        worker_rt.invoke_target_block("worker", lambda: time.sleep(0.002))
        for _ in range(4)
    ]
    obs.disable()
    return regions, obs.session().events()


def test_document_shape(traced_run):
    _, events = traced_run
    doc = to_chrome_trace(events)
    assert isinstance(doc["traceEvents"], list)
    assert doc["displayTimeUnit"] == "ms"
    for entry in doc["traceEvents"]:
        assert entry["ph"] in ("M", "X", "i", "s", "f", "C")
        assert "pid" in entry and "tid" in entry
        if entry["ph"] != "M":
            assert isinstance(entry["ts"], (int, float))


def test_one_process_track_per_target(traced_run):
    _, events = traced_run
    doc = to_chrome_trace(events)
    names = {
        e["args"]["name"]
        for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "process_name"
    }
    assert "target worker" in names
    thread_meta = [
        e for e in doc["traceEvents"]
        if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    assert thread_meta  # worker threads and the posting thread are labelled


def test_exec_slices_are_complete_events(traced_run):
    regions, events = traced_run
    doc = to_chrome_trace(events)
    slices = [
        e for e in doc["traceEvents"] if e["ph"] == "X" and e["name"].startswith("run ")
    ]
    assert len(slices) == len(regions)
    for s in slices:
        assert s["dur"] > 0
        assert s["args"]["outcome"] == "completed"


def test_flow_arrows_pair_submit_to_exec(traced_run):
    _, events = traced_run
    doc = to_chrome_trace(events)
    starts = [e for e in doc["traceEvents"] if e["ph"] == "s"]
    finishes = [e for e in doc["traceEvents"] if e["ph"] == "f"]
    assert starts and len(starts) == len(finishes)
    assert {e["id"] for e in starts} == {e["id"] for e in finishes}
    for f in finishes:
        assert f["bp"] == "e"


def test_counter_tracks_queue_depth(traced_run):
    _, events = traced_run
    doc = to_chrome_trace(events)
    counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
    assert counters
    for c in counters:
        assert "depth" in c["args"]


def test_timestamps_are_relative_microseconds(traced_run):
    _, events = traced_run
    doc = to_chrome_trace(events)
    ts = [e["ts"] for e in doc["traceEvents"] if e["ph"] != "M"]
    assert min(ts) < 1000  # starts near zero, not at perf_counter epoch
    assert all(t >= 0 for t in ts)


def test_write_chrome_trace_round_trips(traced_run, tmp_path):
    _, events = traced_run
    path = tmp_path / "trace.json"
    write_chrome_trace(path, events)
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]


def test_unmatched_span_ends_are_skipped(tracing):
    # An EXEC_END whose EXEC_BEGIN was lost (ring wraparound) must not
    # produce a broken slice or crash the exporter.
    obs.emit(EventKind.EXEC_END, target="w", region=1, name="r", arg="completed")
    doc = to_chrome_trace(obs.session().events())
    assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []


def test_text_timeline_mentions_every_kind(traced_run):
    _, events = traced_run
    text = to_text_timeline(events)
    for kind in ("REGION_SUBMIT", "ENQUEUE", "DEQUEUE", "EXEC_BEGIN", "EXEC_END"):
        assert kind in text
    assert "worker" in text
