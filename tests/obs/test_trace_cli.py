"""The ``python -m repro trace`` subcommand, end to end in-process."""

from __future__ import annotations

import json

import pytest

from repro.cli import main

SCRIPT = """\
import sys

from repro.core import PjRuntime

rt = PjRuntime()
rt.create_worker("worker", 2)
for i in range(5):
    rt.invoke_target_block("worker", lambda i=i: i * i)
rt.shutdown(wait=True)
print("script-args:", sys.argv[1:])
"""


@pytest.fixture()
def script(tmp_path):
    path = tmp_path / "workload.py"
    path.write_text(SCRIPT)
    return path


def test_trace_writes_loadable_chrome_json(script, tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", str(script), "-o", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["traceEvents"]
    phases = {e["ph"] for e in doc["traceEvents"]}
    assert {"M", "X"} <= phases
    captured = capsys.readouterr()
    assert "wrote" in captured.out
    assert "perfetto" in captured.out.lower()


def test_trace_forwards_script_args(script, tmp_path, capsys):
    out = tmp_path / "trace.json"
    assert main(["trace", str(script), "hello", "world", "-o", str(out)]) == 0
    assert "script-args: ['hello', 'world']" in capsys.readouterr().out


def test_trace_timeline_and_metrics_flags(script, tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = main(["trace", str(script), "-o", str(out), "--timeline", "--metrics"])
    assert code == 0
    captured = capsys.readouterr().out
    assert "EXEC_BEGIN" in captured  # timeline lines
    assert "queue-wait" in captured  # metrics table
    assert "p95" in captured


def test_trace_buffer_option_caps_retention(tmp_path, capsys):
    busy = tmp_path / "busy.py"
    busy.write_text(SCRIPT)
    out = tmp_path / "trace.json"
    assert main(["trace", str(busy), "-o", str(out), "--buffer", "4"]) == 0
    assert "dropped" in capsys.readouterr().out


def test_trace_missing_script_fails_cleanly(tmp_path):
    assert main(["trace", str(tmp_path / "nope.py"), "-o", str(tmp_path / "t.json")]) == 2


def test_trace_keeps_trace_on_script_exit(tmp_path, capsys):
    path = tmp_path / "exiting.py"
    path.write_text(SCRIPT + "sys.exit(3)\n")
    out = tmp_path / "trace.json"
    assert main(["trace", str(path), "-o", str(out)]) == 0
    assert out.exists()
    assert "exited with 3" in capsys.readouterr().err
