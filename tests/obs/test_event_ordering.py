"""Causal-ordering invariants of the instrumented runtime: the merged,
time-sorted stream must tell the same story Algorithm 1 executed."""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.core import PjRuntime
from repro.core.errors import QueueFullError
from repro.obs import EventKind, TraceEvent

LIFECYCLE = [
    EventKind.REGION_SUBMIT,
    EventKind.ENQUEUE,
    EventKind.DEQUEUE,
    EventKind.EXEC_BEGIN,
    EventKind.EXEC_END,
]


def by_region(events: list[TraceEvent]) -> dict[int, list[TraceEvent]]:
    out: dict[int, list[TraceEvent]] = {}
    for e in events:
        if e.region is not None:
            out.setdefault(e.region, []).append(e)
    return out


def kinds(events: list[TraceEvent]) -> list[EventKind]:
    return [e.kind for e in events]


def test_posted_region_full_lifecycle_in_order(tracing, worker_rt):
    region = worker_rt.invoke_target_block("worker", lambda: 7)
    assert region.result() == 7
    tracks = by_region(obs.session().events())
    track = tracks[region.seq]
    observed = [e.kind for e in track if e.kind in LIFECYCLE]
    assert observed == LIFECYCLE
    # Timestamps are non-decreasing along the lifecycle in the merged order.
    ts = [e.ts for e in track if e.kind in LIFECYCLE]
    assert ts == sorted(ts)


def test_many_regions_each_keep_lifecycle_order(tracing, worker_rt):
    regions = [
        worker_rt.invoke_target_block("worker", lambda i=i: i, "nowait")
        for i in range(25)
    ]
    for r in regions:
        r.wait(5)
    tracks = by_region(obs.session().events())
    for r in regions:
        observed = [e.kind for e in tracks[r.seq] if e.kind in LIFECYCLE]
        assert observed == LIFECYCLE, f"region {r.seq}: {observed}"


def test_inline_dispatch_emits_elide_not_enqueue(tracing, worker_rt):
    inner: dict[str, object] = {}

    def outer():
        region = worker_rt.invoke_target_block("worker", lambda: 1)
        inner["region"] = region
        return region.result()

    worker_rt.invoke_target_block("worker", outer).result()
    tracks = by_region(obs.session().events())
    track = tracks[inner["region"].seq]  # type: ignore[union-attr]
    observed = kinds(track)
    assert EventKind.INLINE_ELIDE in observed
    assert EventKind.ENQUEUE not in observed
    assert EventKind.DEQUEUE not in observed
    assert observed.index(EventKind.INLINE_ELIDE) < observed.index(EventKind.EXEC_BEGIN)


def test_await_from_edt_brackets_with_barrier_events(tracing, edt_rt):
    done: dict[str, object] = {}

    def on_edt():
        region = edt_rt.invoke_target_block(
            "worker", lambda: time.sleep(0.02) or "x", "await"
        )
        done["result"] = region.result()
        done["region"] = region

    edt_rt.invoke_target_block("edt", on_edt).result()
    assert done["result"] == "x"
    seq = done["region"].seq  # type: ignore[union-attr]
    track = by_region(obs.session().events())[seq]
    observed = kinds(track)
    enter = observed.index(EventKind.BARRIER_ENTER)
    exit_ = observed.index(EventKind.BARRIER_EXIT)
    begin = observed.index(EventKind.EXEC_BEGIN)
    assert enter < exit_
    assert enter < begin  # the barrier opened before the region ran elsewhere
    barrier = [e for e in track if e.kind is EventKind.BARRIER_ENTER]
    assert barrier[0].target == "edt"  # pumped on the encountering target


def test_pump_steal_recorded_when_barrier_processes_work(tracing, edt_rt):
    def on_edt():
        # Queue extra EDT work, then await: the barrier must pump it.
        # (post() directly — invoke_target_block from the EDT itself would
        # run these inline under the context-awareness rule.)
        tgt = edt_rt.get_target("edt")
        for i in range(3):
            tgt.post(lambda i=i: i)
        edt_rt.invoke_target_block(
            "worker", lambda: time.sleep(0.05), "await"
        )

    edt_rt.invoke_target_block("edt", on_edt).result()
    steals = [
        e for e in obs.session().events() if e.kind is EventKind.PUMP_STEAL
    ]
    assert steals, "await barrier pumped queued handlers but recorded no steals"
    assert all(e.target == "edt" for e in steals)


def test_cancelled_region_emits_cancel(tracing, rt):
    rt.create_worker("worker", 1)
    release = rt.invoke_target_block(
        "worker", lambda: time.sleep(0.05), "nowait"
    )
    victim = rt.invoke_target_block("worker", lambda: 99, "nowait")
    assert victim.request_cancel(RuntimeError("test says no")) is True
    release.wait(5)
    track = by_region(obs.session().events())[victim.seq]
    observed = kinds(track)
    assert EventKind.CANCEL in observed
    assert EventKind.EXEC_BEGIN not in observed
    cancel = next(e for e in track if e.kind is EventKind.CANCEL)
    assert cancel.arg == "RuntimeError"


def test_rejected_region_emits_reject(tracing, rt):
    rt.create_worker("tiny", 1, queue_capacity=1, rejection_policy="reject")
    blocker = rt.invoke_target_block("tiny", lambda: time.sleep(0.08), "nowait")
    # Fill the single queue slot, then overflow it.
    filler = None
    rejected = 0
    for i in range(6):
        try:
            filler = rt.invoke_target_block("tiny", lambda: None, "nowait")
        except QueueFullError:
            rejected += 1
    assert rejected > 0
    blocker.wait(5)
    rejects = [
        e for e in obs.session().events() if e.kind is EventKind.REJECT
    ]
    assert len(rejects) == rejected
    assert all(e.target == "tiny" for e in rejects)


def test_tag_wait_brackets(tracing, worker_rt):
    worker_rt.invoke_target_block("worker", lambda: 1, "name_as", tag="job")
    worker_rt.wait_tag("job", timeout=5)
    events = obs.session().events()
    observed = kinds(events)
    begin = observed.index(EventKind.TAG_WAIT_BEGIN)
    end = observed.index(EventKind.TAG_WAIT_END)
    assert begin < end
    assert events[begin].name == "job"


def test_enqueue_sorts_before_consumer_side_dequeue(tracing, worker_rt):
    """The ENQUEUE timestamp is captured before the blocking put, so the
    consumer's DEQUEUE can never sort ahead of it in the merged stream."""
    regions = [
        worker_rt.invoke_target_block("worker", lambda: None, "nowait")
        for _ in range(50)
    ]
    for r in regions:
        r.wait(5)
    tracks = by_region(obs.session().events())
    for r in regions:
        t = {e.kind: e.ts for e in tracks[r.seq]}
        assert t[EventKind.ENQUEUE] <= t[EventKind.DEQUEUE]


def test_queue_depth_samples_present(tracing, worker_rt):
    for _ in range(5):
        worker_rt.invoke_target_block("worker", lambda: None)
    depths = [
        e for e in obs.session().events() if e.kind is EventKind.QUEUE_DEPTH
    ]
    assert depths
    assert all(isinstance(e.arg, int) and e.arg >= 0 for e in depths)


def test_compiled_pragma_regions_carry_source_location(tracing, worker_rt):
    from repro.compiler import exec_omp

    ns = exec_omp(
        "def f():\n"
        "    #omp target virtual(worker)\n"
        "    x = 41\n"
        "    return x + 1\n",
        runtime=worker_rt,
    )
    assert ns["f"]() == 42
    submits = [
        e for e in obs.session().events() if e.kind is EventKind.REGION_SUBMIT
    ]
    assert any(
        e.name is not None and "@" in e.name and ":" in e.name for e in submits
    ), f"no source-stamped region label in {[e.name for e in submits]}"
