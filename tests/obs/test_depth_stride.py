"""QUEUE_DEPTH sampling stride — regression tests for two bugs:

1. ``REPRO_TRACE_DEPTH_STRIDE`` was read once at import, so setting it after
   ``import repro`` was silently ignored; it is now re-read at the start of
   every recording window.
2. The per-target transition counter was a bare ``self._tick += 1``, so
   racing poster/worker threads could lose increments and skew which
   transitions got sampled; it is now an ``itertools.count`` drawn atomically.
"""

from __future__ import annotations

import threading

from repro import obs
from repro.core.targets import EdtTarget
from repro.obs.events import EventKind


def depth_samples(session, target):
    return [
        e for e in session.events()
        if e.kind is EventKind.QUEUE_DEPTH and e.target == target
    ]


def pump(target, n):
    for _ in range(n):
        target.post(lambda: None)
    target.drain()


def test_stride_is_reread_per_recording_window(monkeypatch):
    t = EdtTarget("stride-edt")
    t.register_current_thread()
    try:
        monkeypatch.setenv("REPRO_TRACE_DEPTH_STRIDE", "1")
        session = obs.enable()
        pump(t, 6)  # 6 enqueues + 6 dequeues, stride 1 → all transitions sample
        assert len(depth_samples(session, "stride-edt")) == 12
        obs.disable()

        # Same process, same target object: the new stride must take effect
        # on the next window without re-importing anything.
        monkeypatch.setenv("REPRO_TRACE_DEPTH_STRIDE", "4")
        session = obs.enable()
        pump(t, 6)  # ticks 0..11, every 4th → 0, 4, 8
        assert len(depth_samples(session, "stride-edt")) == 3
    finally:
        t._exit_member()


def test_depth_tick_is_race_tolerant(monkeypatch):
    monkeypatch.setenv("REPRO_TRACE_DEPTH_STRIDE", "4")
    session = obs.enable()
    t = EdtTarget("race-edt")  # never started: posts only enqueue
    t.post(lambda: None)  # prime tick 0 single-threaded

    def blast():
        for _ in range(50):
            t.post(lambda: None)

    threads = [threading.Thread(target=blast) for _ in range(4)]
    for th in threads:
        th.start()
    for th in threads:
        th.join()
    # 201 enqueue ticks total (0..200); with an atomic counter exactly every
    # 4th tick samples: 0, 4, ..., 200 → 51.  A lost-update counter would
    # repeat tick values and emit a different (plurality: larger) number.
    assert len(depth_samples(session, "race-edt")) == 51
