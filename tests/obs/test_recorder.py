"""Ring-buffer mechanics: wraparound, drop accounting, null mode,
per-thread isolation, and the disabled fast path."""

from __future__ import annotations

import threading

import pytest

from repro import obs
from repro.obs import EventKind, NullRecorder, RingRecorder, TraceEvent, now_ns


def _ev(i: int) -> TraceEvent:
    return TraceEvent(EventKind.EXEC_BEGIN, now_ns(), "t", None, i, None, None)


class TestRingRecorder:
    def test_append_below_capacity_keeps_everything(self):
        ring = RingRecorder(8, generation=0, thread_name="t")
        for i in range(5):
            ring.append(_ev(i))
        assert len(ring) == 5
        assert ring.recorded == 5
        assert ring.dropped == 0
        assert [e.region for e in ring.events()] == [0, 1, 2, 3, 4]

    def test_wraparound_drops_oldest_and_counts(self):
        ring = RingRecorder(8, generation=0, thread_name="t")
        for i in range(20):
            ring.append(_ev(i))
        assert len(ring) == 8
        assert ring.recorded == 20
        assert ring.dropped == 12
        # The retained window is the newest 8, still oldest-first.
        assert [e.region for e in ring.events()] == list(range(12, 20))

    def test_seq_is_monotonic_across_wraparound(self):
        ring = RingRecorder(4, generation=0, thread_name="t")
        for i in range(10):
            ring.append(_ev(i))
        seqs = [e.seq for e in ring.events()]
        assert seqs == sorted(seqs)
        assert seqs == [6, 7, 8, 9]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingRecorder(0, generation=0, thread_name="t")


class TestNullRecorder:
    def test_counts_but_stores_nothing(self):
        rec = NullRecorder(generation=0, thread_name="t")
        for i in range(100):
            rec.append(_ev(i))
        assert rec.recorded == 100
        assert len(rec) == 0
        assert rec.events() == []


class TestTraceSession:
    def test_disabled_session_records_nothing(self):
        session = obs.session()
        assert not session.enabled
        session.emit(EventKind.ENQUEUE, target="w")
        assert session.events() == []
        assert session.stats()["recorded"] == 0

    def test_emit_requires_no_explicit_guard(self, tracing):
        obs.emit(EventKind.ENQUEUE, target="w", region=1, name="r")
        (event,) = obs.session().events()
        assert event.kind is EventKind.ENQUEUE
        assert event.target == "w"
        assert event.thread == threading.current_thread().name

    def test_null_mode_counts_without_retaining(self):
        obs.enable(null=True)
        for _ in range(10):
            obs.emit(EventKind.ENQUEUE, target="w")
        stats = obs.session().stats()
        assert stats["recorded"] == 10
        assert stats["retained"] == 0
        assert obs.session().events() == []

    def test_buffer_size_bounds_retention(self):
        obs.enable(buffer_size=8)
        for i in range(20):
            obs.emit(EventKind.ENQUEUE, target="w", region=i)
        stats = obs.session().stats()
        assert stats["recorded"] == 20
        assert stats["retained"] == 8
        assert stats["dropped"] == 12
        assert [e.region for e in obs.session().events()] == list(range(12, 20))

    def test_per_thread_recorders(self, tracing):
        def worker():
            obs.emit(EventKind.EXEC_BEGIN, target="w")
            obs.emit(EventKind.EXEC_END, target="w")

        threads = [threading.Thread(target=worker, name=f"rec-{i}") for i in range(3)]
        obs.emit(EventKind.REGION_SUBMIT, target="w")
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        stats = obs.session().stats()
        assert stats["threads"] == 4  # main + 3 workers
        assert stats["recorded"] == 7
        assert set(stats["per_thread"]) >= {"rec-0", "rec-1", "rec-2"}

    def test_restart_abandons_stale_recorders(self, tracing):
        obs.emit(EventKind.ENQUEUE, target="w")
        obs.enable()  # new window: generation bump
        obs.emit(EventKind.DEQUEUE, target="w")
        events = obs.session().events()
        assert [e.kind for e in events] == [EventKind.DEQUEUE]

    def test_stop_keeps_events_readable(self, tracing):
        obs.emit(EventKind.ENQUEUE, target="w")
        obs.disable()
        assert len(obs.session().events()) == 1
        obs.session().clear()
        assert obs.session().events() == []

    def test_describe_mentions_counts(self, tracing):
        obs.emit(EventKind.ENQUEUE, target="w")
        text = obs.session().describe()
        assert "trace: on" in text
        assert "recorded=1" in text
