"""docs/TUNING.md must cover every knob the runtime actually has.

The tuning guide claims to be the single reference for ICVs and
environment variables.  This gate makes the claim structural: every
``REPRO_*`` variable mentioned anywhere under ``src/`` and every ``*_var``
ICV defined on ``PjRuntime`` must appear in TUNING.md — a new knob cannot
land without its documentation row.
"""

from __future__ import annotations

import pathlib
import re

REPO = pathlib.Path(__file__).resolve().parents[1]
TUNING = (REPO / "docs" / "TUNING.md").read_text()

_ENV = re.compile(r"\bREPRO_[A-Z_]+\b")
_ICV_ASSIGN = re.compile(r"self\.([a-z][a-z0-9_]*_var)\b")
_ICV_PROP = re.compile(r"def ([a-z][a-z0-9_]*_var)\(")


def _source_env_vars() -> set[str]:
    found: set[str] = set()
    for path in (REPO / "src").rglob("*.py"):
        found.update(_ENV.findall(path.read_text()))
    return found


def _runtime_icvs() -> set[str]:
    text = (REPO / "src" / "repro" / "core" / "runtime.py").read_text()
    return set(_ICV_ASSIGN.findall(text)) | set(_ICV_PROP.findall(text))


def test_every_env_knob_is_documented():
    missing = sorted(v for v in _source_env_vars() if v not in TUNING)
    assert not missing, (
        "environment variables used in src/ but absent from docs/TUNING.md: "
        + ", ".join(missing)
    )


def test_every_runtime_icv_is_documented():
    icvs = _runtime_icvs()
    assert icvs >= {"steal_var", "batch_max_var", "autoscale_var"}, (
        "extraction broke — the policy ICVs are not optional"
    )
    missing = sorted(v for v in icvs if f"`{v}`" not in TUNING)
    assert not missing, (
        "PjRuntime ICVs absent from docs/TUNING.md: " + ", ".join(missing)
    )


def test_policy_env_names_match_the_code():
    from repro.policy import AUTOSCALE_ENV, BATCH_MAX_ENV, STEAL_ENV

    for name in (STEAL_ENV, BATCH_MAX_ENV, AUTOSCALE_ENV):
        assert f"`{name}" in TUNING, f"{name} missing from docs/TUNING.md"


def test_policy_events_are_documented_in_both_guides():
    observability = (REPO / "docs" / "OBSERVABILITY.md").read_text()
    for doc, path in ((TUNING, "TUNING.md"), (observability, "OBSERVABILITY.md")):
        for token in ("POOL_SCALE", "PUMP_STEAL"):
            assert token in doc, f"{token} missing from docs/{path}"
    # The attribution payload keys are API: exporters and the checker read
    # them, so both guides must name the dict shape.
    for key in ('"victim"', '"thief"', '"lane"', '"mode"'):
        assert key in TUNING, f"PUMP_STEAL arg key {key} missing from TUNING.md"
