"""Tests for ModalDialog: real-thread nested EDT pumping."""

import threading
import time

import pytest

from repro.core import PjRuntime
from repro.eventloop import EventLoop, Label, ModalDialog


@pytest.fixture()
def loop():
    rt = PjRuntime()
    l = EventLoop(rt, "edt")
    rt.create_worker("worker", 2)
    yield l
    rt.shutdown(wait=False)


class TestModal:
    def test_show_modal_blocks_handler_until_close(self, loop):
        dialog = ModalDialog(loop)
        order = []
        done = threading.Event()

        def handler():
            result = dialog.show_modal(timeout=5)
            order.append(("returned", result))
            done.set()

        loop.invoke_later(handler)
        time.sleep(0.05)
        assert dialog.is_open
        order.append(("closing",))
        dialog.close("user-choice")
        assert done.wait(timeout=5)
        assert order == [("closing",), ("returned", "user-choice")]

    def test_edt_processes_events_while_modal_open(self, loop):
        """The whole point: the UI stays alive under a modal dialog."""
        dialog = ModalDialog(loop)
        label = Label(loop)
        done = threading.Event()

        def handler():
            dialog.show_modal(timeout=5)
            done.set()

        loop.invoke_later(handler)
        time.sleep(0.02)
        loop.invoke_later(lambda: label.set_text("updated-under-modal"))
        deadline = time.monotonic() + 5
        while label.text != "updated-under-modal" and time.monotonic() < deadline:
            time.sleep(0.01)
        assert label.text == "updated-under-modal"  # processed during modal
        dialog.close()
        assert done.wait(timeout=5)

    def test_close_from_worker_thread(self, loop):
        rt = loop.runtime
        dialog = ModalDialog(loop)
        results = []
        done = threading.Event()

        def handler():
            results.append(dialog.show_modal(timeout=5))
            done.set()

        loop.invoke_later(handler)
        time.sleep(0.02)
        rt.invoke_target_block(
            "worker", lambda: (time.sleep(0.05), dialog.close(42)), "nowait"
        )
        assert done.wait(timeout=5)
        assert results == [42]

    def test_timeout(self, loop):
        dialog = ModalDialog(loop)
        errors = []
        done = threading.Event()

        def handler():
            try:
                dialog.show_modal(timeout=0.1)
            except TimeoutError:
                errors.append(True)
            done.set()

        loop.invoke_later(handler)
        assert done.wait(timeout=5)
        assert errors == [True]
        assert not dialog.is_open

    def test_show_modal_off_edt_rejected(self, loop):
        from repro.eventloop import EDTViolationError

        dialog = ModalDialog(loop)
        with pytest.raises(EDTViolationError):
            dialog.show_modal(timeout=0.1)

    def test_nested_modals_close_lifo(self, loop):
        outer, inner = ModalDialog(loop, "outer"), ModalDialog(loop, "inner")
        order = []
        done = threading.Event()

        def open_inner():
            order.append(("inner", inner.show_modal(timeout=5)))

        def handler():
            loop.invoke_later(open_inner)  # dispatched while outer is modal
            order.append(("outer", outer.show_modal(timeout=5)))
            done.set()

        loop.invoke_later(handler)
        time.sleep(0.1)
        assert outer.is_open and inner.is_open
        # Outer can only return after the nested pump (inner) unwinds.
        inner.close("i")
        time.sleep(0.05)
        outer.close("o")
        assert done.wait(timeout=5)
        assert order == [("inner", "i"), ("outer", "o")]
