"""Tests for the Swing-style Timer and SwingWorker cancellation."""

import threading
import time

import pytest

from repro.core import PjRuntime
from repro.eventloop import EventLoop, ExecutorService, SwingWorker, Timer, worker_from_callables


@pytest.fixture()
def loop():
    rt = PjRuntime()
    l = EventLoop(rt, "edt")
    yield l
    rt.shutdown(wait=False)


@pytest.fixture()
def pool():
    p = ExecutorService(2, name="timer-test")
    yield p
    p.shutdown_now()


class TestTimer:
    def test_repeating_timer_fires_on_edt(self, loop):
        threads = []
        t = Timer(loop, 0.02, lambda: threads.append(threading.current_thread()))
        t.start()
        deadline = time.monotonic() + 3
        while len(threads) < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        t.stop()
        assert len(threads) >= 3
        assert set(threads) == {loop.target.edt_thread}

    def test_one_shot(self, loop):
        hits = []
        t = Timer(loop, 0.02, lambda: hits.append(1), repeats=False)
        t.start()
        time.sleep(0.15)
        assert hits == [1]
        assert not t.is_running

    def test_stop_prevents_firing(self, loop):
        hits = []
        t = Timer(loop, 0.05, lambda: hits.append(1))
        t.start()
        t.stop()
        time.sleep(0.12)
        assert hits == []

    def test_initial_delay(self, loop):
        stamps = []
        t0 = time.perf_counter()
        t = Timer(
            loop, 0.02, lambda: stamps.append(time.perf_counter() - t0),
            repeats=False, initial_delay=0.1,
        )
        t.start()
        time.sleep(0.2)
        assert stamps and stamps[0] >= 0.09

    def test_restart(self, loop):
        hits = []
        t = Timer(loop, 0.03, lambda: hits.append(1), repeats=False)
        t.start()
        time.sleep(0.01)
        t.restart()  # pushes the firing out
        time.sleep(0.01)
        assert hits == []
        time.sleep(0.06)
        assert hits == [1]
        t.stop()

    def test_coalescing_under_blocked_edt(self, loop):
        """A busy EDT must not accumulate a timer-event backlog."""
        release = threading.Event()
        loop.invoke_later(lambda: release.wait(2))  # blocks the EDT
        t = Timer(loop, 0.01, lambda: None)
        t.start()
        time.sleep(0.3)  # ~30 expirations against a blocked EDT
        release.set()
        time.sleep(0.1)
        t.stop()
        assert t.fired >= 10
        assert t.coalesced >= t.fired - t.dispatched - 1
        assert t.dispatched < t.fired  # backlog was collapsed

    def test_invalid_delay(self, loop):
        with pytest.raises(ValueError):
            Timer(loop, 0.0, lambda: None)

    def test_double_start_is_idempotent(self, loop):
        hits = []
        t = Timer(loop, 0.03, lambda: hits.append(1), repeats=False)
        t.start()
        t.start()
        time.sleep(0.1)
        assert hits == [1]


class TestSwingWorkerCancel:
    def test_cancel_before_run_withdraws_task(self, loop, pool):
        gate = threading.Event()
        # Occupy the whole pool so the worker's task stays queued.
        blockers = [pool.submit(gate.wait) for _ in range(2)]
        ran = []
        w = worker_from_callables(loop, background=lambda _w: ran.append(1), pool=pool)
        w.execute()
        assert w.cancel()
        assert w.is_cancelled
        gate.set()
        assert w.wait_done(timeout=2)  # done() still runs on the EDT
        time.sleep(0.05)
        assert ran == []
        for b in blockers:
            b.get(timeout=2)

    def test_cancel_running_is_cooperative(self, loop, pool):
        started = threading.Event()

        class W(SwingWorker):
            def do_in_background(self):
                started.set()
                while not self.is_cancelled:
                    time.sleep(0.005)
                return "bailed-out"

        w = W(loop, pool)
        w.execute()
        assert started.wait(timeout=2)
        assert not w.cancel()  # already running: not withdrawn...
        assert w.is_cancelled  # ...but flagged
        assert w.get(timeout=2) == "bailed-out"

    def test_cancel_before_execute(self, loop, pool):
        w = worker_from_callables(loop, background=lambda _w: None, pool=pool)
        assert w.cancel()
        assert w.is_cancelled
