"""Tests for the SwingWorker baseline (paper Figure 3 semantics)."""

import threading
import time

import pytest

from repro.core import PjRuntime
from repro.eventloop import (
    MAX_WORKER_THREADS,
    EventLoop,
    ExecutorService,
    SwingWorker,
    swing_worker_pool,
    worker_from_callables,
)


@pytest.fixture()
def loop():
    rt = PjRuntime()
    l = EventLoop(rt, "edt")
    yield l
    rt.shutdown(wait=False)


@pytest.fixture()
def pool():
    p = ExecutorService(4, name="sw-test")
    yield p
    p.shutdown_now()


class TestContract:
    def test_background_runs_off_edt(self, loop, pool):
        class W(SwingWorker):
            def do_in_background(self):
                return threading.current_thread()

        w = W(loop, pool)
        w.execute()
        assert w.get(timeout=2) is not loop.target.edt_thread

    def test_done_runs_on_edt_after_background(self, loop, pool):
        order = []

        class W(SwingWorker):
            def do_in_background(self):
                order.append(("bg", threading.current_thread()))

            def done(self):
                order.append(("done", threading.current_thread()))

        w = W(loop, pool)
        w.execute()
        assert w.wait_done(timeout=2)
        assert [tag for tag, _ in order] == ["bg", "done"]
        assert order[1][1] is loop.target.edt_thread

    def test_process_runs_on_edt(self, loop, pool):
        threads = []

        class W(SwingWorker):
            def do_in_background(self):
                self.publish(1)
                time.sleep(0.05)

            def process(self, chunks):
                threads.append(threading.current_thread())

        w = W(loop, pool)
        w.execute()
        assert w.wait_done(timeout=2)
        assert threads == [loop.target.edt_thread]

    def test_publish_coalesces(self, loop, pool):
        batches = []
        release = threading.Event()

        class W(SwingWorker):
            def do_in_background(self):
                for i in range(5):
                    self.publish(i)
                release.set()
                time.sleep(0.05)

            def process(self, chunks):
                batches.append(chunks)

        # Keep the EDT busy while the publishes happen so they pile up.
        loop.invoke_later(lambda: release.wait(timeout=2))
        w = W(loop, pool)
        w.execute()
        assert w.wait_done(timeout=5)
        published = [x for batch in batches for x in batch]
        assert published == [0, 1, 2, 3, 4]
        assert len(batches) < 5  # at least some coalescing happened

    def test_get_returns_background_value(self, loop, pool):
        w = worker_from_callables(loop, background=lambda _w: "payload", pool=pool)
        w.execute()
        assert w.get(timeout=2) == "payload"

    def test_done_runs_even_if_background_raises(self, loop, pool):
        done_called = threading.Event()

        class W(SwingWorker):
            def do_in_background(self):
                raise ValueError("boom")

            def done(self):
                done_called.set()

        w = W(loop, pool)
        w.execute()
        assert done_called.wait(timeout=2)
        from repro.core import RegionFailedError

        with pytest.raises(RegionFailedError):
            w.get(timeout=2)

    def test_execute_twice_rejected(self, loop, pool):
        w = worker_from_callables(loop, background=lambda _w: None, pool=pool)
        w.execute()
        with pytest.raises(RuntimeError):
            w.execute()

    def test_get_before_execute_rejected(self, loop, pool):
        w = worker_from_callables(loop, background=lambda _w: None, pool=pool)
        with pytest.raises(RuntimeError):
            w.get()


class TestSharedPool:
    def test_shared_pool_is_ten_threads(self):
        # The paper: "The underlying implementation of SwingWorker maintains
        # a default 10-thread-max thread pool."
        assert MAX_WORKER_THREADS == 10
        pool = swing_worker_pool()
        assert len(pool._threads) == 10

    def test_shared_pool_reused(self):
        assert swing_worker_pool() is swing_worker_pool()

    def test_shared_pool_recreated_after_shutdown(self):
        pool = swing_worker_pool()
        pool.shutdown()
        fresh = swing_worker_pool()
        assert fresh is not pool
        assert fresh.submit(lambda: 1).get(timeout=2) == 1
