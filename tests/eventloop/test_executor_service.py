"""Tests for the ExecutorService and thread-per-request baselines."""

import threading
import time

import pytest

from repro.eventloop import ExecutorService, ThreadPerRequestExecutor, new_fixed_thread_pool


@pytest.fixture()
def pool():
    p = ExecutorService(3, name="test-pool")
    yield p
    p.shutdown_now()


class TestSubmit:
    def test_submit_returns_result(self, pool):
        assert pool.submit(lambda: 21 * 2).get(timeout=2) == 42

    def test_submit_with_args(self, pool):
        assert pool.submit(lambda a, b=1: a + b, 4, b=5).get(timeout=2) == 9

    def test_tasks_run_on_pool_threads(self, pool):
        f = pool.submit(lambda: threading.current_thread().name)
        assert f.get(timeout=2).startswith("test-pool-")

    def test_parallel_threads(self, pool):
        barrier = threading.Barrier(3, timeout=2)
        futures = [pool.submit(barrier.wait) for _ in range(3)]
        for f in futures:
            f.get(timeout=2)  # would deadlock if not parallel

    def test_exception_surfaces_on_get(self, pool):
        from repro.core import RegionFailedError

        f = pool.submit(lambda: 1 / 0)
        with pytest.raises(RegionFailedError):
            f.get(timeout=2)

    def test_execute_fire_and_forget(self, pool):
        done = threading.Event()
        pool.execute(done.set)
        assert done.wait(timeout=2)

    def test_invoke_all(self, pool):
        futures = pool.invoke_all([lambda i=i: i * i for i in range(6)], timeout=5)
        assert [f.get(timeout=1) for f in futures] == [0, 1, 4, 9, 16, 25]

    def test_queue_length_under_saturation(self, pool):
        gate = threading.Event()
        for _ in range(3):
            pool.submit(gate.wait)
        time.sleep(0.05)
        for _ in range(5):
            pool.submit(lambda: None)
        assert pool.queue_length >= 4
        assert pool.active_count == 3
        gate.set()


class TestShutdown:
    def test_submit_after_shutdown_raises(self, pool):
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.submit(lambda: None)

    def test_shutdown_drains_queue_first(self):
        p = ExecutorService(1)
        results = []
        for i in range(5):
            p.submit(lambda i=i: results.append(i))
        p.shutdown()
        assert p.await_termination(timeout=5)
        assert results == [0, 1, 2, 3, 4]

    def test_shutdown_now_cancels_queued(self):
        p = ExecutorService(1)
        gate = threading.Event()
        p.submit(gate.wait)
        time.sleep(0.02)
        queued = [p.submit(lambda: None) for _ in range(4)]
        dropped = p.shutdown_now()
        assert len(dropped) == 4
        assert all(not f.is_done() or f._region.state.name == "CANCELLED" for f in queued)
        gate.set()
        assert p.await_termination(timeout=5)

    def test_rejects_zero_threads(self):
        with pytest.raises(ValueError):
            ExecutorService(0)

    def test_factory_function(self):
        p = new_fixed_thread_pool(2, "factory")
        try:
            assert p.submit(lambda: "ok").get(timeout=2) == "ok"
        finally:
            p.shutdown_now()


class TestThreadPerRequest:
    def test_every_task_gets_new_thread(self):
        ex = ThreadPerRequestExecutor()
        names = [ex.submit(lambda: threading.current_thread().name).get(timeout=2) for _ in range(4)]
        assert len(set(names)) == 4
        assert ex.spawned == 4

    def test_result_delivery(self):
        ex = ThreadPerRequestExecutor()
        assert ex.submit(lambda x: x + 1, 41).get(timeout=2) == 42

    def test_cancel_before_run_is_racy_but_safe(self):
        ex = ThreadPerRequestExecutor()
        f = ex.submit(lambda: "ran")
        f.cancel()  # either cancels or the task already ran; must not hang
        f._region.wait(timeout=2)
