"""Tests for the Swing-like EventLoop."""

import threading
import time

import pytest

from repro.core import PjRuntime
from repro.eventloop import Event, EventLoop


@pytest.fixture()
def loop():
    rt = PjRuntime()
    l = EventLoop(rt, "edt")
    yield l
    rt.shutdown(wait=False)


class TestListeners:
    def test_handler_receives_event(self, loop):
        seen = []
        loop.on("click", seen.append)
        loop.fire("click", payload=42)
        assert loop.wait_all_finished()
        assert len(seen) == 1
        assert seen[0].name == "click"
        assert seen[0].payload == 42

    def test_multiple_handlers_in_registration_order(self, loop):
        order = []
        loop.on("e", lambda ev: order.append("first"))
        loop.on("e", lambda ev: order.append("second"))
        loop.fire("e")
        assert loop.wait_all_finished()
        assert order == ["first", "second"]

    def test_off_removes_handler(self, loop):
        seen = []
        loop.on("e", seen.append)
        loop.off("e", seen.append)
        loop.fire("e")
        assert loop.wait_all_finished()
        assert seen == []

    def test_unknown_event_is_noop(self, loop):
        loop.fire("nobody-listens")
        assert loop.wait_all_finished()

    def test_handlers_run_on_edt(self, loop):
        threads = []
        loop.on("e", lambda ev: threads.append(threading.current_thread()))
        loop.fire("e")
        assert loop.wait_all_finished()
        assert threads == [loop.target.edt_thread]

    def test_events_dispatch_fifo(self, loop):
        seen = []
        loop.on("e", lambda ev: seen.append(ev.payload))
        for i in range(20):
            loop.fire("e", payload=i)
        assert loop.wait_all_finished()
        assert seen == list(range(20))


class TestRecords:
    def test_sync_handler_autocompletes_record(self, loop):
        loop.on("e", lambda ev: time.sleep(0.02))
        rec = loop.fire("e")
        assert loop.wait_all_finished()
        assert rec.dispatch_latency >= 0.0
        assert rec.response_time >= 0.02

    def test_deferred_handler_owns_completion(self, loop):
        handled = threading.Event()

        @EventLoop.defer_completion
        def handler(ev):
            handled.set()  # async handler: completion happens later

        loop.on("e", handler)
        rec = loop.fire("e")
        assert handled.wait(timeout=2)
        time.sleep(0.02)
        assert rec.finished_at is None  # not auto-stamped
        rec.mark_finished()
        assert rec.response_time is not None

    def test_response_time_accumulates_queueing(self, loop):
        """Back-to-back slow events queue behind each other: later events see
        larger response times (the paper's Figure 1(i) effect)."""
        loop.on("slow", lambda ev: time.sleep(0.05))
        recs = [loop.fire("slow") for _ in range(3)]
        assert loop.wait_all_finished()
        rts = [r.response_time for r in recs]
        assert rts[0] < rts[1] < rts[2]
        assert rts[2] >= 0.15 - 0.01

    def test_clear_records(self, loop):
        loop.fire("e")
        assert loop.wait_all_finished()
        loop.clear_records()
        assert loop.records == []

    def test_mark_started_idempotent(self):
        rec = Event("x")
        from repro.eventloop import EventRecord

        r = EventRecord(rec)
        r.mark_started()
        first = r.started_at
        time.sleep(0.01)
        r.mark_started()
        assert r.started_at == first


class TestInvoke:
    def test_invoke_later_runs_on_edt(self, loop):
        seen = []
        loop.invoke_later(lambda: seen.append(threading.current_thread()))
        deadline = time.monotonic() + 2
        while not seen and time.monotonic() < deadline:
            time.sleep(0.005)
        assert seen == [loop.target.edt_thread]

    def test_invoke_and_wait_returns_value(self, loop):
        assert loop.invoke_and_wait(lambda: 7 * 6) == 42

    def test_invoke_and_wait_from_edt_runs_inline(self, loop):
        # Context awareness replaces Swing's invokeAndWait-deadlock.
        result = loop.invoke_and_wait(lambda: loop.invoke_and_wait(lambda: "nested"))
        assert result == "nested"

    def test_is_edt(self, loop):
        assert not loop.is_edt()
        assert loop.invoke_and_wait(loop.is_edt) is True
