"""Tests for EDT-confined mock widgets."""

import pytest

from repro.core import PjRuntime
from repro.eventloop import Button, EDTViolationError, EventLoop, Label, Panel, ProgressBar


@pytest.fixture()
def loop():
    rt = PjRuntime()
    l = EventLoop(rt, "edt")
    yield l
    rt.shutdown(wait=False)


class TestEDTConfinement:
    def test_label_rejects_foreign_thread(self, loop):
        label = Label(loop)
        with pytest.raises(EDTViolationError) as ei:
            label.set_text("hello")
        assert "invoke_later" in str(ei.value)

    def test_label_accepts_edt(self, loop):
        label = Label(loop)
        loop.invoke_and_wait(lambda: label.set_text("hello"))
        assert label.text == "hello"
        assert label.journal == [("set_text", "hello")]

    def test_panel_collect_input_confined(self, loop):
        panel = Panel(loop)
        with pytest.raises(EDTViolationError):
            panel.collect_input()
        loop.invoke_and_wait(lambda: panel.set_input({"q": 1}))
        assert loop.invoke_and_wait(panel.collect_input) == {"q": 1}

    def test_progressbar_confined_and_validated(self, loop):
        bar = ProgressBar(loop)
        with pytest.raises(EDTViolationError):
            bar.set_value(10)
        loop.invoke_and_wait(lambda: bar.set_value(55))
        assert bar.value == 55
        from repro.core import RegionFailedError

        with pytest.raises(RegionFailedError) as ei:
            loop.invoke_and_wait(lambda: bar.set_value(101))
        assert isinstance(ei.value.cause, ValueError)


class TestButton:
    def test_click_triggers_handler_on_edt(self, loop):
        button = Button(loop, "go")
        label = Label(loop)
        button.on_click(lambda ev: label.set_text("clicked"))
        button.click()
        assert loop.wait_all_finished()
        assert label.text == "clicked"

    def test_click_payload(self, loop):
        button = Button(loop)
        seen = []
        button.on_click(lambda ev: seen.append(ev.payload))
        button.click(payload="data")
        assert loop.wait_all_finished()
        assert seen == ["data"]

    def test_click_returns_record(self, loop):
        button = Button(loop)
        button.on_click(lambda ev: None)
        rec = button.click()
        assert loop.wait_all_finished()
        assert rec.response_time is not None


class TestPanel:
    def test_message_and_image_journal(self, loop):
        panel = Panel(loop)

        def updates():
            panel.show_msg("start")
            panel.display_img("img-bytes")
            panel.show_msg("end")

        loop.invoke_and_wait(updates)
        assert panel.messages == ["start", "end"]
        assert panel.images == ["img-bytes"]
        assert [op for op, _ in panel.journal] == ["show_msg", "display_img", "show_msg"]


class TestIntegrationWithVirtualTargets:
    def test_worker_offload_updates_gui_via_edt_target(self, loop):
        """The Figure 6 pattern: handler offloads to a worker, GUI updates
        come back through `target virtual(edt)`."""
        rt = loop.runtime
        rt.create_worker("worker", 2)
        panel = Panel(loop)
        button = Button(loop)

        @EventLoop.defer_completion
        def handler(ev):
            rec = ev.record

            def background():
                result = sum(range(1000))  # the "download and compute"
                def update():
                    panel.show_msg(f"Finished: {result}")
                    rec.mark_finished()
                rt.invoke_target_block("edt", update, "nowait")

            rt.invoke_target_block("worker", background, "nowait")

        button.on_click(handler)
        button.click()
        assert loop.wait_all_finished(timeout=5)
        assert panel.messages == [f"Finished: {sum(range(1000))}"]
