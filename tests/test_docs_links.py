"""Intra-repo markdown links must point at files that exist.

Covers inline ``[text](target)`` links in the documentation set.  External
links (http/https/mailto) are out of scope — checking them needs a network
and their rot is not this repo's bug.
"""

from __future__ import annotations

import pathlib
import re

REPO = pathlib.Path(__file__).resolve().parents[1]
# SNIPPETS.md / PAPERS.md quote material from other repositories; their
# relative links point into those trees, not ours.
_EXCLUDED = {"SNIPPETS.md", "PAPERS.md"}
DOC_FILES = sorted(
    [
        *(p for p in REPO.glob("*.md") if p.name not in _EXCLUDED),
        *(REPO / "docs").glob("*.md"),
    ]
)

# [text](target) — won't catch reference-style links; the repo doesn't use them.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL = ("http://", "https://", "mailto:")


def _targets(path: pathlib.Path):
    text = path.read_text()
    # Fenced code blocks may contain example links to files that don't exist.
    text = re.sub(r"```.*?```", "", text, flags=re.S)
    for match in _LINK.finditer(text):
        yield match.group(1)


def test_intra_repo_links_resolve():
    broken = []
    for doc in DOC_FILES:
        for target in _targets(doc):
            if target.startswith(_EXTERNAL):
                continue
            if target.startswith("#"):
                continue  # same-file anchor; heading drift is out of scope
            rel = target.split("#", 1)[0]
            resolved = (doc.parent / rel).resolve()
            if not resolved.exists():
                broken.append(f"{doc.relative_to(REPO)}: ({target})")
    assert not broken, "broken intra-repo markdown links:\n" + "\n".join(broken)
