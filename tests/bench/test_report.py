"""Result documents: schema round-trip, table rendering, regression gating."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    SCHEMA,
    BenchResult,
    Protocol,
    compare,
    environment_fingerprint,
    fingerprint_delta,
    format_comparison,
    format_table,
    load_json,
    results_document,
    write_json,
)


def _result(name: str, samples, group: str = "g", number: int = 1) -> BenchResult:
    return BenchResult(
        name=name,
        group=group,
        number=number,
        samples_ns=list(samples),
        kept_ns=sorted(samples),
        trimmed=0,
    )


def _doc(spec: dict[str, float], created: str = "2026-08-06T00:00:00+00:00"):
    """A document with one single-sample benchmark per (name, p50) pair."""
    results = [_result(name, [p50]) for name, p50 in spec.items()]
    return results_document(results, Protocol(), created=created)


class TestEnvironmentFingerprint:
    def test_required_fields(self):
        env = environment_fingerprint()
        for key in ("python", "implementation", "machine", "cpu_count", "gil",
                    "usable_cores", "repro_version"):
            assert key in env, key

    def test_delta_only_reports_comparability_fields(self):
        a = environment_fingerprint()
        b = dict(a)
        b["python"] = "9.9.9"  # not a comparability field
        assert fingerprint_delta(a, b) == []
        b["cpu_count"] = (a.get("cpu_count") or 0) + 8
        delta = fingerprint_delta(a, b)
        assert len(delta) == 1 and "cpu_count" in delta[0]


class TestJsonRoundTrip:
    def test_write_and_load(self, tmp_path):
        doc = _doc({"a": 100.0, "b": 200.0})
        path = write_json(tmp_path / "BENCH_test.json", doc)
        loaded = load_json(path)
        assert loaded == json.loads(json.dumps(doc))  # survives serialization
        assert loaded["schema"] == SCHEMA
        assert loaded["created"] == "2026-08-06T00:00:00+00:00"
        assert loaded["protocol"] == {"warmup": 2, "repeats": 10, "trim": 0.2}
        assert set(loaded["benchmarks"]) == {"a", "b"}
        assert loaded["benchmarks"]["a"]["p50_ns"] == 100.0

    def test_load_rejects_wrong_schema(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something/else", "benchmarks": {}}))
        with pytest.raises(ValueError, match="expected schema"):
            load_json(bad)

    def test_load_rejects_schemaless_json(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ValueError):
            load_json(bad)


class TestFormatTable:
    def test_rows_and_units(self):
        doc = _doc({"fast_ns": 42.0, "micro": 4200.0, "milli": 4.2e6, "sec": 4.2e9})
        table = format_table(doc)
        assert "42 ns" in table
        assert "4.20 µs" in table
        assert "4.20 ms" in table
        assert "4.20 s" in table
        assert "gil=" in table  # env footer


class TestCompare:
    def test_within_threshold_passes(self):
        base = _doc({"a": 1000.0})
        cur = _doc({"a": 1200.0})  # +20%
        comparisons, warnings = compare(cur, base, max_regress_pct=25.0)
        assert [c.regressed for c in comparisons] == [False]
        assert comparisons[0].change_pct == pytest.approx(20.0)
        assert warnings == []

    def test_over_threshold_regresses(self):
        base = _doc({"a": 1000.0})
        cur = _doc({"a": 1300.0})  # +30%
        comparisons, _ = compare(cur, base, max_regress_pct=25.0)
        assert comparisons[0].regressed

    def test_improvement_never_regresses(self):
        comparisons, _ = compare(
            _doc({"a": 100.0}), _doc({"a": 1000.0}), max_regress_pct=0.0
        )
        assert comparisons[0].change_pct == pytest.approx(-90.0)
        assert not comparisons[0].regressed

    def test_missing_and_new_benchmarks_warn_not_regress(self):
        base = _doc({"a": 1000.0, "gone": 1.0})
        cur = _doc({"a": 1000.0, "new": 1.0})
        comparisons, warnings = compare(cur, base)
        assert [c.name for c in comparisons] == ["a"]
        assert any("'gone' missing" in w for w in warnings)
        assert any("'new' has no baseline" in w for w in warnings)

    def test_env_drift_is_a_warning(self):
        base = _doc({"a": 1000.0})
        cur = _doc({"a": 1000.0})
        base["env"] = dict(base["env"], cpu_count=999)
        _, warnings = compare(cur, base)
        assert any("environment drift" in w for w in warnings)

    def test_format_comparison_flags_regressions(self):
        base = _doc({"a": 1000.0, "b": 1000.0})
        cur = _doc({"a": 2000.0, "b": 900.0})
        comparisons, warnings = compare(cur, base, max_regress_pct=25.0)
        text = format_comparison(comparisons, warnings, max_regress_pct=25.0)
        assert "REGRESSION" in text
        assert "1 regression(s)" in text
        assert "+100.0%" in text
