"""``python -m repro bench``: output files, filtering, and --compare gating."""

from __future__ import annotations

import json

import pytest

from repro.bench import load_json, write_json
from repro.cli import main

# The two smoke-tagged builtin benchmarks are single-thread and cheap; every
# CLI test runs only those, with the external benchmark modules skipped.
FAST = ["--filter", "smoke", "--no-external", "--warmup", "0", "--repeats", "3"]


def _run(tmp_path, *extra, out="BENCH_out.json"):
    path = tmp_path / out
    return main(["bench", *FAST, "-o", str(path), *extra]), path


class TestBenchRun:
    def test_writes_schema_document(self, tmp_path, capsys):
        code, path = _run(tmp_path)
        assert code == 0
        doc = load_json(path)
        assert {"queue_post_drain", "region_create"} <= set(doc["benchmarks"])
        for b in doc["benchmarks"].values():
            assert b["p50_ns"] > 0
            assert b["p95_ns"] >= b["p50_ns"] >= b["min_ns"] > 0
        assert doc["env"]["cpu_count"] >= 1
        assert doc["protocol"] == {"warmup": 0, "repeats": 3, "trim": 0.2}
        out = capsys.readouterr().out
        assert "queue_post_drain" in out
        assert "wrote" in out

    def test_default_output_name_derives_from_filter(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "--filter", "region_create", "--no-external",
                     "--warmup", "0", "--repeats", "2"]) == 0
        assert (tmp_path / "BENCH_region_create.json").exists()

    def test_no_match_exits_2(self, tmp_path, capsys):
        code, _ = _run(tmp_path)  # prime: valid run works
        assert code == 0
        assert main(["bench", "--filter", "no_such_bench", "--no-external"]) == 2

    def test_list_mode(self, capsys):
        assert main(["bench", "--list", "--no-external"]) == 0
        out = capsys.readouterr().out
        assert "queue_post_drain" in out
        assert "group=" in out


class TestCompareGating:
    def test_self_comparison_passes(self, tmp_path, capsys):
        code, path = _run(tmp_path)
        assert code == 0
        code2, _ = _run(tmp_path, "--compare", str(path), "--max-regress", "500",
                        out="BENCH_second.json")
        assert code2 == 0
        assert "regression(s)" in capsys.readouterr().out

    def test_injected_regression_fails(self, tmp_path, capsys):
        code, path = _run(tmp_path)
        assert code == 0
        # Shrink the baseline p50s so the current run is a huge regression.
        doc = load_json(path)
        for b in doc["benchmarks"].values():
            b["p50_ns"] = b["p50_ns"] / 1000.0
        fast_baseline = tmp_path / "fast_baseline.json"
        write_json(fast_baseline, doc)
        code2, _ = _run(tmp_path, "--compare", str(fast_baseline),
                        "--max-regress", "25", out="BENCH_second.json")
        assert code2 == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_bad_baseline_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        code, _ = _run(tmp_path, "--compare", str(bad))
        assert code == 2
        assert "cannot load baseline" in capsys.readouterr().err

    def test_checked_in_smoke_baseline_is_loadable(self):
        # CI gates against this file; a schema break must fail here first.
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[2]
        doc = load_json(repo / "benchmarks" / "results" / "bench_smoke_baseline.json")
        assert {"queue_post_drain", "region_create"} <= set(doc["benchmarks"])
